"""Ports: label-checked message endpoints.

Messages sent to a port are delivered to the single context (process or
event process) holding receive rights for it.  Each port carries a *port
receive label* ``pR`` — a verification label imposed by the receiver rather
than the sender — which restricts the effective receive label for messages
delivered to that port, and bounds how far a sender's decontaminate-receive
label may raise the receiver's label (``DR ⊑ pR``; Section 5.5).

``new_port`` gives the new port the caller-supplied label but then sets
``pR(p) ← 0``, so that nobody else can send to the port until the creator
explicitly grants access — the root of capability-style send rights.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque

from repro.core.chunks import ChunkedLabel
from repro.core.handles import Handle
from repro.kernel.message import QueuedMessage

#: Kernel bytes per port beyond its vnode (queue head, owner ref, label ptr).
PORT_STRUCT_BYTES = 48

#: Maximum queued messages per port; beyond this, sends drop (resource
#: exhaustion is the one non-label cause of message loss, Section 4).
DEFAULT_QUEUE_LIMIT = 1024


@dataclass(frozen=True)
class RemoteRoute:
    """A port that lives on another shard (``repro.cluster``).

    The owning kernel has no :class:`Port` for the handle; instead
    ``Kernel.remote_routes`` maps it to one of these, and ``_enqueue``
    hands the already-checked message to the kernel's ``xshard_out`` hook
    for ``wire/v1`` serialization instead of recording a dead-port drop.
    Delivery-time checks (Figure 4 requirements 1 and 4) and effects run
    on the destination shard, against its own interned labels.
    """

    #: Destination shard index.
    shard: int
    #: Human-readable port name for traces and drop accounting.
    name: str = ""


@dataclass
class Port:
    """Kernel port state."""

    handle: Handle
    label: ChunkedLabel
    #: Context key of the receive-rights holder.
    owner: str
    queue: Deque[QueuedMessage] = field(default_factory=deque)
    queue_limit: int = DEFAULT_QUEUE_LIMIT
    alive: bool = True

    def enqueue(self, message: QueuedMessage) -> bool:
        if not self.alive or len(self.queue) >= self.queue_limit:
            return False
        self.queue.append(message)
        return True

    def dissociate(self) -> None:
        """Kill the port: pending and future messages are dropped."""
        self.alive = False
        self.queue.clear()

    @property
    def queued_bytes(self) -> int:
        return sum(m.payload_bytes for m in self.queue)

    def memory_bytes(self) -> int:
        return PORT_STRUCT_BYTES + self.queued_bytes
