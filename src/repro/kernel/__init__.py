"""The simulated Asbestos kernel.

Public surface:

- :class:`~repro.kernel.kernel.Kernel` — the machine (spawn processes,
  inject wire traffic, run to quiescence, inspect memory/cycles).
- :class:`~repro.kernel.config.KernelConfig` — the frozen run-mode options
  (``Kernel(config=...)``; ``KernelConfig.from_env()`` for env-driven).
- :mod:`~repro.kernel.syscalls` — the syscall objects program bodies yield.
- :class:`~repro.kernel.message.Message` — what a recv returns.
"""

from repro.kernel.config import KernelConfig
from repro.kernel.kernel import Kernel
from repro.kernel.message import Message
from repro.kernel.syscalls import (
    ChangeLabel,
    Compute,
    Deadline,
    DissociatePort,
    EpCheckpoint,
    EpClean,
    EpExit,
    EpYield,
    Exit,
    GetEnv,
    GetLabels,
    NewHandle,
    NewPort,
    Recv,
    Send,
    SetPortLabel,
    Spawn,
)

__all__ = [
    "Kernel",
    "KernelConfig",
    "Message",
    "ChangeLabel",
    "Compute",
    "Deadline",
    "DissociatePort",
    "EpCheckpoint",
    "EpClean",
    "EpExit",
    "EpYield",
    "Exit",
    "GetEnv",
    "GetLabels",
    "NewHandle",
    "NewPort",
    "Recv",
    "Send",
    "SetPortLabel",
    "Spawn",
]
