"""The simulated Asbestos kernel.

Public surface:

- :class:`~repro.kernel.kernel.Kernel` — the machine (spawn processes,
  inject wire traffic, run to quiescence, inspect memory/cycles).
- :mod:`~repro.kernel.syscalls` — the syscall objects program bodies yield.
- :class:`~repro.kernel.message.Message` — what a recv returns.
"""

from repro.kernel.kernel import Kernel
from repro.kernel.message import Message
from repro.kernel.syscalls import (
    ChangeLabel,
    Compute,
    DissociatePort,
    EpCheckpoint,
    EpClean,
    EpExit,
    EpYield,
    Exit,
    GetEnv,
    GetLabels,
    NewHandle,
    NewPort,
    Recv,
    Send,
    SetPortLabel,
    Spawn,
)

__all__ = [
    "Kernel",
    "Message",
    "ChangeLabel",
    "Compute",
    "DissociatePort",
    "EpCheckpoint",
    "EpClean",
    "EpExit",
    "EpYield",
    "Exit",
    "GetEnv",
    "GetLabels",
    "NewHandle",
    "NewPort",
    "Recv",
    "Send",
    "SetPortLabel",
    "Spawn",
]
