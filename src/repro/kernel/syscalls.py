"""Syscall request objects.

Simulated programs are Python generators: they *yield* one of the dataclass
instances below and receive the syscall's result as the value of the yield
expression.  This mirrors a trap-and-return kernel interface while keeping
program code readable:

.. code-block:: python

    def body(ctx):
        port = yield NewPort()
        msg = yield Recv()
        yield Send(msg.payload["reply"], {"status": "ok"})

The label arguments follow Figure 4's ``send(p, data, CS, DS, V, DR)``;
``None`` selects the paper's defaults (CS = {*}, DS = {3}, V = {3},
DR = {*}) — i.e. no contamination, no decontamination, no verification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.core.handles import Handle
from repro.core.labels import Label


@dataclass(frozen=True)
class Syscall:
    """Base class for all syscall request objects."""


@dataclass(frozen=True)
class NewHandle(Syscall):
    """Allocate a fresh handle; the caller's send label gets ``h *``.

    Result: the handle value (int).
    """


@dataclass(frozen=True)
class NewPort(Syscall):
    """Allocate a fresh port with port label *label* (default ``{3}``).

    The kernel then sets ``pR(p) <- 0`` so no other process can send until
    the creator grants access, and gives the caller ``p *`` in its send
    label plus receive rights.  Result: the port handle.
    """

    label: Optional[Label] = None


@dataclass(frozen=True)
class DissociatePort(Syscall):
    """Destroy a port the caller holds receive rights for.  Pending and
    future messages to it are silently dropped (senders cannot observe the
    dissociation — that would be a channel)."""

    port: Handle


@dataclass(frozen=True)
class SetPortLabel(Syscall):
    """Replace port *port*'s label with *label* verbatim (Figure 4: unlike
    new_port, set_port_label does **not** modify its input, so resetting to
    ``{3}`` really opens the port).  Caller must hold receive rights."""

    port: Handle
    label: Label


@dataclass(frozen=True, init=False)
class Send(Syscall):
    """Send *payload* to *port* — the full Figure 4 send.

    Optional discretionary labels, named after the paper's
    ``send(p, data, CS, DS, V, DR)``:

    - ``cs`` (CS): raises the effective send label ES = PS ⊔ CS.
    - ``ds`` (DS): lowers the receiver's send label (requires
      ``PS(h) = *`` wherever DS(h) < 3) — grants privilege.
    - ``v`` (V): restricts the effective receive label; must bound the
      sender's ES from above for delivery to succeed, and is passed up to
      the receiving application (proves credentials).
    - ``dr`` (DR): raises the receiver's receive label (requires
      ``PS(h) = *`` wherever DR(h) > *, and DR ⊑ pR).

    The long spellings ``contaminate`` / ``decontaminate_send`` /
    ``verify`` / ``decontaminate_receive`` are accepted as constructor
    aliases and exposed as read-only properties; the short names are
    canonical (they match the paper, :meth:`Channel.call
    <repro.ipc.rpc.Channel.call>`, and the OKWS helpers).

    Result: always ``True`` — sends are asynchronous and *unreliable*;
    a message that fails its delivery-time label check is silently dropped
    (Section 4: delivery notification would be a covert channel).
    """

    port: Handle
    payload: Any = None
    cs: Optional[Label] = None
    ds: Optional[Label] = None
    v: Optional[Label] = None
    dr: Optional[Label] = None
    #: Ports whose *receive rights* move to the receiver with this message
    #: (Section 4: "receive rights are transferable").  The sender must
    #: own them and loses them at send time; if the message is dropped by
    #: a label check the ports are dissociated — returning them would be
    #: a delivery-notification channel.
    transfer: Tuple[Handle, ...] = ()

    _ALIASES = {
        "contaminate": "cs",
        "decontaminate_send": "ds",
        "verify": "v",
        "decontaminate_receive": "dr",
    }

    def __init__(
        self,
        port: Handle,
        payload: Any = None,
        cs: Optional[Label] = None,
        ds: Optional[Label] = None,
        v: Optional[Label] = None,
        dr: Optional[Label] = None,
        transfer: Tuple[Handle, ...] = (),
        **aliases: Optional[Label],
    ):
        if aliases:
            short = {"cs": cs, "ds": ds, "v": v, "dr": dr}
            for long_name, value in aliases.items():
                target = self._ALIASES.get(long_name)
                if target is None:
                    raise TypeError(
                        f"Send() got an unexpected keyword argument {long_name!r}"
                    )
                if value is not None:
                    if short[target] is not None:
                        raise TypeError(
                            f"Send() got both {long_name!r} and its short "
                            f"form {target!r}"
                        )
                    short[target] = value
            cs, ds, v, dr = short["cs"], short["ds"], short["v"], short["dr"]
        set_field = object.__setattr__
        set_field(self, "port", port)
        set_field(self, "payload", payload)
        set_field(self, "cs", cs)
        set_field(self, "ds", ds)
        set_field(self, "v", v)
        set_field(self, "dr", dr)
        set_field(self, "transfer", transfer)

    @property
    def contaminate(self) -> Optional[Label]:
        return self.cs

    @property
    def decontaminate_send(self) -> Optional[Label]:
        return self.ds

    @property
    def verify(self) -> Optional[Label]:
        return self.v

    @property
    def decontaminate_receive(self) -> Optional[Label]:
        return self.dr


@dataclass(frozen=True)
class Recv(Syscall):
    """Receive the next deliverable message.

    ``port`` limits the receive to one specific port the caller owns;
    ``None`` receives from any owned port in arrival order.  ``block``
    selects blocking behaviour; a non-blocking recv with nothing
    deliverable returns ``None``.

    ``timeout`` bounds a blocking receive to that many *cycles* of
    simulated time: if nothing becomes deliverable before the kernel
    timer fires, the recv returns ``None`` instead of blocking forever.
    The timer is on virtual time, so timeouts are as deterministic as
    the rest of the simulation.  ``None`` means block indefinitely.

    Result: a :class:`~repro.kernel.message.Message` (or ``None``).
    """

    port: Optional[Handle] = None
    block: bool = True
    timeout: Optional[int] = None


@dataclass(frozen=True)
class Spawn(Syscall):
    """Create a child process running generator function *body*.

    With ``inherit_labels=True`` the child gets copies of the parent's send
    and receive labels — forking is one of the two ways privilege (``*``
    levels) is explicitly distributed (Section 5.3).  The default is a
    least-privilege child with the standard ``{1}``/``{2}`` labels; the
    parent grants specific privileges afterwards with decontaminating
    messages.  ``env`` seeds the child's environment, which is how port
    names are bootstrapped (Section 4).

    Result: the child's pid.
    """

    body: Callable
    name: str = "child"
    component: Optional[str] = None   # cycle-accounting category; inherits
    env: Dict[str, Any] = field(default_factory=dict)
    inherit_labels: bool = False
    #: Port to receive an obituary message ({type: "EXITED", pid, name,
    #: crashed}) when the child terminates — the supervision hook that
    #: lets a mature launcher restart dead processes (Section 7.1).  The
    #: obituary is sent with default labels and is subject to the usual
    #: delivery checks.
    notify_exit: Optional[Handle] = None

    def __hash__(self) -> int:  # env dict is unhashable; identity is fine
        return id(self)


@dataclass(frozen=True)
class Exit(Syscall):
    """Terminate the calling process (or, in an event process, the whole
    base process and all its event processes — the process-wide exit of
    Section 6.1)."""


@dataclass(frozen=True)
class ChangeLabel(Syscall):
    """Change the caller's own labels, subject to privilege checks:

    - raising the send label (self-contamination) is always allowed; this
      includes removing one's own ``*`` (the "special variant of send"
      noted in Section 5.3 — only a process itself may drop its stars);
    - lowering the send label at handle ``h`` requires ``PS(h) = *``
      (self-declassification) — impossible by construction, so full send
      replacement is raise-only;
    - lowering the receive label is always allowed (more restrictive);
    - raising the receive label at ``h`` requires ``PS(h) = *``.

    ``send``/``receive`` replace a whole label.  The sparse forms avoid
    reading the (possibly huge) current labels:

    - ``raise_receive``: per-handle receive raises ({handle: level});
      levels at or below the current one are no-ops, raises need ``*``;
    - ``drop_send``: return the named send-label handles to the default
      level.  Only allowed where that is a raise (dropping a ``*`` or a
      0-level credential); used to release dead capabilities, e.g. netd
      and ok-demux dropping a closed connection's ``uC ⋆``.

    Result: ``True`` on success; raises InvalidArgument on privilege
    violation (revealing only the caller's own labels to itself).
    """

    send: Optional[Label] = None
    receive: Optional[Label] = None
    raise_receive: Optional[Dict[Handle, int]] = None
    drop_send: Optional[Tuple[Handle, ...]] = None

    def __hash__(self) -> int:  # dict field; syscalls are never hashed
        return id(self)


@dataclass(frozen=True)
class GetLabels(Syscall):
    """Read back the caller's own (send, receive) labels.

    Result: ``(send, receive)`` as :class:`~repro.core.labels.Label`.
    """


@dataclass(frozen=True)
class EpCheckpoint(Syscall):
    """Enter the event-process realm (Section 6.1).

    ``event_body(ctx, msg)`` is a generator function.  After this call the
    base process never runs again; each message arriving on a port the
    *base* owns creates a fresh event process — private labels, private
    copy-on-write memory — running ``event_body`` with the message.
    Messages for ports an existing event process owns resume that event
    process at its ``EpYield``.

    Does not return in the base process.
    """

    event_body: Callable

    def __hash__(self) -> int:
        return id(self)


@dataclass(frozen=True)
class EpYield(Syscall):
    """Save this event process's labels, receive rights and modified pages,
    then suspend until the next message for one of its ports arrives.

    Result: the next :class:`~repro.kernel.message.Message` for this EP.
    """


@dataclass(frozen=True)
class EpClean(Syscall):
    """Revert event-process memory to the base process's contents,
    discarding the EP's private page copies — used before yielding to drop
    temporary state (stack, scratch buffers) so a cached session keeps only
    its session data (Section 7.3).

    Exactly one addressing mode:

    - ``start``/``length``: revert an address range;
    - ``region``: revert one named region;
    - ``keep``: revert *everything except* the named regions (the idiom of
      Section 7.3 — keep session data, drop the rest).

    Result: number of private pages dropped.
    """

    start: Optional[int] = None
    length: Optional[int] = None
    region: Optional[str] = None
    keep: Optional[Tuple[str, ...]] = None


@dataclass(frozen=True)
class EpExit(Syscall):
    """Free this event process: private pages, kernel state, receive
    rights.  Does not affect other event processes."""


@dataclass(frozen=True)
class Deadline(Syscall):
    """Sleep for *cycles* of simulated time.

    The caller blocks until the kernel timer queue reaches
    ``clock.now + cycles``; no message delivery wakes it early (use
    ``Recv(timeout=...)`` for that).  This is the primitive behind retry
    backoff and periodic sweeps.

    Result: ``None``.
    """

    cycles: int


@dataclass(frozen=True)
class GetEnv(Syscall):
    """Read the process environment dict (bootstrap port names).

    Result: dict.
    """


@dataclass(frozen=True)
class Compute(Syscall):
    """Model *cycles* of user-space computation, charged to the caller's
    component category.  (Exposed on the context as ``ctx.compute``.)"""

    cycles: int
    category: Optional[str] = None


SyscallResult = Any
ProgramStep = Tuple[Syscall, SyscallResult]
