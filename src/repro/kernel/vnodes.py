"""The vnode table.

In kernel space each active handle corresponds to a 64-byte structure
called a *vnode* (paper Section 5.6).  For port handles the vnode holds the
port state (label, receive-rights reference, message queue); for plain
compartment handles it is just the identity record.  A hash table maps
handle values to vnodes; vnodes are reference counted, and memory is
reusable once all references disappear.

For the reproduction the table's job is memory accounting: the number of
live vnodes grows with the number of users (two handles per user, plus one
port per TCP connection and per session), which is one of the kernel
contributions to Figure 6's ~1.5 pages per cached session.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.handles import Handle

#: Kernel bytes per vnode (paper Section 5.6).
VNODE_BYTES = 64


@dataclass
class Vnode:
    """One active handle's kernel record."""

    handle: Handle
    is_port: bool = False
    #: Key of the context (process/EP) holding receive rights, if a port.
    owner: Optional[str] = None
    #: Whether a port has been dissociated (its queue is dead).
    dissociated: bool = False
    refcount: int = 1


@dataclass
class VnodeTable:
    """Hash table of active handles."""

    table: Dict[Handle, Vnode] = field(default_factory=dict)

    def create(self, handle: Handle, is_port: bool = False, owner: Optional[str] = None) -> Vnode:
        if handle in self.table:
            raise AssertionError(f"duplicate handle {handle:#x}")
        vnode = Vnode(handle, is_port=is_port, owner=owner)
        self.table[handle] = vnode
        return vnode

    def get(self, handle: Handle) -> Optional[Vnode]:
        return self.table.get(handle)

    def incref(self, handle: Handle) -> None:
        vnode = self.table.get(handle)
        if vnode is not None:
            vnode.refcount += 1

    def decref(self, handle: Handle) -> None:
        vnode = self.table.get(handle)
        if vnode is None:
            return
        vnode.refcount -= 1
        if vnode.refcount <= 0 and (not vnode.is_port or vnode.dissociated):
            del self.table[handle]

    def __len__(self) -> int:
        return len(self.table)

    def memory_bytes(self) -> int:
        return VNODE_BYTES * len(self.table)
