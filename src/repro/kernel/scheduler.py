"""Deterministic round-robin scheduler.

The simulator is single-threaded and cooperative: the scheduler keeps a
FIFO run queue of task keys; the kernel pops one, advances its generator
by one syscall, and pushes it back if it is still runnable.  Determinism
matters — experiments must be exactly reproducible — so there is no
randomisation anywhere in scheduling.

Event processes piggyback on their base process's schedulable identity:
one base process with a thousand dormant EPs costs the scheduler exactly
one queue entry when a message arrives, which is the "kernel scheduling
cost is little higher than that of a single process" property of
Section 6.2.

Sharding (``repro.cluster``) does not change any of this: a cluster is N
independent kernels, each with its own scheduler.  Cross-shard ingress
(``Kernel.enqueue_external``) wakes the receiving port's owner through
the ordinary enqueue path, so a shard's schedule stays a deterministic
function of its own inputs — the property the cross-shard differential
suite leans on.

The run queue uses lazy deletion: ``remove`` only clears the membership
set (O(1)), leaving a stale key in the deque that ``dequeue`` skips when
it surfaces.  Every scheduler operation is therefore O(runnable) — a base
process cycling between blocked and runnable never pays an O(queue
length) ``deque.remove`` scan, no matter how many other tasks exist.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Set


class Scheduler:
    """FIFO run queue with membership tracking and lazy deletion.

    Invariant: ``_queued`` ⊆ keys present in ``_queue``; deque entries
    not in ``_queued`` are stale and skipped at ``dequeue``.  A runnable
    key's position is its *earliest* queued occurrence: a task that
    blocks (``remove``) and wakes (``enqueue``) before its old entry
    surfaces resurrects that entry and keeps its original turn — a
    deliberate, deterministic divergence from eager removal (which would
    send it to the back).  ``runnable``/``take`` mirror ``dequeue``'s
    view exactly, so the explorer sees the same order the FIFO path
    would run.
    """

    def __init__(self) -> None:
        self._queue: Deque[str] = deque()
        self._queued: Set[str] = set()

    def enqueue(self, key: str) -> None:
        """Make *key* runnable (idempotent while already queued)."""
        if key not in self._queued:
            self._queue.append(key)
            self._queued.add(key)

    def dequeue(self) -> str:
        while True:
            key = self._queue.popleft()
            if key in self._queued:
                self._queued.discard(key)
                return key

    def remove(self, key: str) -> None:
        """Drop *key* from the queue if present (task exited/blocked)."""
        self._queued.discard(key)

    # -- controlled scheduling (repro.analysis.sched) -----------------------

    def runnable(self) -> List[str]:
        """Live keys in dequeue order: index *i* here is exactly the key
        the (i+1)-th consecutive ``dequeue`` would return.  O(queue
        length) — used only by the explorer, never on the FIFO hot path."""
        out: List[str] = []
        seen: Set[str] = set()
        for key in self._queue:
            if key in self._queued and key not in seen:
                seen.add(key)
                out.append(key)
        return out

    def take(self, key: str) -> None:
        """Dequeue *key* specifically (a controlled pick).  The key's
        earliest deque occurrence is removed eagerly — exactly the entry
        ``dequeue`` would have consumed for it — so ``take`` composes
        with re-enqueue precisely like the FIFO path does.  O(queue
        length), explorer-only."""
        if key not in self._queued:
            raise KeyError(f"not runnable: {key!r}")
        self._queued.discard(key)
        try:
            self._queue.remove(key)
        except ValueError:  # pragma: no cover - _queued ⊆ deque invariant
            pass

    def __contains__(self, key: str) -> bool:
        return key in self._queued

    def __len__(self) -> int:
        return len(self._queued)

    def __bool__(self) -> bool:
        return bool(self._queued)
