"""Deterministic round-robin scheduler.

The simulator is single-threaded and cooperative: the scheduler keeps a
FIFO run queue of task keys; the kernel pops one, advances its generator
by one syscall, and pushes it back if it is still runnable.  Determinism
matters — experiments must be exactly reproducible — so there is no
randomisation anywhere in scheduling.

Event processes piggyback on their base process's schedulable identity:
one base process with a thousand dormant EPs costs the scheduler exactly
one queue entry when a message arrives, which is the "kernel scheduling
cost is little higher than that of a single process" property of
Section 6.2.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Set


class Scheduler:
    """FIFO run queue with membership tracking."""

    def __init__(self) -> None:
        self._queue: Deque[str] = deque()
        self._queued: Set[str] = set()

    def enqueue(self, key: str) -> None:
        """Make *key* runnable (idempotent while already queued)."""
        if key not in self._queued:
            self._queue.append(key)
            self._queued.add(key)

    def dequeue(self) -> str:
        key = self._queue.popleft()
        self._queued.discard(key)
        return key

    def remove(self, key: str) -> None:
        """Drop *key* from the queue if present (task exited/blocked)."""
        if key in self._queued:
            self._queued.discard(key)
            self._queue.remove(key)

    def __contains__(self, key: str) -> bool:
        return key in self._queued

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)
