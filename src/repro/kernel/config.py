"""Kernel configuration — the single place run-mode options live.

Historically every option was its own ``Kernel(...)`` keyword with its own
environment-variable fallback scattered through the constructor.
:class:`KernelConfig` replaces that surface: a frozen dataclass that is
validated once, read everywhere, and constructed either explicitly
(``Kernel(config=KernelConfig(metrics=True))``) or from the environment
(:meth:`KernelConfig.from_env`, which is what a bare ``Kernel()`` does).

The legacy keywords still work — ``Kernel(trace=True, sanitize=True)``
builds the equivalent config and emits a :class:`DeprecationWarning` — so
existing call sites keep running while the tree migrates.

Environment variables (all optional; explicit arguments win):

======================== ==============================================
``REPRO_SANITIZE``        enable the differential label sanitizer
``REPRO_SANITIZE_STRICT`` raise on the first sanitizer violation
``REPRO_SANITIZE_SAMPLE`` check every Nth IPC only (``64`` or ``1/64``)
``REPRO_TRACE``           keep the kernel debug log, re-raise crashes
``REPRO_LABEL_COST_MODE`` ``paper`` or ``fused`` cycle billing
``REPRO_RAM_BYTES``       cap simulated RAM (bytes)
``REPRO_METRICS``         enable the observability metrics registry
``REPRO_SPANS``           enable span tracing (Chrome trace export)
``REPRO_FAULTS``          path to a ``faultplan/v1`` JSON fault plan
``REPRO_FAULT_SEED``      PRNG seed for the fault injector
``REPRO_STORE``           path to ok-dbproxy's ``wal/v1`` store file
``REPRO_INTERN_LABELS``   hash-cons labels + memoize Figure 4 hot ops
``REPRO_LABELOP_CACHE``   bound on the label-op cache (entries)
``REPRO_ELIDE``           consult verified-flow proofs to elide checks
``REPRO_PROOFS``          path to the ``proofs/v1`` document to load
======================== ==============================================
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.plan import FaultPlan

#: Valid values for ``label_cost_mode``.
LABEL_COST_MODES = ("paper", "fused")

_TRUTHY_OFF = ("", "0", "false", "no", "off")


def _env_bool(env: Mapping[str, str], name: str) -> Optional[bool]:
    """Tri-state: None when unset, else the usual truthiness convention."""
    if name not in env:
        return None
    return env[name].strip().lower() not in _TRUTHY_OFF


def _env_int(env: Mapping[str, str], name: str) -> Optional[int]:
    raw = env.get(name, "").strip()
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError as err:
        raise ValueError(f"{name} must be an integer, got {raw!r}") from err


def parse_sample(raw: str) -> int:
    """Parse a sanitizer sampling period: ``"64"`` and ``"1/64"`` both
    mean "check one IPC in 64"; ``"1"`` (or ``"1/1"``) means every IPC."""
    text = raw.strip()
    if "/" in text:
        num, _, den = text.partition("/")
        if num.strip() != "1":
            raise ValueError(
                f"sanitize sample must be 1/N or N, got {raw!r}"
            )
        text = den.strip()
    try:
        period = int(text)
    except ValueError as err:
        raise ValueError(f"sanitize sample must be 1/N or N, got {raw!r}") from err
    if period <= 0:
        raise ValueError(f"sanitize sample must be positive, got {raw!r}")
    return period


@dataclass(frozen=True)
class KernelConfig:
    """Immutable run-mode options for one :class:`~repro.kernel.Kernel`.

    Groups (see DESIGN.md §8 for the observability half):

    - simulation shape: ``ram_bytes``, ``boot_key``;
    - diagnostics: ``trace`` (debug log + re-raise crashed bodies),
      ``sanitize``/``sanitize_strict`` (the differential label sanitizer)
      and ``sanitize_sample`` (check only every Nth IPC — the sampled
      per-shard safety net ``repro.cluster`` runs with, ``1`` = every IPC);
    - cycle billing: ``label_cost_mode`` — ``"paper"`` bills label work as
      the 2005 implementation would pay it (reproduces Figure 9),
      ``"fused"`` bills the sparsity-aware operations actually executed;
    - observability: ``metrics`` (the :class:`~repro.obs.MetricsRegistry`
      wired through the kernel hot paths), ``spans`` (message/activation
      span recording, exportable as Chrome ``trace_event`` JSON),
      ``span_limit`` (ring-buffer bound on recorded span events);
    - fault injection: ``faults`` (a :class:`~repro.faults.plan.FaultPlan`
      the kernel consults at its choke points) and ``fault_seed`` (the
      dedicated PRNG seed — the same (plan, seed) pair reproduces the
      identical fault event sequence);
    - durable storage (DESIGN.md §14): ``store_path`` — when set,
      ok-dbproxy backs its tables with a write-ahead-logged
      :class:`~repro.store.store.LabeledStore` at that path (recovering
      it at boot); ``None`` (the default) keeps the bit-identical
      in-memory path and never imports :mod:`repro.store`;
    - the interned-label fast path (DESIGN.md §11): ``intern_labels``
      hash-conses every kernel-resident label through the process-wide
      :class:`~repro.core.interning.InternTable` and memoizes the three
      Figure 4 hot operations in a bounded LRU
      :class:`~repro.core.interning.LabelOpCache` of
      ``labelop_cache_size`` entries;
    - proof-guided check elision (DESIGN.md §15): ``elide_checks`` loads
      the ``proofs/v1`` document at ``proof_path`` into a
      :class:`~repro.kernel.elide.VerifiedFlowTable` consulted before
      ``check_send``/``raise_receive`` — a proven, still-valid edge
      skips the full Figure 4 check and applies the precomputed effect
      cores; implies the interning machinery (the stub keys are
      intern-id tuples).  ``elide_checks`` without a ``proof_path`` is
      valid and simply never hits (an empty table).
    """

    ram_bytes: Optional[int] = None
    boot_key: bytes = b"asbestos-boot-key"
    trace: bool = False
    label_cost_mode: str = "paper"
    sanitize: bool = False
    sanitize_strict: bool = True
    sanitize_sample: int = 1
    metrics: bool = False
    spans: bool = False
    span_limit: int = 250_000
    faults: Optional["FaultPlan"] = None
    fault_seed: int = 0
    store_path: Optional[str] = None
    intern_labels: bool = False
    labelop_cache_size: int = 4096
    elide_checks: bool = False
    proof_path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.label_cost_mode not in LABEL_COST_MODES:
            raise ValueError(
                f"unknown label_cost_mode: {self.label_cost_mode!r} "
                f"(expected one of {LABEL_COST_MODES})"
            )
        if self.ram_bytes is not None and self.ram_bytes <= 0:
            raise ValueError(f"ram_bytes must be positive, got {self.ram_bytes}")
        if self.sanitize_sample <= 0:
            raise ValueError(
                f"sanitize_sample must be positive, got {self.sanitize_sample}"
            )
        if self.span_limit <= 0:
            raise ValueError(f"span_limit must be positive, got {self.span_limit}")
        if self.labelop_cache_size <= 0:
            raise ValueError(
                f"labelop_cache_size must be positive, got {self.labelop_cache_size}"
            )

    @classmethod
    def from_env(
        cls,
        env: Optional[Mapping[str, str]] = None,
        **overrides: Any,
    ) -> "KernelConfig":
        """Build a config from the environment.

        Precedence: explicit ``overrides`` > environment variables >
        dataclass defaults.  ``overrides`` whose value is ``None`` are
        treated as "unset" for the tri-state options (matching the legacy
        ``Kernel(sanitize=None)`` convention of "consult the environment").
        """
        env = os.environ if env is None else env
        values: Dict[str, Any] = {}
        sanitize = _env_bool(env, "REPRO_SANITIZE")
        if sanitize is not None:
            values["sanitize"] = sanitize
        strict = _env_bool(env, "REPRO_SANITIZE_STRICT")
        if strict is not None:
            values["sanitize_strict"] = strict
        sample = env.get("REPRO_SANITIZE_SAMPLE", "").strip()
        if sample:
            values["sanitize_sample"] = parse_sample(sample)
        trace = _env_bool(env, "REPRO_TRACE")
        if trace is not None:
            values["trace"] = trace
        metrics = _env_bool(env, "REPRO_METRICS")
        if metrics is not None:
            values["metrics"] = metrics
        spans = _env_bool(env, "REPRO_SPANS")
        if spans is not None:
            values["spans"] = spans
        mode = env.get("REPRO_LABEL_COST_MODE", "").strip()
        if mode:
            values["label_cost_mode"] = mode
        ram = _env_int(env, "REPRO_RAM_BYTES")
        if ram is not None:
            values["ram_bytes"] = ram
        plan_path = env.get("REPRO_FAULTS", "").strip()
        if plan_path:
            # Deferred import: repro.faults pulls in kernel-adjacent
            # modules, and config must stay importable first.
            from repro.faults.plan import load_plan

            values["faults"] = load_plan(plan_path)
        seed = _env_int(env, "REPRO_FAULT_SEED")
        if seed is not None:
            values["fault_seed"] = seed
        store_path = env.get("REPRO_STORE", "").strip()
        if store_path:
            values["store_path"] = store_path
        intern = _env_bool(env, "REPRO_INTERN_LABELS")
        if intern is not None:
            values["intern_labels"] = intern
        cache_size = _env_int(env, "REPRO_LABELOP_CACHE")
        if cache_size is not None:
            values["labelop_cache_size"] = cache_size
        elide = _env_bool(env, "REPRO_ELIDE")
        if elide is not None:
            values["elide_checks"] = elide
        proof_path = env.get("REPRO_PROOFS", "").strip()
        if proof_path:
            values["proof_path"] = proof_path
        for key, value in overrides.items():
            if value is None and key not in ("ram_bytes",):
                continue  # "unset": keep the env/default resolution
            values[key] = value
        return cls(**values)

    def replace(self, **changes: Any) -> "KernelConfig":
        """A copy with *changes* applied (``dataclasses.replace``)."""
        return dataclasses.replace(self, **changes)
