"""IPC messages.

A message carries an opaque payload plus the labels the sender supplied.
Of the four optional labels only the *verification* label ``V`` is passed
up to the receiving application (Section 5.4) — it proves an upper bound on
the sender's send label without conveying the label itself (avoiding the
confused-deputy pitfall of shipping full credentials with every message).

The receiver never learns the sender's identity from the kernel; services
that need replies include a reply port in the payload by convention (the
9P-inspired protocol of :mod:`repro.ipc.protocol`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.chunks import ChunkedLabel
from repro.core.handles import Handle
from repro.core.labels import Label


@dataclass
class Message:
    """A delivered message, as seen by the receiving program."""

    #: The port this message was delivered to.
    port: Handle
    #: Opaque payload (any Python value; treated as bytes-like by netd).
    payload: Any
    #: The sender's verification label V, passed up on delivery (§5.4).
    verify: Label = field(default_factory=Label.top)

    def __repr__(self) -> str:
        return f"<Message to port {self.port:#x}: {self.payload!r}>"


@dataclass
class QueuedMessage:
    """Kernel-internal: a message waiting in a port queue.

    Captures the sender's effective labels at *send* time; the receiver-
    dependent checks (Figure 4 requirements 1 and 4) run at delivery time
    against whatever the receiver's labels are then.
    """

    seq: int                              # global arrival order
    port: Handle
    payload: Any
    effective_send: ChunkedLabel          # ES = PS ⊔ CS, snapshotted at send
    decontaminate_send: ChunkedLabel      # DS
    verify: ChunkedLabel                  # V
    decontaminate_receive: ChunkedLabel   # DR
    sender_name: str                      # diagnostics only (drop log)
    payload_bytes: int = 0                # modelled message size
    #: Receive rights travelling with this message (Section 4).
    transfer: tuple = ()
    #: True for cross-shard ingress (``Kernel.enqueue_external``): the
    #: send-time checks ran on another shard, and per-shard verified-flow
    #: proofs must never elide the delivery checks for it (DESIGN.md §15).
    external: bool = False

    def to_message(self) -> Message:
        return Message(
            port=self.port,
            payload=self.payload,
            verify=self.verify.to_label(),
        )
