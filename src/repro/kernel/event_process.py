"""Event processes (paper Section 6).

An event process (EP) abstracts the subset of process state belonging to a
single user: its kernel state is only a send label, a receive label,
receive rights for ports, and a set of private memory pages plus
bookkeeping — 44 bytes of kernel memory, versus 320 for a minimal process.

Lifecycle (Section 6.1):

- the base process calls ``ep_checkpoint`` and never runs again;
- a message arriving on a port the *base* owns makes the kernel create a
  fresh EP — labels copied from the base, no receive rights, no private
  pages — and run the registered event body with the message;
- a message for a port an *existing* EP owns resumes that EP at its
  ``ep_yield``;
- ``ep_clean`` reverts memory ranges to the base contents (dropping the
  EP's private page copies); ``ep_exit`` frees everything.

Execution states are **not** isolated: an EP that blocks in ``recv``
blocks the entire process, and ``exit`` from inside an EP kills the whole
process — both faithful to the paper.
"""

from __future__ import annotations


from repro.kernel.memory import EpView
from repro.kernel.process import Process, Task, TaskState

#: Kernel bytes per event process (paper Section 6.1: "altogether occupying
#: 44 bytes of Asbestos kernel memory").
EP_STRUCT_BYTES = 44

#: Per-modified-page bookkeeping bytes in the EP's modified-page list.
EP_PAGE_RECORD_BYTES = 12


class EventProcess(Task):
    """One isolated continuation inside a base process."""

    def __init__(self, base: Process, index: int, view: EpView):
        super().__init__(
            key=f"{base.key}e{index}",
            name=f"{base.name}[{index}]",
            component=base.component,
        )
        self.base = base
        self.index = index
        self.view = view
        # Labels copied from the base at creation; contamination from the
        # triggering message is applied by the kernel afterwards.
        self.send_label = base.send_label
        self.receive_label = base.receive_label
        self.state = TaskState.DORMANT
        #: Set once the EP has called ep_exit.
        self.exited = False

    @property
    def is_event_process(self) -> bool:
        return True

    def kernel_bytes(self) -> int:
        """EP kernel state plus its modified-page list (the pages
        themselves are counted by the page accountant)."""
        return EP_STRUCT_BYTES + EP_PAGE_RECORD_BYTES * self.view.private_page_count
