"""Kernel error taxonomy.

Errors fall into two classes with very different security treatment:

- **Loud errors** (subclasses of :class:`KernelError`) are raised into the
  calling process.  They are only used where the failure reveals nothing
  about other processes' labels: malformed arguments, operating on a port
  the caller does not own, resource exhaustion of the caller's own memory.

- **Silent failures** never surface to any process.  Label checks that fail
  drop the message without notice (paper Section 4: reliable delivery
  notification would let a process leak information through careful label
  changes).  The kernel records these in a diagnostic
  :class:`DropLog` that tests and experiments may inspect out-of-band —
  the simulated programs themselves must never read it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


class KernelError(Exception):
    """Base class for errors the kernel raises into the calling process."""


class InvalidArgument(KernelError):
    """Malformed syscall argument (bad label, unknown port, bad address)."""


class NotOwner(KernelError):
    """The caller does not hold receive rights for the port it named."""


class ResourceExhausted(KernelError):
    """The simulated machine is out of memory (or another hard resource)."""


class ProcessDied(KernelError):
    """Internal: a process body raised; converted to an exit by the kernel."""


class SimulationError(Exception):
    """A bug in simulation harness usage (not a modelled kernel error):
    e.g. yielding a non-syscall object, or calling ep_yield outside an
    event process."""


# -- silent-drop diagnostics ----------------------------------------------------

#: Reasons a message can be silently dropped.
DROP_LABEL_CHECK = "label-check"          # requirement (1) of Figure 4
DROP_DECONT_PRIVILEGE = "decont-privilege"  # requirements (2)/(3)
DROP_PORT_LABEL = "port-label"            # requirement (4)
DROP_DEAD_PORT = "dead-port"              # receiver exited / port dissociated
DROP_QUEUE_LIMIT = "queue-limit"          # resource exhaustion
DROP_FAULT = "fault-injected"             # repro.faults injected drop


@dataclass
class DropLog:
    """Out-of-band record of silently dropped messages.

    Only the experiment harness and the test suite read this; simulated
    programs have no syscall that exposes it (it would otherwise be a
    storage channel).
    """

    records: List[Tuple[str, str, str]] = field(default_factory=list)
    enabled: bool = True

    def record(self, reason: str, sender: str, port: str) -> None:
        if self.enabled:
            self.records.append((reason, sender, port))

    def count(self, reason: str = "") -> int:
        if not reason:
            return len(self.records)
        return sum(1 for r, _, _ in self.records if r == reason)

    def clear(self) -> None:
        self.records.clear()
