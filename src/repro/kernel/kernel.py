"""The Asbestos kernel simulator.

Single-threaded, deterministic, cooperative: program bodies are generators
that yield syscall objects; the kernel advances one task per scheduler
step, executes the syscall, and hands the result back at the next resume.

The security-relevant parts implement Figure 4 exactly:

``send(p, data, CS, DS, V, DR)`` by process P, where Q owns port p::

    ES = PS ⊔ CS
    requirements:
      (1) ES ⊑ (QR ⊔ DR) ⊓ V ⊓ pR          — checked at delivery time
      (2) DS(h) < 3  ⇒  PS(h) = ⋆           — checked at send time
      (3) DR(h) > ⋆  ⇒  PS(h) = ⋆           — checked at send time
      (4) DR ⊑ pR                            — checked at delivery time
    effects (at delivery):
      QS ← (QS ⊓ DS) ⊔ (ES ⊓ QS*)
      QR ← QR ⊔ DR

Sends are asynchronous and unreliable: the sender always sees success, and
a message failing any requirement is silently dropped (recorded only in
the out-of-band :class:`~repro.kernel.errors.DropLog`).  Label checks and
effects run when the receiver actually receives — the kernel cannot know
deliverability earlier, since labels change in the meantime (Section 4).
"""

from __future__ import annotations

import heapq
import warnings
from typing import (
    Any,
    Callable,
    Dict,
    Generator,
    List,
    Optional,
    Tuple,
    TYPE_CHECKING,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.elide import DeliverHit

from repro.core import labelops
from repro.core.chunks import ChunkedLabel, OpStats, shared_memory_bytes
from repro.core.handles import Handle, HandleAllocator
from repro.core.labels import (
    DEFAULT_PORT_LABEL,
    Label,
)
from repro.core.levels import L0, L3, STAR
from repro.kernel import syscalls as sc
from repro.kernel.clock import CycleClock, KERNEL_IPC, OTHER
from repro.kernel.config import KernelConfig
from repro.kernel.errors import (
    DROP_DEAD_PORT,
    DROP_DECONT_PRIVILEGE,
    DROP_FAULT,
    DROP_LABEL_CHECK,
    DROP_PORT_LABEL,
    DROP_QUEUE_LIMIT,
    DropLog,
    InvalidArgument,
    NotOwner,
    ResourceExhausted,
    SimulationError,
)
from repro.kernel.event_process import EventProcess
from repro.kernel.memory import (
    AddressSpace,
    EpView,
    PAGE_SIZE,
    PageAccountant,
)
from repro.kernel.message import Message, QueuedMessage
from repro.kernel.ports import Port, RemoteRoute
from repro.kernel.process import (
    Context,
    Process,
    STACK_PAGES,
    Task,
    TaskState,
    XSTACK_PAGES,
)
from repro.kernel.scheduler import Scheduler

_BOTTOM = ChunkedLabel.from_label(Label.bottom())
_TOP = ChunkedLabel.from_label(Label.top())


def _payload_bytes(payload: Any) -> int:
    """Cheap size model for message payloads."""
    if payload is None:
        return 8
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, str):
        return len(payload)
    if isinstance(payload, (int, float)):
        return 8
    if isinstance(payload, dict):
        return 16 + sum(_payload_bytes(k) + _payload_bytes(v) for k, v in payload.items())
    if isinstance(payload, (list, tuple)):
        return 16 + sum(_payload_bytes(v) for v in payload)
    return 64


#: Sentinel distinguishing "keyword not passed" from any real value, so
#: the deprecation shim only fires for arguments the caller actually used.
_UNSET: Any = object()


class Kernel:
    """The simulated machine: CPU clock, RAM, handle space, tasks, ports.

    Construct with a :class:`~repro.kernel.config.KernelConfig`::

        Kernel(config=KernelConfig(metrics=True, label_cost_mode="fused"))

    A bare ``Kernel()`` resolves its config from the environment
    (``KernelConfig.from_env()``), which is how whole test suites are
    swept under the sanitizer or metrics without touching call sites.
    The pre-config keywords (``trace=...``, ``sanitize=...``, ...) still
    work but emit a :class:`DeprecationWarning`.
    """

    def __init__(
        self,
        ram_bytes: Optional[int] = _UNSET,
        boot_key: bytes = _UNSET,
        trace: bool = _UNSET,
        label_cost_mode: str = _UNSET,
        sanitize: Optional[bool] = _UNSET,
        sanitize_strict: Optional[bool] = _UNSET,
        *,
        config: Optional[KernelConfig] = None,
    ):
        legacy = {
            key: value
            for key, value in (
                ("ram_bytes", ram_bytes),
                ("boot_key", boot_key),
                ("trace", trace),
                ("label_cost_mode", label_cost_mode),
                ("sanitize", sanitize),
                ("sanitize_strict", sanitize_strict),
            )
            if value is not _UNSET
        }
        if legacy:
            if config is not None:
                raise ValueError(
                    "pass options through config=KernelConfig(...), not "
                    f"alongside it (got legacy keywords {sorted(legacy)})"
                )
            warnings.warn(
                f"Kernel({', '.join(sorted(legacy))}=...) keywords are "
                "deprecated; use Kernel(config=KernelConfig(...)) or "
                "KernelConfig.from_env()",
                DeprecationWarning,
                stacklevel=2,
            )
            # from_env preserves the legacy semantics exactly: an explicit
            # sanitize=None keeps deferring to REPRO_SANITIZE.
            config = KernelConfig.from_env(**legacy)
        elif config is None:
            config = KernelConfig.from_env()
        self.config = config

        #: "paper" bills label work as the 2005 implementation would pay it
        #: (linear scans with only the min/max short-circuits — reproduces
        #: Figure 9); "fused" bills the sparsity-aware operations actually
        #: executed (the future-work optimisation; see bench_label_ops).
        self.label_cost_mode = config.label_cost_mode
        self.clock = CycleClock()
        self.allocator = HandleAllocator(key=config.boot_key)
        self.accountant = (
            PageAccountant(capacity_pages=config.ram_bytes // PAGE_SIZE)
            if config.ram_bytes
            else PageAccountant()
        )
        self.scheduler = Scheduler()
        self.drop_log = DropLog()
        self.tasks: Dict[str, Task] = {}
        self.processes: Dict[str, Process] = {}
        self.ports: Dict[Handle, Port] = {}
        self.label_stats = OpStats()
        self.trace = config.trace
        self.debug_lines: List[str] = []
        #: Covert-channel mitigation hook (Section 8): called before each
        #: spawn; returning False denies process creation.
        self.fork_limiter: Optional[Callable[[Process], bool]] = None
        #: Passive observers (repro.analysis.extract, repro.analysis.sched):
        #: objects whose ``on_spawn``/``on_send``/``on_inject``/
        #: ``on_ep_create``/``on_new_handle``/``on_new_port``/
        #: ``on_change_label``/``on_step``/``on_recv``/``on_deliver``/
        #: ``on_port_touch`` methods (all optional) are called at the
        #: matching kernel events.  The hot paths guard every dispatch
        #: behind ``if self.hooks:`` so an unobserved kernel pays one
        #: falsy check.
        self.hooks: List[Any] = []
        #: Pluggable scheduling nondeterminism (repro.kernel.nondet): when
        #: set, every scheduler pick and every timer-vs-task wake order is
        #: routed through this source's ``choose``, letting the explorer
        #: (repro.analysis.sched) drive the kernel through alternative
        #: interleavings.  None — the default, and the only configuration
        #: production runs use — is plain FIFO round-robin.
        self.nondet: Optional[Any] = None
        self._pid = 0
        self._seq = 0
        self._steps = 0
        # Import deferred to avoid a cycle at module load.
        from repro.kernel.vnodes import VnodeTable

        self.vnodes = VnodeTable()

        # -- observability (repro.obs) -------------------------------------
        # The hot paths guard every metric/span touch behind these two
        # plain attribute checks, so a kernel with observability disabled
        # pays (nearly) nothing.
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.spans import SpanRecorder

        self.metrics = MetricsRegistry(enabled=config.metrics)
        self.spans: Optional[SpanRecorder] = (
            SpanRecorder(limit=config.span_limit) if config.spans else None
        )
        if self.spans is None:
            # Skip the span-wrapping frame entirely on the hottest path:
            # an instance binding shadows the wrapper method, so a kernel
            # without span tracing resumes generators with zero extra
            # frames per activation.
            self._advance = self._advance_inner  # type: ignore[method-assign]
        self._obs = config.metrics
        ipc = self.metrics.scope("kernel.ipc")
        self._m_sends = ipc.counter("sends")
        self._m_injected = ipc.counter("injected")
        self._m_enqueued = ipc.counter("enqueued")
        self._m_delivered = ipc.counter("delivered")
        self._m_xshard_out = ipc.counter("xshard_out")
        self._m_xshard_in = ipc.counter("xshard_in")
        self._m_drops = {
            reason: ipc.counter(f"drops.{reason}")
            for reason in (
                DROP_LABEL_CHECK,
                DROP_DECONT_PRIVILEGE,
                DROP_PORT_LABEL,
                DROP_DEAD_PORT,
                DROP_QUEUE_LIMIT,
                DROP_FAULT,
            )
        }
        labels = self.metrics.scope("kernel.labels")
        self._m_label_fast = labels.counter("fast_path")
        self._m_label_full = labels.counter("full_merges")
        self._m_label_entries = labels.counter("entries_scanned")
        self._m_cache_hits = labels.counter("cache_hits")
        self._m_cache_misses = labels.counter("cache_misses")
        self._m_cache_evictions = labels.counter("cache_evictions")
        sched = self.metrics.scope("kernel.sched")
        self._m_steps = sched.counter("steps")
        self._m_queue_depth = sched.histogram("queue_depth")
        procs = self.metrics.scope("kernel.proc")
        self._m_spawns = procs.counter("spawned")
        self._m_ep_created = procs.counter("ep_created")
        self._m_ep_switches = procs.counter("ep_switched")
        elide = self.metrics.scope("kernel.elide")
        self._m_elide_deliver_hits = elide.counter("deliver_stub_hits")
        self._m_elide_send_hits = elide.counter("send_stub_hits")
        self._m_elide_invalidations = elide.counter("invalidations")
        self._m_elide_batch_drains = elide.counter("batch_drains")
        self._m_elide_batched = elide.counter("batched_messages")

        # -- interned-label fast path (repro.core.interning) -----------------
        # Labels are hash-consed through the process-wide intern table and
        # the three Figure 4 hot operations are memoized in a bounded LRU
        # keyed on interned ids.  Immutability makes the cache invalidation
        # free; the disabled path is byte-identical to a pre-cache kernel.
        self.intern_table = None
        self.labelop_cache = None
        self._cache_evictions_seen = 0
        if config.intern_labels or config.elide_checks:
            from repro.core.interning import LabelOpCache, global_intern_table

            self.intern_table = global_intern_table()
            self.labelop_cache = LabelOpCache(
                size=config.labelop_cache_size, table=self.intern_table
            )
            self.intern_table.intern(_BOTTOM)
            self.intern_table.intern(_TOP)

        # -- proof-guided check elision (repro.kernel.elide, DESIGN.md §15) --
        # A loaded proofs/v1 table of asbcheck-proven always-allowed edges;
        # delivery and send probe it before running the Figure 4 machinery.
        # elide_checks without a proof_path is a kernel that probes nothing
        # (flow_table stays None) — the configuration is valid so REPRO_ELIDE
        # can sweep a whole test suite whether or not proofs exist.
        self.flow_table = None
        self._elide_drains_seen = 0
        self._elide_batched_seen = 0
        if config.elide_checks and config.proof_path:
            from repro.kernel.elide import VerifiedFlowTable

            self.flow_table = VerifiedFlowTable.load(
                config.proof_path, self.intern_table
            )

        # Differential label sanitizer (repro.analysis): opt in per kernel
        # via KernelConfig(sanitize=True), or globally via REPRO_SANITIZE=1
        # (how a whole test suite is swept without touching call sites).
        self.sanitizer = None
        if config.sanitize:
            from repro.analysis.sanitizer import LabelSanitizer

            self.sanitizer = LabelSanitizer(self, strict=config.sanitize_strict)
        #: Sampled sanitizing (repro.cluster's per-shard safety net): with
        #: sanitize_sample = N, only every Nth sanitizer opportunity —
        #: counted across send checks and deliveries — actually runs the
        #: differential re-derivation.  N = 1 (the default) checks every
        #: IPC, exactly the pre-sampling behavior.  Deterministic: the
        #: sampled subset is a pure function of the IPC sequence.
        self._sanitize_period = config.sanitize_sample
        self._sanitize_tick = 0

        # -- cross-shard routing (repro.cluster) -----------------------------
        #: Handles that live on another shard: handle → RemoteRoute.  Only
        #: the cluster runtime populates this; a standalone kernel never
        #: pays more than one falsy check on the send path.
        self.remote_routes: Dict[Handle, RemoteRoute] = {}
        #: Egress hook set by the shard runtime: called with
        #: (route, message-kwargs) for each send whose port resolves to a
        #: RemoteRoute; the runtime serializes it as wire/v1 and ships it.
        self.xshard_out: Optional[Callable[[RemoteRoute, Dict[str, Any]], None]] = None

        # -- kernel timers (Recv timeout / Deadline) ------------------------
        # Min-heap of (deadline_cycles, serial, task_key, token).  The token
        # is the blocking syscall object itself; cancellation is lazy — a
        # timer whose task no longer blocks on that exact token is ignored
        # when it pops.
        self._timers: List[Tuple[int, int, str, Any]] = []
        self._timer_serial = 0

        # -- fault injection (repro.faults) ---------------------------------
        # Opt in via KernelConfig(faults=FaultPlan(...)) or REPRO_FAULTS=
        # <plan.json>.  Delayed messages live in a min-heap of
        # (release_step, serial, enqueue-kwargs) and re-enter _enqueue
        # fault-exempt when their round comes up.
        self.faults = None
        self._delayed: List[Tuple[int, int, Dict[str, Any]]] = []
        self._delay_serial = 0
        if config.faults is not None:
            from repro.faults.injector import FaultInjector

            self.faults = FaultInjector(config.faults, seed=config.fault_seed, kernel=self)

    def _hook(self, method: str, *args: Any) -> None:
        for observer in self.hooks:
            fn = getattr(observer, method, None)
            if fn is not None:
                fn(*args)

    # -- bootstrapping -----------------------------------------------------------

    def spawn(
        self,
        body: Callable,
        name: str,
        component: str = OTHER,
        env: Optional[Dict[str, Any]] = None,
        parent: Optional[Task] = None,
        inherit_labels: bool = False,
        notify_exit: Optional[Handle] = None,
    ) -> Process:
        """Create a process running generator function *body(ctx)*.

        With ``inherit_labels`` the child gets copies of *parent*'s labels
        (privilege distribution by forking, Section 5.3); otherwise it gets
        the defaults ``PS = {1}``, ``PR = {2}``.
        """
        if self.fork_limiter is not None and parent is not None:
            if not self.fork_limiter(parent):  # type: ignore[arg-type]
                raise ResourceExhausted("process creation rate limited")
        if self.faults is not None and self.faults.on_spawn(name, self._steps):
            raise ResourceExhausted(f"spawn of {name!r} failed (fault injection)")
        self._pid += 1
        space = AddressSpace(self.accountant)
        space.alloc(STACK_PAGES * PAGE_SIZE, "stack")
        space.alloc(XSTACK_PAGES * PAGE_SIZE, "xstack")
        process = Process(
            pid=self._pid,
            name=name,
            component=component,
            body=body,
            env=dict(env or {}),
            address_space=space,
        )
        if parent is not None and inherit_labels:
            process.send_label = parent.send_label
            process.receive_label = parent.receive_label
        if self.intern_table is not None:
            process.send_label = self.intern_table.intern(process.send_label)
            process.receive_label = self.intern_table.intern(process.receive_label)
        process.notify_exit = notify_exit
        process.ctx = Context(self, process, space, process.env)
        process.gen = body(process.ctx)
        if not isinstance(process.gen, Generator):
            raise SimulationError(f"process body {name!r} is not a generator function")
        self.tasks[process.key] = process
        self.processes[process.key] = process
        self.clock.charge(OTHER, self.clock.cost.spawn)
        self.scheduler.enqueue(process.key)
        if self._obs:
            self._m_spawns.inc()
        if self.hooks:
            self._hook("on_spawn", process)
        return process

    def inject(self, port: Handle, payload: Any) -> bool:
        """Enqueue a message from *outside* the label system — the network
        wire.  Labels are the defaults of a maximally untainted sender, so
        the receiver is not contaminated and ordinary receive checks apply."""
        if self._obs:
            self._m_injected.inc()
        if self.hooks:
            self._hook("on_inject", port, payload)
        return self._enqueue(
            port=port,
            payload=payload,
            effective_send=self._intern(ChunkedLabel.from_label(Label.send_default())),
            ds=_TOP,
            v=_TOP,
            dr=_BOTTOM,
            sender_name="<wire>",
        )

    def enqueue_external(
        self,
        port: Handle,
        payload: Any,
        *,
        effective_send: ChunkedLabel,
        ds: ChunkedLabel,
        v: ChunkedLabel,
        dr: ChunkedLabel,
        sender_name: str = "<xshard>",
    ) -> bool:
        """Enqueue a message whose send-time checks ran on another shard.

        The cross-shard ingress half of ``repro.cluster``: the sending
        shard already enforced Figure 4 requirements (2) and (3) and
        computed ``ES = PS ⊔ CS``; this kernel re-interns the decoded
        labels and runs the delivery-time checks (1) and (4) plus the
        label effects locally, exactly as for a local send.  Unlike
        :meth:`inject`, the caller supplies real labels — cross-shard
        taint and decontamination propagate.
        """
        if self._obs:
            self._m_xshard_in.inc()
        return self._enqueue(
            port=port,
            payload=payload,
            effective_send=self._intern(effective_send),
            ds=self._intern(ds),
            v=self._intern(v),
            dr=self._intern(dr),
            sender_name=sender_name,
            external=True,
        )

    # -- the run loop ----------------------------------------------------------------

    def run(self, max_steps: int = 10_000_000) -> int:
        """Advance until no task is runnable; returns steps executed.

        When the run queue drains but kernel timers (Recv timeouts,
        Deadline sleeps) or fault-delayed messages are still pending, the
        clock jumps forward to the next event — simulated time passes with
        nothing to run, exactly like an idle CPU — and the loop continues.
        Quiescence means no runnable task, no live timer, and no deferred
        message.
        """
        steps = 0
        while steps < max_steps:
            if self._timers:
                # Timer-vs-task wake order: with a due timer *and* a
                # runnable task, the kernel historically fires the timer
                # first.  A nondet source may invert that for one loop
                # iteration (the timer stays due and is re-offered), so
                # the explorer can race timeouts against queued messages.
                if (
                    self.nondet is not None
                    and self.scheduler
                    and self._timers[0][0] <= self.clock.now
                    and self.nondet.choose("wake", ("timers", "task")) == 1
                ):
                    pass
                else:
                    self._fire_due_timers()
            if not self.scheduler:
                if not self._advance_idle():
                    break
                continue
            self._step()
            steps += 1
        if steps >= max_steps:
            raise SimulationError(f"run did not quiesce within {max_steps} steps")
        return steps

    def _advance_idle(self) -> bool:
        """Nothing runnable: release the next deferred message or jump the
        clock to the earliest live timer.  Returns False at quiescence."""
        if self._delayed:
            release_step, _, kwargs = heapq.heappop(self._delayed)
            self._steps = max(self._steps, release_step)
            self._enqueue(fault_exempt=True, **kwargs)
            return True
        while self._timers:
            deadline, _, key, token = self._timers[0]
            task = self.tasks.get(key)
            if task is None or task.state != TaskState.BLOCKED or task.blocked_on is not token:
                heapq.heappop(self._timers)  # cancelled; purge and look again
                continue
            if deadline > self.clock.now:
                # Idle wait: simulated time passes with no work to do.
                self.clock.charge(OTHER, deadline - self.clock.now)
            self._fire_due_timers()
            return True
        return False

    def _arm_timer(self, task: Task, token: Any, deadline: int) -> None:
        self._timer_serial += 1
        heapq.heappush(self._timers, (deadline, self._timer_serial, task.key, token))

    def _fire_due_timers(self) -> None:
        """Wake every task whose timer deadline has passed.  Stale timers —
        the task completed its recv, died, or blocked on something newer —
        are discarded silently.  A timed-out Recv first retries delivery:
        only a task with truly nothing deliverable sees the ``None``
        timeout result (the timer must not race messages already queued)."""
        while self._timers and self._timers[0][0] <= self.clock.now:
            _, _, key, token = heapq.heappop(self._timers)
            task = self.tasks.get(key)
            if task is None or task.state != TaskState.BLOCKED or task.blocked_on is not token:
                continue
            if not self._retry_blocked_recv(task):
                task.blocked_on = None
                task.state = TaskState.RUNNABLE
                task.pending = None
            if isinstance(task, EventProcess):
                # A timed-out EP resumes through its base's realm step.
                self.scheduler.enqueue(task.base.key)
            else:
                self.scheduler.enqueue(task.key)

    def _release_due_messages(self) -> None:
        while self._delayed and self._delayed[0][0] <= self._steps:
            _, _, kwargs = heapq.heappop(self._delayed)
            self._enqueue(fault_exempt=True, **kwargs)

    def _defer_enqueue(self, rounds: int, kwargs: Dict[str, Any]) -> None:
        self._delay_serial += 1
        heapq.heappush(self._delayed, (self._steps + rounds, self._delay_serial, kwargs))

    def _step(self) -> None:
        if self.nondet is None:
            key = self.scheduler.dequeue()
        else:
            # Controlled pick: the source chooses among every runnable
            # task (index 0 = the FIFO head, so a default-answering
            # source reproduces plain round-robin).
            options = self.scheduler.runnable()
            key = options[self.nondet.choose("pick", tuple(options))]
            self.scheduler.take(key)
        task = self.tasks.get(key)
        if task is None or task.state == TaskState.EXITED:
            return
        self._steps += 1
        if self._obs:
            self._m_steps.inc()
            self._m_queue_depth.observe(len(self.scheduler))
        if self.faults is not None:
            self.faults.on_step(self, self._steps)
            if self._delayed:
                self._release_due_messages()
            task = self.tasks.get(key)  # kill_ep may have destroyed it
            if task is None or task.state == TaskState.EXITED:
                return
            if self.faults.on_pick(task.name, self._steps):
                self.scheduler.enqueue(key)  # stalled: loses this turn only
                return
        if self.hooks:
            self._hook("on_step", task)
        if isinstance(task, Process) and task.state == TaskState.EP_REALM:
            self._step_ep_realm(task)
            return
        if task.state == TaskState.BLOCKED:
            if not self._retry_blocked_recv(task):
                return  # still blocked; re-woken on next enqueue
        self._advance(task)

    # -- generator driving ---------------------------------------------------------------

    #: Maximum syscalls a task executes per scheduling step before it is
    #: preempted back to the run queue.  Bounds the run loop against
    #: message-passing livelocks (a task sending to itself forever) so
    #: ``run(max_steps=...)`` can actually trip.
    INLINE_SYSCALL_BUDGET = 512

    def _advance(self, task: Task) -> None:
        """Resume *task*'s generator until it blocks, exits, or exhausts
        its inline budget (then it re-queues, preempted)."""
        if self.spans is not None:
            self.spans.begin("activate", task.name, self.clock.now)
            try:
                self._advance_inner(task)
            finally:
                self.spans.end("activate", task.name, self.clock.now)
            return
        self._advance_inner(task)

    def _advance_inner(self, task: Task) -> None:
        budget = self.INLINE_SYSCALL_BUDGET
        while True:
            budget -= 1
            if budget < 0:
                self.scheduler.enqueue(
                    task.base.key if isinstance(task, EventProcess) else task.key
                )
                return
            try:
                if task.pending_exc is not None:
                    exc = task.pending_exc
                    task.pending_exc = None
                    request = task.gen.throw(exc)
                else:
                    value, task.pending = task.pending, None
                    request = task.gen.send(value)
            except StopIteration:
                self._task_finished(task)
                return
            except Exception as exc:  # program crashed
                self.debug_log(task.name, f"crashed: {exc!r}")
                if self.trace:
                    raise
                self._task_finished(task, crashed=True)
                return
            if self.faults is not None and self.faults.on_syscall(
                task.key, task.name, self._steps
            ):
                # Injected crash: the program dies mid-syscall, exactly as
                # if its body had raised.
                self.debug_log(task.name, "crashed: fault injection")
                self._task_finished(task, crashed=True)
                return
            self.clock.charge(OTHER, self.clock.cost.syscall_base)
            again = self._dispatch(task, request)
            if not again:
                return

    def _dispatch(self, task: Task, request: sc.Syscall) -> bool:
        """Execute one syscall.  Returns True to keep advancing the same
        task inline (cheap syscalls), False when the task blocked, exited,
        or should round-robin."""
        try:
            if isinstance(request, sc.Send):
                task.pending = self._sys_send(task, request)
                return True
            if isinstance(request, sc.Recv):
                return self._sys_recv(task, request)
            if isinstance(request, sc.NewHandle):
                task.pending = self._sys_new_handle(task)
                return True
            if isinstance(request, sc.NewPort):
                task.pending = self._sys_new_port(task, request.label)
                return True
            if isinstance(request, sc.SetPortLabel):
                task.pending = self._sys_set_port_label(task, request)
                return True
            if isinstance(request, sc.DissociatePort):
                if request.port not in task.owned_ports:
                    raise NotOwner(f"dissociate: port {request.port:#x} not owned")
                if self.hooks:
                    self._hook("on_port_touch", task, request.port)
                self._dissociate_port(request.port)
                task.pending = True
                return True
            if isinstance(request, sc.ChangeLabel):
                task.pending = self._sys_change_label(task, request)
                return True
            if isinstance(request, sc.GetLabels):
                task.pending = (task.send_label.to_label(), task.receive_label.to_label())
                return True
            if isinstance(request, sc.GetEnv):
                env = task.env if isinstance(task, Process) else task.base.env  # type: ignore[attr-defined]
                task.pending = dict(env)
                return True
            if isinstance(request, sc.Spawn):
                child = self.spawn(
                    request.body,
                    request.name,
                    component=request.component or task.component,
                    env=request.env,
                    parent=task,
                    inherit_labels=request.inherit_labels,
                    notify_exit=request.notify_exit,
                )
                task.pending = child.pid
                return True
            if isinstance(request, sc.Compute):
                self.clock.charge(request.category or task.component, request.cycles)
                task.pending = None
                return True
            if isinstance(request, sc.Deadline):
                if request.cycles <= 0:
                    task.pending = None
                    return True
                task.state = TaskState.BLOCKED
                task.blocked_on = request
                self._arm_timer(task, request, self.clock.now + request.cycles)
                return False
            if isinstance(request, sc.Exit):
                self._task_finished(task, explicit_exit=True)
                return False
            if isinstance(request, sc.EpCheckpoint):
                return self._sys_ep_checkpoint(task, request)
            if isinstance(request, sc.EpYield):
                return self._sys_ep_yield(task)
            if isinstance(request, sc.EpClean):
                task.pending = self._sys_ep_clean(task, request)
                return True
            if isinstance(request, sc.EpExit):
                self._sys_ep_exit(task)
                return False
        except (InvalidArgument, NotOwner, ResourceExhausted) as err:
            task.pending_exc = err
            return True
        raise SimulationError(f"{task.name} yielded a non-syscall: {request!r}")

    def _task_finished(
        self, task: Task, crashed: bool = False, explicit_exit: bool = False
    ) -> None:
        if isinstance(task, EventProcess):
            if explicit_exit:
                # Process-wide exit from inside an EP kills the whole base
                # process (Section 6.1).
                self._terminate_process(task.base)
            elif crashed:
                # A crashing event body takes the whole process down, like
                # a fault in any thread of a real process.
                self._terminate_process(task.base, crashed=True)
            else:
                # Returning from the event body behaves like ep_exit.
                self._destroy_ep(task)
                self._schedule_realm_if_work(task.base)
            return
        self._terminate_process(task, crashed=crashed)  # type: ignore[arg-type]

    # -- send ------------------------------------------------------------------------------

    def _drop(self, reason: str, sender: str, where: str, seq: Optional[int] = None) -> None:
        """Record a silent message drop: the out-of-band log, the metrics
        counter, and the end of the message's span (if it had one)."""
        self.drop_log.record(reason, sender, where)
        if self._obs:
            self._m_drops[reason].inc()
        if self.spans is not None:
            if seq is not None:
                self.spans.async_end(
                    "msg", seq, self.clock.now, delivered=False, reason=reason
                )
            else:
                self.spans.instant("drop", sender, self.clock.now, reason=reason)

    def _sanitize_due(self) -> bool:
        """True when this sanitizer opportunity falls on the sample.

        Only consulted when a sanitizer exists; with ``sanitize_sample=1``
        every opportunity is due (the pre-sampling behavior).
        """
        if self._sanitize_period == 1:
            return True
        self._sanitize_tick += 1
        if self._sanitize_tick >= self._sanitize_period:
            self._sanitize_tick = 0
            return True
        return False

    def _sys_send(self, task: Task, request: sc.Send) -> bool:
        cost = self.clock.cost
        self.clock.charge(KERNEL_IPC, cost.send_base)
        if self._obs:
            self._m_sends.inc()
        if self.hooks:
            self._hook("on_send", task, request)
        stats = OpStats()
        ps = task.send_label
        cs = self._user_label(request.cs, _BOTTOM)
        ds = self._user_label(request.ds, _TOP)
        v = self._user_label(request.v, _TOP)
        dr = self._user_label(request.dr, _BOTTOM)

        # ES = PS ⊔ CS.  Contamination needs no privilege (Section 5.2).
        # The requirement (2)/(3) scans below always run, so "paper" mode
        # always models their len(ds)+len(dr) entries; only the ⊔'s own
        # cost is skipped on a cache hit.
        modeled = 0
        es = None
        cache = self.labelop_cache
        table = self.flow_table
        if table is not None and table.valid and cache is not None:
            # Verified-flow send stub: asbcheck proved ES = PS ⊔ CS for
            # these exact operand values, so the join is one flat probe.
            # The requirement (2)/(3) scans below still run live — they
            # guard the decontamination privilege, not the proven join.
            ps = task.send_label = self._intern(ps)
            es = table.plan_send(ps, cs)
            if es is not None:
                self.clock.charge(KERNEL_IPC, self.clock.cost.elide_stub_hit)
                if self._obs:
                    self._m_elide_send_hits.inc()
                if self.label_cost_mode == "paper":
                    modeled = len(ds) + len(dr)
        elided = es is not None
        if not elided:
            if cache is not None:
                ps = task.send_label = self._intern(ps)
                es, hit = cache.raise_receive(ps, cs, stats)
                self._note_cache(hit)
                if self.label_cost_mode == "paper":
                    modeled = len(ds) + len(dr)
                    if not hit:
                        # Bill the operation that ran: the ⋆-factored fast
                        # path computes on the stripped cores, and the model
                        # charges for those scans, not the full labels.
                        modeled += labelops.paper_cost_raise_receive(
                            *cache.last_executed
                        )
            else:
                if self.label_cost_mode == "paper":
                    modeled = (
                        labelops.paper_cost_raise_receive(ps, cs) + len(ds) + len(dr)
                    )
                es = labelops.raise_receive(ps, cs, stats)
        if self.sanitizer is not None and self._sanitize_due():
            seen = len(self.sanitizer.violations)
            try:
                self.sanitizer.check_effective_send(task.name, request.port, ps, cs, es)
            finally:
                if elided and len(self.sanitizer.violations) > seen:
                    table.quarantine(  # type: ignore[union-attr]
                        f"elided send diverged on {request.port:#x}"
                    )

        ok = True
        # Requirement (2): DS(h) < 3 requires PS(h) = ⋆.
        if ds.default < L3 and ps.max_level != STAR:
            ok = False
        if ok:
            for handle, level in ds.iter_entries():
                stats.entries_scanned += 1
                if level < L3 and ps(handle) != STAR:
                    ok = False
                    break
        # Requirement (3): DR(h) > ⋆ requires PS(h) = ⋆.
        if ok and dr.default > STAR and ps.max_level != STAR:
            ok = False
        if ok:
            for handle, level in dr.iter_entries():
                stats.entries_scanned += 1
                if level > STAR and ps(handle) != STAR:
                    ok = False
                    break
        self._charge_label_work(stats, modeled)
        if not ok:
            self._drop(DROP_DECONT_PRIVILEGE, task.name, f"{request.port:#x}")
            return True  # unreliable send: the sender cannot observe the drop

        # Transferred receive rights leave the sender immediately; they
        # land on the receiver at delivery, or die with a dropped message.
        transfer = tuple(request.transfer or ())
        for handle in transfer:
            if handle not in task.owned_ports:
                raise NotOwner(f"transfer of unowned port {handle:#x}")
        if transfer and self.flow_table is not None and self.flow_table.valid:
            # Port passage: a covered port changing hands is a topology
            # change the proofs assumed away — quarantine them.
            for handle in transfer:
                if self.flow_table.covers_port(handle):
                    self._proofs_invalidate(f"port passage {handle:#x}")
                    break
        for handle in transfer:
            task.owned_ports.discard(handle)
            task.ready_ports.discard(handle)
            entry = self.ports.get(handle)
            if entry is not None:
                entry.owner = "<in-transit>"

        return self._enqueue(
            port=request.port,
            payload=request.payload,
            effective_send=es,
            ds=ds,
            v=v,
            dr=dr,
            sender_name=task.name,
            transfer=transfer,
        )

    def _enqueue(
        self,
        port: Handle,
        payload: Any,
        effective_send: ChunkedLabel,
        ds: ChunkedLabel,
        v: ChunkedLabel,
        dr: ChunkedLabel,
        sender_name: str,
        transfer: Tuple[Handle, ...] = (),
        fault_exempt: bool = False,
        external: bool = False,
    ) -> bool:
        if self.faults is not None and not fault_exempt:
            action = self.faults.on_send(sender_name, port, self._steps)
            if action is not None:
                what, rounds = action
                if what == "drop":
                    # Injected unreliability: indistinguishable from a
                    # label-check drop to every simulated program.
                    self._drop(DROP_FAULT, sender_name, f"{port:#x}")
                    self._kill_transferred(transfer)
                    return True
                self._defer_enqueue(
                    rounds,
                    dict(
                        port=port,
                        payload=payload,
                        effective_send=effective_send,
                        ds=ds,
                        v=v,
                        dr=dr,
                        sender_name=sender_name,
                        transfer=transfer,
                        external=external,
                    ),
                )
                return True
        entry = self.ports.get(port)
        if entry is None or not entry.alive:
            if entry is None and self.remote_routes:
                route = self.remote_routes.get(port)
                if route is not None and self.xshard_out is not None:
                    if transfer:
                        # Receive rights cannot cross a shard boundary —
                        # wire/v1 has no port-migration protocol — so the
                        # message drops and the in-transit rights die,
                        # exactly like a send to a dead port.
                        self._drop(DROP_DEAD_PORT, sender_name, f"{port:#x}")
                        self._kill_transferred(transfer)
                        return True
                    # Send-time checks (requirements 2 and 3) already
                    # passed above; ship (message, labels, effects) to the
                    # owning shard, where delivery-time checks and effects
                    # run against its own interned labels.
                    self.xshard_out(
                        route,
                        dict(
                            port=port,
                            payload=payload,
                            effective_send=effective_send,
                            ds=ds,
                            v=v,
                            dr=dr,
                            sender_name=sender_name,
                        ),
                    )
                    if self._obs:
                        self._m_xshard_out.inc()
                    return True
            self._drop(DROP_DEAD_PORT, sender_name, f"{port:#x}")
            self._kill_transferred(transfer)
            return True
        self._seq += 1
        qmsg = QueuedMessage(
            seq=self._seq,
            port=port,
            payload=payload,
            effective_send=effective_send,
            decontaminate_send=ds,
            verify=v,
            decontaminate_receive=dr,
            sender_name=sender_name,
            payload_bytes=_payload_bytes(payload),
            transfer=transfer,
            external=external,
        )
        if self.faults is not None:
            squeeze = self.faults.queue_limit(sender_name, port, self._steps)
            if squeeze is not None and len(entry.queue) >= squeeze[0]:
                # Injected queue pressure: behaves exactly like hitting the
                # real queue limit, but with the squeezed bound.
                self.faults.note_squeeze_drop(squeeze[1], sender_name, port)
                self._drop(DROP_QUEUE_LIMIT, sender_name, f"{port:#x}")
                self._kill_transferred(transfer)
                return True
        if not entry.enqueue(qmsg):
            self._drop(DROP_QUEUE_LIMIT, sender_name, f"{port:#x}")
            self._kill_transferred(transfer)
            return True
        if self._obs:
            self._m_enqueued.inc()
        if self.spans is not None:
            self.spans.async_begin(
                "msg",
                qmsg.seq,
                self.clock.now,
                sender=sender_name,
                port=f"{port:#x}",
            )
        owner = self.tasks.get(entry.owner)
        if owner is not None:
            owner.ready_ports.add(port)
        if isinstance(owner, EventProcess):
            owner.base.ready_realm_ports.add(port)
        elif isinstance(owner, Process) and owner.state == TaskState.EP_REALM:
            owner.ready_realm_ports.add(port)
        self._wake_owner(entry.owner)
        return True

    def _kill_transferred(self, transfer: Tuple[Handle, ...]) -> None:
        """In-transit receive rights on a dropped message are destroyed —
        returning them to the sender would reveal the drop."""
        for handle in transfer:
            entry = self.ports.get(handle)
            if entry is not None:
                entry.dissociate()
                del self.ports[handle]
                vnode = self.vnodes.get(handle)
                if vnode is not None:
                    vnode.dissociated = True
                    self.vnodes.decref(handle)

    def _wake_owner(self, owner_key: str) -> None:
        task = self.tasks.get(owner_key)
        if task is None:
            return
        if isinstance(task, EventProcess):
            base = task.base
            # The base process is the schedulable identity for its realm.
            if base.state == TaskState.EP_REALM:
                self.scheduler.enqueue(base.key)
            return
        if task.state in (TaskState.BLOCKED, TaskState.RUNNABLE):
            self.scheduler.enqueue(task.key)
        elif task.state == TaskState.EP_REALM:
            self.scheduler.enqueue(task.key)

    # -- delivery (Figure 4 requirements 1 & 4, then the effects) ---------------------------

    def _try_deliver(self, task: Task, entry: Port, qmsg: QueuedMessage) -> bool:
        """Run the delivery-time checks against *task*; apply effects and
        return True, or record the drop and return False."""
        hit = self._plan_elided(task, entry, qmsg)
        if self.sanitizer is None or not (
            self._sanitize_due() or (hit is not None and hit.first_use)
        ):
            delivered = self._deliver(task, entry, qmsg, hit)
        else:
            # Sampled differential replay — and *forced* on the first use
            # of every distinct verified-flow stub, so a corrupted effect
            # delta is flagged before it can repeat.  A violation on an
            # elided delivery quarantines the whole table: fail closed to
            # the full Figure 4 path for the rest of the run.
            snapshot = self.sanitizer.before_deliver(task, entry, qmsg)
            delivered = self._deliver(task, entry, qmsg, hit)
            seen = len(self.sanitizer.violations)
            try:
                self.sanitizer.after_deliver(task, entry, qmsg, delivered, snapshot)
            finally:
                if hit is not None and len(self.sanitizer.violations) > seen:
                    self.flow_table.quarantine(  # type: ignore[union-attr]
                        f"elided delivery diverged on {hit.key[0]:#x}"
                    )
        if self.hooks:
            self._hook("on_deliver", task, entry, qmsg, delivered)
        return delivered

    def _plan_elided(
        self, task: Task, entry: Port, qmsg: QueuedMessage
    ) -> Optional["DeliverHit"]:
        """Probe the verified-flow table for this delivery (None = miss).

        Transfer-bearing messages never elide (receive-right passage is a
        topology change the proofs cannot speak to), and neither does
        cross-shard ingress (``qmsg.external``): proofs are per-shard, and
        a peer's labels must take the full checked path.
        """
        table = self.flow_table
        if (
            table is None
            or not table.valid
            or qmsg.transfer
            or qmsg.external
        ):
            return None
        intern = self.intern_table.intern  # type: ignore[union-attr]
        es = intern(qmsg.effective_send)
        ds = intern(qmsg.decontaminate_send)
        v = intern(qmsg.verify)
        dr = intern(qmsg.decontaminate_receive)
        pl = entry.label = intern(entry.label)
        qr = task.receive_label = intern(task.receive_label)
        qs = task.send_label = intern(task.send_label)
        hit = table.plan_deliver(entry.handle, es, pl, qr, v, dr, qs, ds)
        if hit is not None and self._obs:
            self._m_elide_deliver_hits.inc()
            if table.batch_drains != self._elide_drains_seen:
                self._m_elide_batch_drains.inc(
                    table.batch_drains - self._elide_drains_seen
                )
                self._elide_drains_seen = table.batch_drains
            if table.batched_messages != self._elide_batched_seen:
                self._m_elide_batched.inc(
                    table.batched_messages - self._elide_batched_seen
                )
                self._elide_batched_seen = table.batched_messages
        return hit

    def _deliver(
        self,
        task: Task,
        entry: Port,
        qmsg: QueuedMessage,
        hit: Optional["DeliverHit"] = None,
    ) -> bool:
        if hit is not None:
            return self._deliver_elided(task, entry, qmsg, hit)
        stats = OpStats()
        self.clock.charge(KERNEL_IPC, self.clock.cost.recv_base)
        paper = self.label_cost_mode == "paper"
        cache = self.labelop_cache
        modeled = 0
        if cache is not None:
            # Interned fast path: the message's labels were interned at
            # send/inject time, so these are O(1) attribute tests except
            # for the occasional not-yet-canonical task/port label, which
            # is stored back so it interns once per distinct value.
            intern = self.intern_table.intern  # type: ignore[union-attr]
            es = intern(qmsg.effective_send)
            ds = intern(qmsg.decontaminate_send)
            v = intern(qmsg.verify)
            dr = intern(qmsg.decontaminate_receive)
            pl = entry.label = intern(entry.label)
            qr = task.receive_label = intern(task.receive_label)
            # Requirement (4): DR ⊑ pR (uncached: not a Figure 4 hot op,
            # and almost always the trivial ⊥ ⊑ pR fast path).
            if not dr.leq(pl, stats):
                if paper:
                    modeled = labelops.paper_cost_check_send(es, qr, dr, v, pl)
                self._charge_label_work(stats, modeled)
                self._drop(DROP_PORT_LABEL, qmsg.sender_name, task.name, seq=qmsg.seq)
                self._kill_transferred(qmsg.transfer)
                return False
            # Requirement (1): ES ⊑ (QR ⊔ DR) ⊓ V ⊓ pR.
            ok, hit = cache.check_send(es, qr, dr, v, pl, stats)
            self._note_cache(hit)
            if paper and not hit:
                # Billed at the operands the check actually ran on (the
                # ⋆-stripped cores wherever a factoring applied).
                modeled = labelops.paper_cost_check_send(*cache.last_executed)
            if not ok:
                self._charge_label_work(stats, modeled)
                self._drop(DROP_LABEL_CHECK, qmsg.sender_name, task.name, seq=qmsg.seq)
                self._kill_transferred(qmsg.transfer)
                return False
            # Effects (computed from the pre-effect labels, as below).
            qs = task.send_label = intern(task.send_label)
            new_qs, hit = cache.apply_send_effects(qs, es, ds, stats)
            self._note_cache(hit)
            if paper and not hit:
                modeled += labelops.paper_cost_apply_effects(*cache.last_executed)
            new_qr, hit = cache.raise_receive(qr, dr, stats)
            self._note_cache(hit)
            if paper and not hit:
                modeled += labelops.paper_cost_raise_receive(*cache.last_executed)
            task.send_label = new_qs
            task.receive_label = new_qr
        else:
            # Bill the delivery's label work as the modelled 2005
            # implementation would pay it, using the labels as they stand
            # before the effects.
            if paper:
                modeled = labelops.paper_cost_check_send(
                    qmsg.effective_send,
                    task.receive_label,
                    qmsg.decontaminate_receive,
                    qmsg.verify,
                    entry.label,
                )
            # Requirement (4): DR ⊑ pR.
            if not qmsg.decontaminate_receive.leq(entry.label, stats):
                self._charge_label_work(stats, modeled)
                self._drop(DROP_PORT_LABEL, qmsg.sender_name, task.name, seq=qmsg.seq)
                self._kill_transferred(qmsg.transfer)
                return False
            # Requirement (1): ES ⊑ (QR ⊔ DR) ⊓ V ⊓ pR.
            if not labelops.check_send(
                qmsg.effective_send,
                task.receive_label,
                qmsg.decontaminate_receive,
                qmsg.verify,
                entry.label,
                stats,
            ):
                self._charge_label_work(stats, modeled)
                self._drop(DROP_LABEL_CHECK, qmsg.sender_name, task.name, seq=qmsg.seq)
                self._kill_transferred(qmsg.transfer)
                return False
            if paper:
                modeled += labelops.paper_cost_apply_effects(
                    task.send_label, qmsg.effective_send, qmsg.decontaminate_send
                )
                modeled += labelops.paper_cost_raise_receive(
                    task.receive_label, qmsg.decontaminate_receive
                )
            # Effects.
            task.send_label = labelops.apply_send_effects(
                task.send_label, qmsg.effective_send, qmsg.decontaminate_send, stats
            )
            task.receive_label = labelops.raise_receive(
                task.receive_label, qmsg.decontaminate_receive, stats
            )
        # Receive rights travelling with the message land here.
        for handle in qmsg.transfer:
            port_entry = self.ports.get(handle)
            if port_entry is not None and port_entry.alive:
                port_entry.owner = task.key
                task.owned_ports.add(handle)
                if port_entry.queue:
                    task.ready_ports.add(handle)
                    if isinstance(task, EventProcess):
                        task.base.ready_realm_ports.add(handle)
                vnode = self.vnodes.get(handle)
                if vnode is not None:
                    vnode.owner = task.key
        self._charge_label_work(stats, modeled)
        if self._obs:
            self._m_delivered.inc()
        if self.spans is not None:
            self.spans.async_end(
                "msg", qmsg.seq, self.clock.now, delivered=True, receiver=task.name
            )
        return True

    def _deliver_elided(
        self, task: Task, entry: Port, qmsg: QueuedMessage, hit: "DeliverHit"
    ) -> bool:
        """Verified-flow fastpath: asbcheck proved this exact delivery.

        The stub key matched the live operand values, so requirement (4),
        requirement (1) and both label effects are already decided — the
        kernel applies the precomputed post-labels and bills the fastpath
        delivery base plus one flat stub probe, seL4-fastpath style
        (DESIGN.md §15).  Transfer-bearing messages never reach here
        (:meth:`_plan_elided` excludes them), so there is no rights
        landing to perform.
        """
        cost = self.clock.cost
        self.clock.charge(
            KERNEL_IPC, cost.elide_deliver_base + cost.elide_stub_hit
        )
        task.send_label = hit.new_qs
        task.receive_label = hit.new_qr
        if self._obs:
            self._m_delivered.inc()
        if self.spans is not None:
            self.spans.async_end(
                "msg", qmsg.seq, self.clock.now, delivered=True, receiver=task.name
            )
        return True

    def _charge_label_work(self, stats: OpStats, modeled_entries: int = 0) -> None:
        """Charge KERNEL_IPC for label work.

        In "paper" mode, entry scans are billed from *modeled_entries* (the
        2005 algorithm's linear scans); the fused implementation's own
        (much smaller) scan counts are billed only in "fused" mode.
        Structural costs — op dispatch, label/chunk allocation, chunk
        sharing — are billed from the executed operations in both modes.
        """
        cost = self.clock.cost
        cycles = (
            cost.label_op_base * stats.operations
            + cost.chunk_skip * stats.chunks_skipped
            + cost.label_alloc * stats.labels_allocated
            + cost.chunk_alloc * stats.chunks_allocated
            + cost.chunk_share * stats.chunks_shared
        )
        if self.label_cost_mode == "paper":
            cycles += int(cost.label_entry_scan * modeled_entries)
        else:
            cycles += cost.label_entry * stats.entries_scanned
        self.clock.charge(KERNEL_IPC, cycles)
        self.label_stats.merge(stats)
        if self._obs:
            self._m_label_fast.inc(stats.fast_path)
            self._m_label_full.inc(stats.full_merges)
            self._m_label_entries.inc(stats.entries_scanned)

    def _intern(self, label: ChunkedLabel) -> ChunkedLabel:
        """Canonicalise *label* when the fast path is on (else identity)."""
        if self.intern_table is None:
            return label
        return self.intern_table.intern(label)

    def _note_cache(self, hit: bool) -> None:
        """Bill and count one LabelOpCache probe.

        A hit replaces a full Figure 4 operation with a flat LRU probe
        cost; a miss ran the real operation, whose work was already
        recorded in the caller's OpStats and is billed by
        ``_charge_label_work`` exactly as on the uncached path.
        """
        if hit:
            self.clock.charge(KERNEL_IPC, self.clock.cost.labelop_cache_hit)
        if self._obs:
            if hit:
                self._m_cache_hits.inc()
            else:
                self._m_cache_misses.inc()
            evictions = self.labelop_cache.evictions  # type: ignore[union-attr]
            if evictions != self._cache_evictions_seen:
                self._m_cache_evictions.inc(evictions - self._cache_evictions_seen)
                self._cache_evictions_seen = evictions

    def _proofs_invalidate(self, reason: str) -> None:
        """A system-level event made the loaded proofs' worldview stale.

        Bumps the verified-flow epoch, which quarantines the whole table
        for the rest of the run (DESIGN.md §15): every later delivery
        falls back to the PR 5 interned path.  Idempotent once invalid.
        """
        table = self.flow_table
        if table is None or not table.valid:
            return
        table.invalidate(reason)
        if self._obs:
            self._m_elide_invalidations.inc()
        self.debug_log("elide", f"proofs invalidated: {reason}")

    # -- recv --------------------------------------------------------------------------------

    def _sys_recv(self, task: Task, request: sc.Recv) -> bool:
        if request.port is not None and request.port not in task.owned_ports:
            task.pending_exc = NotOwner(f"recv on port {request.port:#x} not owned")
            return True
        if self.hooks:
            self._hook("on_recv", task, request)
        delivered = self._pick_and_deliver(task, request.port)
        if delivered is not None:
            task.pending = delivered
            return True
        if not request.block:
            task.pending = None
            return True
        task.state = TaskState.BLOCKED
        task.blocked_on = request
        if request.timeout is not None:
            self._arm_timer(task, request, self.clock.now + request.timeout)
        return False

    def _retry_blocked_recv(self, task: Task) -> bool:
        """Try to complete a blocked Recv; True if the task may now run."""
        request = task.blocked_on
        if request is None:
            task.state = TaskState.RUNNABLE
            return True
        if isinstance(request, sc.Deadline):
            return False  # only the timer wakes a sleeper
        if self.hooks:
            self._hook("on_recv", task, request)
        delivered = self._pick_and_deliver(task, request.port)
        if delivered is None:
            return False
        task.pending = delivered
        task.state = TaskState.RUNNABLE
        task.blocked_on = None
        return True

    def _pick_and_deliver(self, task: Task, port: Optional[Handle]) -> Optional[Message]:
        """Deliver the oldest deliverable message on *port* (or any owned
        port).  Messages failing their check are dropped permanently.

        Only ports with queued traffic (the kernel-maintained ready set)
        are examined, so a server owning thousands of idle connection
        ports pays nothing for them here."""
        while True:
            best: Optional[Tuple[int, Port]] = None
            stale: List[Handle] = []
            candidates = [port] if port is not None else list(task.ready_ports)
            for handle in candidates:
                entry = self.ports.get(handle)
                if entry is None or not entry.alive or not entry.queue:
                    stale.append(handle)
                    continue
                seq = entry.queue[0].seq
                if best is None or seq < best[0]:
                    best = (seq, entry)
            for handle in stale:
                task.ready_ports.discard(handle)
            if best is None:
                return None
            entry = best[1]
            qmsg = entry.queue.popleft()
            if not entry.queue:
                task.ready_ports.discard(entry.handle)
            if self._try_deliver(task, entry, qmsg):
                return qmsg.to_message()
            # dropped; look again

    # -- handles, ports, labels ---------------------------------------------------------------

    def _sys_new_handle(self, task: Task) -> Handle:
        self.clock.charge(KERNEL_IPC, self.clock.cost.handle_alloc)
        handle = self.allocator.fresh()
        self.vnodes.create(handle)
        stats = OpStats()
        task.send_label = self._intern(
            labelops.sparse_update(task.send_label, {handle: STAR}, stats)
        )
        self._charge_label_work(stats)
        if self.hooks:
            self._hook("on_new_handle", task, handle)
        return handle

    def _sys_new_port(self, task: Task, label: Optional[Label]) -> Handle:
        self.clock.charge(KERNEL_IPC, self.clock.cost.port_alloc)
        handle = self.allocator.fresh()
        self.vnodes.create(handle, is_port=True, owner=task.key)
        base = ChunkedLabel.from_label(label if label is not None else DEFAULT_PORT_LABEL)
        stats = OpStats()
        # Figure 4: pR ← L, then pR(p) ← 0.
        port_label = self._intern(labelops.sparse_update(base, {handle: L0}, stats))
        self.ports[handle] = Port(handle=handle, label=port_label, owner=task.key)
        task.owned_ports.add(handle)
        # PS(p) ← ⋆.
        task.send_label = self._intern(
            labelops.sparse_update(task.send_label, {handle: STAR}, stats)
        )
        self._charge_label_work(stats)
        if self.hooks:
            self._hook("on_new_port", task, handle)
        return handle

    def _sys_set_port_label(self, task: Task, request: sc.SetPortLabel) -> bool:
        entry = self.ports.get(request.port)
        if entry is None or request.port not in task.owned_ports:
            raise NotOwner(f"set_port_label: port {request.port:#x} not owned")
        # Unlike new_port, the input is used verbatim (Section 5.5).
        new_label = self._intern(ChunkedLabel.from_label(request.label))
        if (
            self.flow_table is not None
            and self.flow_table.covers_port(request.port)
            and not self.flow_table.port_label_assumed(request.port, new_label)
        ):
            # Rewriting a covered port's label *outside the values the
            # proofs assumed* invalidates them; rewriting it to an
            # assumed value (boot-time bring-up replaying the recorded
            # world) is exactly what the proofs describe and keeps them.
            self._proofs_invalidate(f"set_port_label {request.port:#x}")
        entry.label = new_label
        if self.hooks:
            self._hook("on_port_touch", task, request.port)
        return True

    def _sys_change_label(self, task: Task, request: sc.ChangeLabel) -> bool:
        table = self.flow_table
        watch = (
            table is not None and table.valid and table.covers_task(task.name)
        )
        if watch:
            # Proofs only assumed the label values the exploration saw;
            # a covered task writing its labels *outside* that set is an
            # invalidating event (writes inside it — e.g. reasserting the
            # fixed point — are exactly what the proofs describe).
            old_send_assumed = table.core_assumed(task.name, task.send_label)
            old_recv_assumed = table.core_assumed(task.name, task.receive_label)
        try:
            return self._change_label_checked(task, request)
        finally:
            if watch and table.valid:
                if (
                    old_send_assumed
                    and not table.core_assumed(task.name, task.send_label)
                ) or (
                    old_recv_assumed
                    and not table.core_assumed(task.name, task.receive_label)
                ):
                    self._proofs_invalidate(f"change_label {task.name}")

    def _change_label_checked(self, task: Task, request: sc.ChangeLabel) -> bool:
        stats = OpStats()
        if request.drop_send:
            updates = {}
            default = task.send_label.default
            for handle in request.drop_send:
                current = task.send_label(handle)
                if current > default:
                    self._charge_label_work(stats)
                    raise InvalidArgument(
                        f"drop_send of {handle:#x} would lower the send label "
                        "(declassification); only * and sub-default credentials "
                        "can be dropped"
                    )
                updates[handle] = default
            task.send_label = labelops.sparse_update(task.send_label, updates, stats)
        if request.raise_receive:
            updates = {}
            for handle, level in request.raise_receive.items():
                current = task.receive_label(handle)
                if level > current and task.send_label(handle) != STAR:
                    self._charge_label_work(stats)
                    raise InvalidArgument(
                        f"raising receive level of {handle:#x} requires "
                        "declassification privilege"
                    )
                if level != current:
                    updates[handle] = level
            if updates:
                task.receive_label = labelops.sparse_update(
                    task.receive_label, updates, stats
                )
        if request.send is not None:
            new = ChunkedLabel.from_label(request.send)
            # Raising only (self-contamination, including dropping own ⋆).
            if not task.send_label.leq(new, stats):
                self._charge_label_work(stats)
                raise InvalidArgument(
                    "change_label: send label may only be raised "
                    "(self-contamination); lowering requires receiving a "
                    "decontaminating message from a * holder"
                )
            task.send_label = new
        if request.receive is not None:
            new = ChunkedLabel.from_label(request.receive)
            old = task.receive_label
            # Raising any component requires ⋆ for that handle.
            handles = {h for h, _ in new.iter_entries()}
            handles.update(h for h, _ in old.iter_entries())
            for handle in handles:
                stats.entries_scanned += 1
                if new(handle) > old(handle) and task.send_label(handle) != STAR:
                    self._charge_label_work(stats)
                    raise InvalidArgument(
                        f"change_label: raising receive level of {handle:#x} "
                        "requires declassification privilege"
                    )
            if new.default > old.default and task.send_label.max_level != STAR:
                raise InvalidArgument(
                    "change_label: raising the receive default requires "
                    "universal declassification privilege"
                )
            task.receive_label = new
        self._charge_label_work(stats)
        if self.intern_table is not None:
            task.send_label = self.intern_table.intern(task.send_label)
            task.receive_label = self.intern_table.intern(task.receive_label)
        if self.hooks:
            self._hook("on_change_label", task, request)
        return True

    def _user_label(self, label: Optional[Label], default: ChunkedLabel) -> ChunkedLabel:
        if label is None:
            return default
        if not isinstance(label, Label):
            raise InvalidArgument(f"not a label: {label!r}")
        return self._intern(ChunkedLabel.from_label(label))

    # -- event processes -----------------------------------------------------------------------

    def _sys_ep_checkpoint(self, task: Task, request: sc.EpCheckpoint) -> bool:
        if not isinstance(task, Process):
            raise SimulationError("ep_checkpoint from inside an event process")
        if task.event_body is not None:
            raise SimulationError("ep_checkpoint called twice")
        if (
            self.flow_table is not None
            and self.flow_table.covers_task(task.name)
            and not self.flow_table.expected_realm(task.name)
        ):
            # A covered task becoming an EP realm the proofs did not
            # observe is a topology change; realms the proofs expected
            # (their fork-marked ports) are the normal EP mechanism and
            # do not bump.
            self._proofs_invalidate(f"ep_checkpoint {task.name}")
        task.event_body = request.event_body
        task.state = TaskState.EP_REALM
        task.gen = None  # the base process never runs again (Section 6.1)
        self._schedule_realm_if_work(task)
        return False

    def _sys_ep_yield(self, task: Task) -> bool:
        if not isinstance(task, EventProcess):
            raise SimulationError("ep_yield outside an event process")
        base = task.base
        task.state = TaskState.DORMANT
        task.blocked_on = sc.Recv()
        base.active_ep = None
        self._schedule_realm_if_work(base)
        return False

    def _sys_ep_clean(self, task: Task, request: sc.EpClean) -> int:
        if not isinstance(task, EventProcess):
            raise SimulationError("ep_clean outside an event process")
        if request.keep is not None:
            return task.view.clean_all_except(tuple(request.keep))
        if request.region is not None:
            return task.view.clean_region(request.region)
        if request.start is None or request.length is None:
            raise InvalidArgument("ep_clean needs a region name, a range, or keep=")
        return task.view.clean(request.start, request.length)

    def _sys_ep_exit(self, task: Task) -> None:
        if not isinstance(task, EventProcess):
            raise SimulationError("ep_exit outside an event process")
        base = task.base
        self._destroy_ep(task)
        self._schedule_realm_if_work(base)

    def _destroy_ep(self, ep: EventProcess) -> None:
        ep.state = TaskState.EXITED
        ep.exited = True
        for handle in list(ep.owned_ports):
            self._dissociate_port(handle)
        ep.view.release_all()
        ep.base.event_processes.pop(ep.key, None)
        if ep.base.active_ep == ep.key:
            ep.base.active_ep = None
        self.tasks.pop(ep.key, None)

    def _step_ep_realm(self, process: Process) -> None:
        """One scheduler step for a process in the EP realm."""
        if process.active_ep is not None:
            ep = process.event_processes.get(process.active_ep)
            if ep is None:
                process.active_ep = None
            else:
                if ep.state == TaskState.BLOCKED:
                    if not self._retry_blocked_recv(ep):
                        return  # whole process stays blocked (Section 6.1)
                self._advance(ep)
                self._schedule_realm_if_work(process)
                return
        # No active EP: find the oldest deliverable message in the realm.
        activated = self._activate_next_ep(process)
        if activated:
            self._schedule_realm_if_work(process)

    def _realm_ports(self, process: Process) -> List[Tuple[int, Port, Optional[EventProcess]]]:
        """(seq, port, owner-EP-or-None) for every non-empty realm port,
        oldest head first.  Maintained via ``ready_realm_ports`` so the
        cost is the number of ports with traffic, not the number of
        dormant event processes."""
        heads: List[Tuple[int, Port, Optional[EventProcess]]] = []
        stale: List[Handle] = []
        for handle in process.ready_realm_ports:
            entry = self.ports.get(handle)
            if entry is None or not entry.alive or not entry.queue:
                stale.append(handle)
                continue
            owner = self.tasks.get(entry.owner)
            if isinstance(owner, EventProcess):
                if owner.state != TaskState.DORMANT:
                    continue  # active/blocked EP consumes its own queue
                heads.append((entry.queue[0].seq, entry, owner))
            else:
                heads.append((entry.queue[0].seq, entry, None))
        for handle in stale:
            process.ready_realm_ports.discard(handle)
        heads.sort(key=lambda item: item[0])
        return heads

    def _activate_next_ep(self, process: Process) -> bool:
        """Deliver the oldest deliverable realm message, creating or
        resuming an event process.  Returns True if an EP ran."""
        while True:
            heads = self._realm_ports(process)
            if not heads:
                return False
            _, entry, ep = heads[0]
            qmsg = entry.queue.popleft()
            if ep is None:
                if self._deliver_to_new_ep(process, entry, qmsg):
                    return True
                continue  # dropped; try the next head
            if self._try_deliver(ep, entry, qmsg):
                self.clock.charge(OTHER, self.clock.cost.ep_switch)
                if self._obs:
                    self._m_ep_switches.inc()
                self._touch_stack(ep)
                # A cleaned EP dropped its message-queue page; receiving a
                # message brings it back.
                if ep.view.region("msgq") is None:
                    ep.view.alloc(PAGE_SIZE, "msgq")
                ep.state = TaskState.RUNNABLE
                ep.blocked_on = None
                ep.pending = qmsg.to_message()
                process.active_ep = ep.key
                self._advance(ep)
                return True

    def _deliver_to_new_ep(self, process: Process, entry: Port, qmsg: QueuedMessage) -> bool:
        """Create a fresh EP for a message on a base-owned port."""
        process.ep_counter += 1
        view = EpView(
            process.address_space,
            self.accountant,
            on_cow_copy=lambda n: self.clock.charge(OTHER, self.clock.cost.cow_page_copy * n),
            on_page_alloc=lambda n: self.clock.charge(OTHER, self.clock.cost.page_alloc * n),
        )
        ep = EventProcess(process, process.ep_counter, view)
        if not self._try_deliver(ep, entry, qmsg):
            return False  # never existed
        self.clock.charge(OTHER, self.clock.cost.ep_create)
        if self._obs:
            self._m_ep_created.inc()
        self.tasks[ep.key] = ep
        process.event_processes[ep.key] = ep
        process.active_ep = ep.key
        ep.state = TaskState.RUNNABLE
        # One page for the event process's message queue (Section 9.1).
        view.alloc(PAGE_SIZE, "msgq")
        self._touch_stack(ep)
        ep.ctx = Context(self, ep, view, process.env)
        ep.gen = process.event_body(ep.ctx, qmsg.to_message())  # type: ignore[misc]
        if not isinstance(ep.gen, Generator):
            raise SimulationError(
                f"event body of {process.name!r} is not a generator function"
            )
        # Observers see the EP after its first delivery, so its labels
        # already include the activating message's contamination.
        if self.hooks:
            self._hook("on_ep_create", ep, entry, qmsg)
        self._advance(ep)
        return True

    def _touch_stack(self, ep: EventProcess) -> None:
        """Model the stack writes of an activation: the running event
        process dirties its stack and exception-stack pages (they become
        private copies until cleaned — Section 9.1 counts 2 such pages per
        active session)."""
        for region_name in ("stack", "xstack"):
            region = ep.base.address_space.region(region_name)
            if region is not None:
                ep.view.write(region.start, b"\x01")

    def _schedule_realm_if_work(self, process: Process) -> None:
        if process.state != TaskState.EP_REALM:
            return
        if process.active_ep is not None:
            ep = process.event_processes.get(process.active_ep)
            if ep is not None and ep.state == TaskState.RUNNABLE:
                self.scheduler.enqueue(process.key)
                return
            if ep is not None and ep.state == TaskState.BLOCKED:
                # Re-tried when a message arrives (wake_owner).
                return
        if self._realm_ports(process):
            self.scheduler.enqueue(process.key)

    # -- teardown -----------------------------------------------------------------------------

    def _dissociate_port(self, handle: Handle) -> None:
        entry = self.ports.get(handle)
        if entry is None:
            return
        # A covered port dying needs no proof invalidation: handle values
        # never repeat within a boot (the allocator is a cipher over a
        # monotonic counter), so no future delivery can ever probe this
        # port's stubs again — the dead edge simply stops being exercised.
        entry.dissociate()
        vnode = self.vnodes.get(handle)
        if vnode is not None:
            vnode.dissociated = True
            self.vnodes.decref(handle)
        task = self.tasks.get(entry.owner)
        if task is not None:
            task.owned_ports.discard(handle)
        del self.ports[handle]

    def _terminate_process(self, process: Process, crashed: bool = False) -> None:
        for ep in list(process.event_processes.values()):
            self._destroy_ep(ep)
        for handle in list(process.owned_ports):
            self._dissociate_port(handle)
        for name in list(process.address_space.regions):
            process.address_space.free(name)
        process.state = TaskState.EXITED
        process.gen = None
        self.scheduler.remove(process.key)
        self.tasks.pop(process.key, None)
        self.processes.pop(process.key, None)
        if process.notify_exit is not None:
            # The obituary: default labels, ordinary delivery checks.
            # Fault-exempt: the injector models unreliable *user* IPC; the
            # kernel's own exit notification is the mechanism supervision
            # (and chaos recovery itself) is built on.
            self._enqueue(
                port=process.notify_exit,
                payload={
                    "type": "EXITED",
                    "pid": process.pid,
                    "name": process.name,
                    "crashed": crashed,
                },
                effective_send=self._intern(ChunkedLabel.from_label(Label.send_default())),
                ds=_TOP,
                v=_TOP,
                dr=_BOTTOM,
                sender_name="<kernel>",
                fault_exempt=True,
            )

    # -- introspection ----------------------------------------------------------------------

    def debug_log(self, who: str, message: str) -> None:
        if self.trace:
            line = f"[{self.clock.now:>12}] {who}: {message}"
            self.debug_lines.append(line)
            if len(self.debug_lines) > 10_000:
                del self.debug_lines[:5_000]

    def memory_report(self) -> Dict[str, int]:
        """System-wide memory accounting (drives Figure 6).

        Returns bytes by category plus page totals.  Label memory counts
        shared chunks once, mirroring the copy-on-write sharing of the
        kernel representation.
        """
        labels = []
        ep_bytes = 0
        process_bytes = 0
        for task in self.tasks.values():
            labels.append(task.send_label)
            labels.append(task.receive_label)
            if isinstance(task, EventProcess):
                ep_bytes += task.kernel_bytes()
            elif isinstance(task, Process):
                process_bytes += task.kernel_bytes()
        port_bytes = 0
        for port in self.ports.values():
            labels.append(port.label)
            port_bytes += port.memory_bytes()
            for qmsg in port.queue:
                labels.append(qmsg.effective_send)
                labels.append(qmsg.verify)
        label_bytes = shared_memory_bytes(labels)
        user_pages = self.accountant.in_use
        kernel_bytes = (
            process_bytes + ep_bytes + port_bytes + label_bytes + self.vnodes.memory_bytes()
        )
        return {
            "user_pages": user_pages,
            "user_bytes": user_pages * PAGE_SIZE,
            "process_bytes": process_bytes,
            "ep_bytes": ep_bytes,
            "port_bytes": port_bytes,
            "label_bytes": label_bytes,
            "vnode_bytes": self.vnodes.memory_bytes(),
            "kernel_bytes": kernel_bytes,
            "total_bytes": user_pages * PAGE_SIZE + kernel_bytes,
            "total_pages": user_pages + -(-kernel_bytes // PAGE_SIZE),
        }

    @property
    def steps_executed(self) -> int:
        return self._steps
