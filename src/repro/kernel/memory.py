"""Page-granular simulated memory with copy-on-write event-process views.

The memory model exists to reproduce the paper's Section 6.2 and Figure 6
claims *structurally*:

- memory is allocated in 4 KB pages from a machine-wide budget (the paper's
  prototype uses 256 MB);
- a base process owns an :class:`AddressSpace` — a page table plus named
  regions (stack, heap, globals, ...);
- an event process sees the base address space through an
  :class:`EpView`: reads fall through to the base pages, the first write
  to a page copies it into the EP's private page list.  Event processes do
  **not** keep their own page tables; a dormant EP's memory state is just
  the list of modified pages plus the pages themselves;
- ``ep_clean`` reverts a range or named region to the base contents,
  dropping the private copies — how a cached session gets down to a single
  private page.

Programs use the byte-level API (``alloc``/``read``/``write``) or the
pickle-backed object store (``store``/``load``/``delete``), which allocates
real pages and writes real bytes so that COW accounting measures genuine
state, not declared sizes.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.kernel.errors import InvalidArgument, ResourceExhausted

PAGE_SIZE = 4096
#: The paper's prototype "currently only uses 256MB of RAM".
DEFAULT_RAM_BYTES = 256 * 1024 * 1024


def pages_for(nbytes: int) -> int:
    """Number of 4 KB pages needed to hold *nbytes*."""
    return max(1, -(-nbytes // PAGE_SIZE))


@dataclass
class PageAccountant:
    """Machine-wide physical page budget."""

    capacity_pages: int = DEFAULT_RAM_BYTES // PAGE_SIZE
    in_use: int = 0
    peak: int = 0

    def reserve(self, npages: int) -> None:
        if self.in_use + npages > self.capacity_pages:
            raise ResourceExhausted(
                f"out of memory: {self.in_use + npages} pages needed, "
                f"{self.capacity_pages} available"
            )
        self.in_use += npages
        self.peak = max(self.peak, self.in_use)

    def release(self, npages: int) -> None:
        if npages > self.in_use:
            raise AssertionError("page accounting underflow")
        self.in_use -= npages


@dataclass
class Region:
    """A named, page-aligned allocation."""

    name: str
    start: int
    length: int          # requested bytes

    @property
    def npages(self) -> int:
        return pages_for(self.length)

    @property
    def page_range(self) -> range:
        first = self.start // PAGE_SIZE
        return range(first, first + self.npages)


class MemoryView:
    """Common interface of :class:`AddressSpace` and :class:`EpView`."""

    def alloc(self, nbytes: int, region: str) -> int:
        raise NotImplementedError

    def read(self, addr: int, nbytes: int) -> bytes:
        raise NotImplementedError

    def write(self, addr: int, data: bytes) -> None:
        raise NotImplementedError

    def region(self, name: str) -> Optional[Region]:
        raise NotImplementedError

    def free(self, name: str) -> None:
        raise NotImplementedError

    # -- object store convenience -------------------------------------------------

    def store(self, key: str, obj: object) -> int:
        """Serialize *obj* into a region named *key* (replacing any previous
        value); returns the number of bytes written."""
        data = pickle.dumps(obj)
        existing = self.region(key)
        if existing is not None and existing.length >= len(data) + 4:
            start = existing.start
        else:
            if existing is not None:
                self.free(key)
            start = self.alloc(len(data) + 4, key)
        self.write(start, len(data).to_bytes(4, "big") + data)
        return len(data)

    def load(self, key: str) -> object:
        """Read back the object stored under *key*."""
        reg = self.region(key)
        if reg is None:
            raise KeyError(key)
        size = int.from_bytes(self.read(reg.start, 4), "big")
        return pickle.loads(self.read(reg.start + 4, size))

    def has(self, key: str) -> bool:
        return self.region(key) is not None

    def delete(self, key: str) -> None:
        self.free(key)


class AddressSpace(MemoryView):
    """A base process's memory: page table + named regions."""

    def __init__(
        self,
        accountant: PageAccountant,
        on_page_alloc: Optional[Callable[[int], None]] = None,
    ):
        self._accountant = accountant
        self._on_page_alloc = on_page_alloc or (lambda n: None)
        self.pages: Dict[int, bytearray] = {}
        self.regions: Dict[str, Region] = {}
        self._brk = PAGE_SIZE  # leave page 0 unmapped, like a real process

    # -- allocation ---------------------------------------------------------------

    def alloc(self, nbytes: int, region: str) -> int:
        if nbytes <= 0:
            raise InvalidArgument(f"allocation of {nbytes} bytes")
        if region in self.regions:
            raise InvalidArgument(f"region already exists: {region!r}")
        npages = pages_for(nbytes)
        self._accountant.reserve(npages)
        start = self._brk
        self._brk += npages * PAGE_SIZE
        first = start // PAGE_SIZE
        for page_no in range(first, first + npages):
            self.pages[page_no] = bytearray(PAGE_SIZE)
        reg = Region(region, start, nbytes)
        self.regions[region] = reg
        self._on_page_alloc(npages)
        return start

    def free(self, name: str) -> None:
        reg = self.regions.pop(name, None)
        if reg is None:
            raise InvalidArgument(f"no such region: {name!r}")
        for page_no in reg.page_range:
            self.pages.pop(page_no, None)
        self._accountant.release(reg.npages)

    def region(self, name: str) -> Optional[Region]:
        return self.regions.get(name)

    # -- byte access ----------------------------------------------------------------

    def read(self, addr: int, nbytes: int) -> bytes:
        out = bytearray()
        for page_no, offset, run in _spans(addr, nbytes):
            page = self.pages.get(page_no)
            if page is None:
                raise InvalidArgument(f"read from unmapped page {page_no}")
            out += page[offset : offset + run]
        return bytes(out)

    def write(self, addr: int, data: bytes) -> None:
        pos = 0
        for page_no, offset, run in _spans(addr, len(data)):
            page = self.pages.get(page_no)
            if page is None:
                raise InvalidArgument(f"write to unmapped page {page_no}")
            page[offset : offset + run] = data[pos : pos + run]
            pos += run

    # -- accounting ------------------------------------------------------------------

    @property
    def resident_pages(self) -> int:
        return len(self.pages)


class EpView(MemoryView):
    """An event process's copy-on-write view of a base address space.

    Private pages shadow base pages; new allocations are entirely private
    (they exist only in this EP).  The base is frozen — after
    ``ep_checkpoint`` the base process never runs again — so no
    write-through coherence is needed.
    """

    def __init__(
        self,
        base: AddressSpace,
        accountant: PageAccountant,
        on_cow_copy: Optional[Callable[[int], None]] = None,
        on_page_alloc: Optional[Callable[[int], None]] = None,
    ):
        self._base = base
        self._accountant = accountant
        self._on_cow_copy = on_cow_copy or (lambda n: None)
        self._on_page_alloc = on_page_alloc or (lambda n: None)
        self.private: Dict[int, bytearray] = {}
        self.own_regions: Dict[str, Region] = {}
        self._deleted_regions: set = set()
        # Private allocations start above the base's high-water mark; every
        # EP may use the same addresses because each has its own view.
        self._brk = base._brk

    # -- region/alloc ------------------------------------------------------------

    def alloc(self, nbytes: int, region: str) -> int:
        if nbytes <= 0:
            raise InvalidArgument(f"allocation of {nbytes} bytes")
        if self.region(region) is not None:
            raise InvalidArgument(f"region already exists: {region!r}")
        npages = pages_for(nbytes)
        self._accountant.reserve(npages)
        start = self._brk
        self._brk += npages * PAGE_SIZE
        first = start // PAGE_SIZE
        for page_no in range(first, first + npages):
            self.private[page_no] = bytearray(PAGE_SIZE)
        self.own_regions[region] = Region(region, start, nbytes)
        self._deleted_regions.discard(region)
        self._on_page_alloc(npages)
        return start

    def free(self, name: str) -> None:
        reg = self.own_regions.pop(name, None)
        if reg is not None:
            released = 0
            for page_no in reg.page_range:
                if self.private.pop(page_no, None) is not None:
                    released += 1
            self._accountant.release(released)
            return
        base_reg = self._base.region(name)
        if base_reg is None or name in self._deleted_regions:
            raise InvalidArgument(f"no such region: {name!r}")
        # "Freeing" a base region from an EP just hides it from this EP and
        # drops any private copies of its pages.
        self._deleted_regions.add(name)
        self._drop_private(base_reg.page_range)

    def region(self, name: str) -> Optional[Region]:
        if name in self.own_regions:
            return self.own_regions[name]
        if name in self._deleted_regions:
            return None
        return self._base.region(name)

    # -- byte access ----------------------------------------------------------------

    def read(self, addr: int, nbytes: int) -> bytes:
        out = bytearray()
        for page_no, offset, run in _spans(addr, nbytes):
            page = self.private.get(page_no)
            if page is None:
                page = self._base.pages.get(page_no)
            if page is None:
                raise InvalidArgument(f"read from unmapped page {page_no}")
            out += page[offset : offset + run]
        return bytes(out)

    def write(self, addr: int, data: bytes) -> None:
        pos = 0
        for page_no, offset, run in _spans(addr, len(data)):
            page = self.private.get(page_no)
            if page is None:
                base_page = self._base.pages.get(page_no)
                if base_page is None:
                    raise InvalidArgument(f"write to unmapped page {page_no}")
                # Copy-on-write fault: first write to a shared page.
                self._accountant.reserve(1)
                page = bytearray(base_page)
                self.private[page_no] = page
                self._on_cow_copy(1)
            page[offset : offset + run] = data[pos : pos + run]
            pos += run

    # -- ep_clean ----------------------------------------------------------------------

    def clean(self, start: int, length: int) -> int:
        """Revert [start, start+length) to the base contents; returns the
        number of private pages dropped."""
        first = start // PAGE_SIZE
        last = (start + max(length, 1) - 1) // PAGE_SIZE
        return self._drop_private(range(first, last + 1))

    def clean_region(self, name: str) -> int:
        """Revert the named region (base regions revert to base content;
        EP-private regions are freed outright)."""
        if name in self.own_regions:
            reg = self.own_regions[name]
            count = sum(1 for p in reg.page_range if p in self.private)
            self.free(name)
            return count
        reg = self.region(name)
        if reg is None:
            raise InvalidArgument(f"no such region: {name!r}")
        return self._drop_private(reg.page_range)

    def clean_all_except(self, keep_regions: Tuple[str, ...]) -> int:
        """Drop every private page not belonging to one of *keep_regions* —
        the idiom of Section 7.3 (keep session data, drop stack and
        scratch)."""
        keep_pages: set = set()
        for name in keep_regions:
            reg = self.region(name)
            if reg is not None:
                keep_pages.update(reg.page_range)
        dropped = [p for p in self.private if p not in keep_pages]
        for page_no in dropped:
            del self.private[page_no]
        self._accountant.release(len(dropped))
        # Forget EP-private regions that just lost all their pages.
        for name in list(self.own_regions):
            if name not in keep_regions:
                reg = self.own_regions[name]
                if not any(p in self.private for p in reg.page_range):
                    del self.own_regions[name]
        return len(dropped)

    def _drop_private(self, page_range: range) -> int:
        dropped = 0
        for page_no in page_range:
            if self.private.pop(page_no, None) is not None:
                dropped += 1
        self._accountant.release(dropped)
        return dropped

    # -- accounting -----------------------------------------------------------------------

    @property
    def private_page_count(self) -> int:
        """The EP's memory footprint in pages (its modified-page list)."""
        return len(self.private)

    def release_all(self) -> None:
        """Free every private page (ep_exit)."""
        self._accountant.release(len(self.private))
        self.private.clear()
        self.own_regions.clear()


def _spans(addr: int, nbytes: int) -> Iterator[Tuple[int, int, int]]:
    """Split [addr, addr+nbytes) into (page_no, offset, run) spans."""
    if addr < 0 or nbytes < 0:
        raise InvalidArgument(f"bad address range: {addr}+{nbytes}")
    remaining = nbytes
    while remaining > 0:
        page_no = addr // PAGE_SIZE
        offset = addr % PAGE_SIZE
        run = min(PAGE_SIZE - offset, remaining)
        yield page_no, offset, run
        addr += run
        remaining -= run
