"""Kernel-side verified-flow table: proof-guided check elision.

The :class:`VerifiedFlowTable` holds a loaded ``proofs/v1`` document
(:mod:`repro.analysis.proofs`) indexed for O(1) probing on the kernel's
hot path.  Before running the full Figure 4 machinery, delivery probes
the table with the receiving port handle and the ⋆-factored plan keys of
the *live* operands; a hit means asbcheck proved this exact
(port, label-values) instance always-allowed, so the kernel skips the
requirement (4) and requirement (1) checks and applies the precomputed
QS/QR effect cores instead.  Send probes work the same way for the
``ES = PS ⊔ CS`` join.

Soundness comes from content addressing, not trust in the document:

* A stub can only hit when the live operand intern ids equal the ids of
  the labels the proof assumed (plan keys are tuples of intern ids), so
  a proof compiled for different label values — a different topology, a
  stale world — simply never matches and the kernel falls back to the
  PR 5 interned path.  Failing *open to checking* is the safe direction.
* The factoring side conditions (T1–T4) are re-established on the live
  operands when the plans are built at probe time, so the ⋆-overlay
  tails are always computed from live state.
* The claimed result cores come verbatim from the document; the sampled
  sanitizer re-derives every elided decision from reference semantics,
  and the kernel forces a sanitized replay on the **first** use of every
  distinct stub key.  A mismatch quarantines the whole table
  (``valid=False`` for the rest of the run) — fail closed.

The epoch is belt and braces on top of that: system-level events that
could make the proof's worldview stale — a covered port's label being
rewritten, a covered port passed between tasks, a covered task's ⋆-free
label core leaving the proof's assumed set, an EP checkpoint by a
covered task the proofs did not expect to be a realm — bump it, which
permanently quarantines the table for this run (a fresh load resets).
Per-connection churn (new handles, new ports, EP activations on
expected realms) deliberately does not bump: content addressing already
keys every stub on the exact label values in play.

Batched delivery rides on the probe: consecutive deliveries whose
(port, operand ids, epoch) signature is unchanged reuse the previous
probe's plans and stub outright — one amortized lookup for the whole
streak, with per-message billing identical to single deliveries.  Any
operand change or epoch bump resets the streak (a mid-batch
invalidation splits the batch).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, List, NamedTuple, Optional, Tuple, Union

from repro.analysis.proofs import LoadedProofs, SendStub, load_proofs
from repro.core.chunks import ChunkedLabel
from repro.core.interning import (
    CheckPlan,
    EffectsPlan,
    InternTable,
    RaisePlan,
    apply_effects_tail,
    apply_raise_tail,
    check_plan,
    effects_plan,
    raise_plan,
)

__all__ = ["DeliverHit", "VerifiedFlowTable"]

#: Ops a deliver-stub hit elides vs the plain path: the req-(4)
#: ``DR ⊑ pR`` walk, the req-(1) check, the QS effects, the QR raise.
OPS_PER_DELIVER = 4
#: Ops a send-stub hit elides: the ``ES = PS ⊔ CS`` join.
OPS_PER_SEND = 1


class DeliverHit(NamedTuple):
    """A successful deliver probe, ready to apply."""

    key: Tuple[Any, ...]
    new_qs: ChunkedLabel
    new_qr: ChunkedLabel
    #: Plans for the sanitizer / conformance replay (live operands).
    cplan: CheckPlan
    eplan: EffectsPlan
    rplan: RaisePlan
    #: True the first time this stub key is used — the kernel must run
    #: the sanitized replay on it regardless of the sampling period.
    first_use: bool
    #: True when this hit reused the previous probe's plans (batching).
    batched: bool


class VerifiedFlowTable:
    """Loaded proofs plus runtime state (epoch, counters, batch streak)."""

    def __init__(self, proofs: LoadedProofs, table: InternTable) -> None:
        self.proofs = proofs
        self.table = table
        self.valid = True
        self.epoch = 0
        self.deliver_hits = 0
        self.send_hits = 0
        self.misses = 0
        self.ops_elided = 0
        self.invalidations = 0
        self.quarantines = 0
        self.batch_drains = 0
        self.batched_messages = 0
        self.first_use_checks = 0
        self.invalidation_reasons: List[str] = []
        self._seen_keys: set = set()
        # Batch streak: signature of the last probe and its outcome.
        self._last_sig: Optional[Tuple[Any, ...]] = None
        self._last_hit: Optional[DeliverHit] = None
        self._streak = 0
        # Strong refs to probe-time plans, hit or miss.  The canonical
        # intern table is weak: without these, a probed key's ⋆-core
        # operands can be collected between probes and re-interned under
        # fresh ids, which silently churns every id-keyed cache downstream
        # (the labelop cache re-misses on values it already knew).
        self._plan_pins: "OrderedDict[Tuple[Any, ...], Tuple[Any, ...]]" = (
            OrderedDict()
        )
        self._plan_pin_limit = 8192

    @classmethod
    def load(
        cls, source: Union[str, Dict[str, Any]], table: InternTable
    ) -> "VerifiedFlowTable":
        """Load a ``proofs/v1`` file (or parsed dict) against *table*.

        The intern table must be the same one the kernel interns live
        labels into — stub keys are intern-id tuples and only compare
        within one table.
        """
        return cls(load_proofs(source, table), table)

    # -- probing ------------------------------------------------------------

    def plan_deliver(
        self,
        port_handle: int,
        es: ChunkedLabel,
        pl: ChunkedLabel,
        qr: ChunkedLabel,
        v: ChunkedLabel,
        dr: ChunkedLabel,
        qs: ChunkedLabel,
        ds: ChunkedLabel,
    ) -> Optional[DeliverHit]:
        """Probe for a deliver stub on the live (interned) operands.

        Returns ``None`` on a miss — the caller falls back to the full
        interned path.  All operands must already be interned.
        """
        if not self.valid:
            return None
        sig = (
            port_handle,
            es.intern_id,
            pl.intern_id,
            qr.intern_id,
            v.intern_id,
            dr.intern_id,
            qs.intern_id,
            ds.intern_id,
            self.epoch,
        )
        if sig == self._last_sig:
            # Same port, same label key, no invalidation in between:
            # this message continues the batch.  Reuse the previous
            # probe's plans/stub; bill per message exactly as a single
            # delivery would (the caller charges, not us).
            self._streak += 1
            if self._streak == 2:
                self.batch_drains += 1
                self.batched_messages += 2
            elif self._streak > 2:
                self.batched_messages += 1
            hit = self._last_hit
            if hit is None:
                self.misses += 1
                return None
            self.deliver_hits += 1
            self.ops_elided += OPS_PER_DELIVER
            return hit._replace(first_use=False, batched=True)
        self._last_sig = sig
        self._streak = 1
        cplan = check_plan(self.table, es, qr, dr, v, pl)
        hit: Optional[DeliverHit] = None
        if not cplan.abstracted:
            eplan = effects_plan(self.table, qs, es, ds)
            rplan = raise_plan(self.table, qr, dr)
            key = (port_handle, cplan.key, eplan.key, rplan.key)
            self._plan_pins[key] = (cplan, eplan, rplan)
            self._plan_pins.move_to_end(key)
            if len(self._plan_pins) > self._plan_pin_limit:
                self._plan_pins.popitem(last=False)
            stub = self.proofs.deliver.get(key)
            if stub is not None:
                # The ⋆-overlay tails are recomputed from the live
                # plans; only the cores come from the document.
                hit = DeliverHit(
                    key=key,
                    new_qs=apply_effects_tail(self.table, eplan, stub.new_qs_core),
                    new_qr=apply_raise_tail(self.table, rplan, stub.new_qr_core),
                    cplan=cplan,
                    eplan=eplan,
                    rplan=rplan,
                    first_use=key not in self._seen_keys,
                    batched=False,
                )
        self._last_hit = hit
        if hit is None:
            self.misses += 1
            return None
        if hit.first_use:
            self._seen_keys.add(hit.key)
            self.first_use_checks += 1
        self.deliver_hits += 1
        self.ops_elided += OPS_PER_DELIVER
        return hit

    def plan_send(
        self, ps: ChunkedLabel, cs: ChunkedLabel
    ) -> Optional[ChunkedLabel]:
        """Probe for a send stub: the proven ``ES = PS ⊔ CS`` result.

        Returns the effective send label, or ``None`` on a miss.
        """
        if not self.valid:
            return None
        splan = raise_plan(self.table, ps, cs)
        stub: Optional[SendStub] = self.proofs.send.get(splan.key)
        if stub is None:
            return None
        self.send_hits += 1
        self.ops_elided += OPS_PER_SEND
        return apply_raise_tail(self.table, splan, stub.es_core)

    # -- invalidation -------------------------------------------------------

    def invalidate(self, reason: str) -> None:
        """System-level invalidating event: quarantine the whole table.

        Bumping the epoch also splits any in-flight delivery batch.
        """
        self.epoch += 1
        self.invalidations += 1
        if len(self.invalidation_reasons) < 32:
            self.invalidation_reasons.append(reason)
        self.valid = False
        self._last_sig = None
        self._last_hit = None
        self._streak = 0

    def quarantine(self, reason: str) -> None:
        """Sanitizer caught an elided decision diverging: fail closed."""
        self.quarantines += 1
        self.invalidate(f"sanitizer: {reason}")

    # -- invalidation-event predicates (used by the kernel's hooks) ---------

    def covers_port(self, handle: int) -> bool:
        return handle in self.proofs.covered_ports

    def covers_task(self, name: str) -> bool:
        return name in self.proofs.covered_tasks

    def expected_realm(self, name: str) -> bool:
        return name in self.proofs.expected_realms

    def core_assumed(self, task_name: str, label: ChunkedLabel) -> bool:
        """Whether *label*'s ⋆-free core is among the QS/QR values the
        proofs assumed for *task_name* specifically."""
        assumed = self.proofs.assumed_cores.get(task_name)
        if not assumed:
            return False
        core = self.table.star_core(self.table.intern(label))
        return core.intern_id in assumed

    def port_label_assumed(self, handle: int, label: ChunkedLabel) -> bool:
        """Whether *label* is one of the pR values assumed for *handle*."""
        assumed = self.proofs.port_labels.get(handle)
        if assumed is None:
            return False
        return self.table.intern(label).intern_id in assumed

    # -- reporting ----------------------------------------------------------

    def counters(self) -> Dict[str, Any]:
        return {
            "valid": self.valid,
            "epoch": self.epoch,
            "deliver_stubs": len(self.proofs.deliver),
            "send_stubs": len(self.proofs.send),
            "deliver_hits": self.deliver_hits,
            "send_hits": self.send_hits,
            "misses": self.misses,
            "ops_elided": self.ops_elided,
            "invalidations": self.invalidations,
            "quarantines": self.quarantines,
            "batch_drains": self.batch_drains,
            "batched_messages": self.batched_messages,
            "first_use_checks": self.first_use_checks,
            "topology": self.proofs.topology_name,
        }
