"""Processes and the execution context handed to simulated programs.

A *task* is anything schedulable: a base process or an event process.
Tasks carry the two kernel-maintained labels (send and receive), a set of
ports they hold receive rights for, and a generator implementing the
program.  The kernel resumes a task's generator with the result of its
last syscall; the generator yields the next syscall object.

The paper's minimal process structure takes 320 bytes of kernel memory
(Section 6); we account the same.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Dict, Generator, Optional, Set

from repro.core.chunks import ChunkedLabel
from repro.core.handles import Handle
from repro.core.labels import Label
from repro.kernel.memory import AddressSpace, MemoryView
from repro.kernel.syscalls import Recv

#: Kernel bytes per process (paper Section 6).
PROCESS_STRUCT_BYTES = 320

#: Pages implicitly allocated at spawn: stack and exception stack (§9.1).
STACK_PAGES = 1
XSTACK_PAGES = 1


class TaskState(enum.Enum):
    RUNNABLE = "runnable"     # generator ready to advance
    BLOCKED = "blocked"       # waiting in recv
    EP_REALM = "ep-realm"     # base process after ep_checkpoint; never runs
    DORMANT = "dormant"       # event process between activations
    EXITED = "exited"


class Context:
    """The per-task view handed to program bodies.

    Programs yield syscall objects for anything that crosses the protection
    boundary; purely local actions — touching their own memory, modelling
    their own computation time — are direct method calls here.
    """

    def __init__(
        self,
        kernel: "Any",
        task: "Task",
        mem: MemoryView,
        env: Dict[str, Any],
    ):
        self._kernel = kernel
        self._task = task
        self.mem = mem
        self.env = env

    @property
    def name(self) -> str:
        return self._task.name

    def compute(self, cycles: int, category: Optional[str] = None) -> None:
        """Model *cycles* of user-space computation (charged to the task's
        component category unless overridden)."""
        self._kernel.clock.charge(category or self._task.component, cycles)

    def log(self, message: str) -> None:
        self._kernel.debug_log(self._task.name, message)

    def count(self, name: str, n: int = 1) -> None:
        """Record an application-level event under the metric
        ``app.<component>.<name>`` (no-op unless metrics are enabled).

        Out-of-band like :meth:`log` — nothing a simulated program can
        read back, so it cannot become a label-bypassing channel.
        """
        if self._kernel._obs:
            self._kernel.metrics.counter(
                f"app.{self._task.component}.{name}"
            ).inc(n)

    @property
    def now(self) -> int:
        """Current virtual time in cycles (a CPU has a cycle counter; this
        is not a covert-channel concern we model — see paper §8 on timing
        channels being out of scope)."""
        return self._kernel.clock.now

    @property
    def config(self):
        """The kernel's :class:`~repro.kernel.config.KernelConfig`.

        Read-only run-mode options a component is allowed to see (e.g.
        ok-dbproxy consults ``store_path``); the config is frozen, so a
        program cannot use this to perturb the kernel."""
        return self._kernel.config

    def io_point(self, nbytes: int = 0) -> Optional[int]:
        """A durable-I/O choke point (one log append of *nbytes*).

        Consults the fault injector's ``crash_at_io`` rules; returns the
        injected torn-byte count, or ``None`` for "no fault".  The caller
        (the labeled store) owns persisting the torn prefix and raising
        the crash."""
        kernel = self._kernel
        if kernel.faults is None:
            return None
        return kernel.faults.on_io(
            self._task.key, self._task.name, kernel.steps_executed, nbytes
        )

    def metrics_scope(self, prefix: str):
        """A :class:`~repro.obs.metrics.MetricsScope` under *prefix*.

        Always safe to call — a disabled registry hands out no-op
        instruments — so components can bind their counters once."""
        return self._kernel.metrics.scope(prefix)


class Task:
    """Base class for schedulable entities (processes and event processes)."""

    def __init__(self, key: str, name: str, component: str):
        self.key = key
        self.name = name
        self.component = component
        self.send_label: ChunkedLabel = ChunkedLabel.from_label(Label.send_default())
        self.receive_label: ChunkedLabel = ChunkedLabel.from_label(Label.receive_default())
        self.gen: Optional[Generator] = None
        self.ctx: Optional[Context] = None
        self.state = TaskState.RUNNABLE
        #: Value (or exception) to deliver at the next generator resume.
        self.pending: Any = None
        self.pending_exc: Optional[BaseException] = None
        #: Ports this task holds receive rights for, in creation order.
        self.owned_ports: Set[Handle] = set()
        #: Owned ports with queued messages (kernel-maintained, so recv
        #: never scans idle ports).
        self.ready_ports: Set[Handle] = set()
        #: The Recv this task is blocked on, if BLOCKED/DORMANT.
        self.blocked_on: Optional[Recv] = None

    @property
    def is_event_process(self) -> bool:
        return False

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name} ({self.state.value})>"


class Process(Task):
    """A base process: own address space, environment, optional EP realm."""

    def __init__(
        self,
        pid: int,
        name: str,
        component: str,
        body: Callable,
        env: Dict[str, Any],
        address_space: AddressSpace,
    ):
        super().__init__(key=f"p{pid}", name=name, component=component)
        self.pid = pid
        self.body = body
        self.env = dict(env)
        self.address_space = address_space
        #: Set after ep_checkpoint: the generator function run per EP.
        self.event_body: Optional[Callable] = None
        #: Live event processes of this base, by key.
        self.event_processes: Dict[str, "Any"] = {}
        self.ep_counter = 0
        #: The EP currently mid-activation (only one runs at a time and a
        #: blocked EP blocks the whole process, §6.1).
        self.active_ep: Optional[str] = None
        #: Realm ports with queued messages (kernel-maintained; avoids
        #: scanning thousands of dormant EPs per delivery).
        self.ready_realm_ports: Set[Handle] = set()
        #: Port to send an obituary to when this process exits.
        self.notify_exit: Optional[Handle] = None

    def kernel_bytes(self) -> int:
        return PROCESS_STRUCT_BYTES
