"""Component-tagged cycle accounting — the simulator's notion of time.

The paper's evaluation machine is a 2.8 GHz Pentium 4; Figure 9 reports
average *Kcycles per connection* attributed to five components: OKDB (the
database), OKWS (application code), Kernel IPC (send/recv and label
operations), Network (netd), and Other.  Our simulator reproduces this by
accruing cycles on a single global :class:`CycleClock`:

- every syscall charges a base cost plus, for send/recv, a cost derived
  from the label work *actually performed* (entries scanned, chunks
  allocated — see :class:`~repro.core.chunks.OpStats`), all attributed to
  ``KERNEL_IPC``;
- simulated programs model their own computation with
  ``ctx.compute(cycles)``, attributed to their component tag.

Calibration: the per-unit constants in :class:`CostModel` were fixed once
so that the 1-session OKWS operating point lands near the paper's (about
1.75 M cycles/connection, i.e. ~1600 connections/second at 2.8 GHz); every
*trend* in Figures 7 and 9 then emerges from the simulated structure sizes,
not from fitting curves to the figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.core.chunks import OpStats

# Component categories (Figure 9 legend).
KERNEL_IPC = "Kernel IPC"
NETWORK = "Network"
OKWS = "OKWS"
OKDB = "OKDB"
OTHER = "Other"

CATEGORIES = (OKDB, OKWS, KERNEL_IPC, NETWORK, OTHER)

#: The paper's CPU: 2.8 GHz Pentium 4.
CPU_HZ = 2_800_000_000


@dataclass
class CostModel:
    """Per-unit cycle costs for kernel operations.

    All constants are cycles.  ``label_entry`` is the marginal cost of
    touching one label entry during ⊑/⊔/⊓ — the linear factor behind
    Figure 9's Kernel IPC growth.
    """

    syscall_base: int = 1_200          # trap + dispatch
    send_base: int = 5_500             # enqueue, wakeups, queue bookkeeping
    recv_base: int = 5_500             # dequeue, copyout
    label_op_base: int = 250           # fixed cost per ⊑/⊔/⊓/L*
    label_entry: int = 42              # per explicit entry scanned
    label_entry_scan: float = 0.55     # per entry in the modelled 2005-era
                                       # linear scans.  Sub-cycle because the
                                       # modelled counts sum *both* operands of
                                       # every ⊔/⊓/⊑ in the chain (~4 terms per
                                       # op), while the real merge is a single
                                       # memory-bandwidth-bound pass.
                                       # Calibrated so Figure 9's crossings
                                       # land where the paper reports them
                                       # (IPC passes Network near 3,000
                                       # sessions, meets OKWS near 7,500).
    chunk_skip: int = 25               # per chunk avoided via min/max hints
    label_alloc: int = 380             # allocate a label header
    chunk_alloc: int = 300             # allocate + populate a chunk
    chunk_share: int = 18              # bump a shared chunk's refcount
    ep_create: int = 22_000            # event process creation
    ep_switch: int = 3_500             # restore an EP's labels/pages
    cow_page_copy: int = 2_800         # copy-on-write page fault
    page_alloc: int = 1_400            # fresh page allocation
    spawn: int = 450_000               # full process creation
    handle_alloc: int = 900            # new_handle (cipher + vnode insert)
    port_alloc: int = 1_600            # new_port
    labelop_cache_hit: int = 120       # interned-id LRU probe replacing a
                                       # full Figure 4 label operation
    elide_stub_hit: int = 120          # verified-flow table probe on a
                                       # proven edge (same flat-LRU shape
                                       # as a labelop cache hit)
    elide_deliver_base: int = 2_750    # dequeue/copyout on the verified
                                       # fastpath: with checks elided the
                                       # delivery skips the general-case
                                       # bookkeeping, seL4-fastpath style
                                       # (DESIGN.md §15); replaces
                                       # recv_base on stub-hit deliveries

    def label_work(self, stats: OpStats) -> int:
        """Convert an OpStats record into cycles."""
        return (
            self.label_op_base * stats.operations
            + self.label_entry * stats.entries_scanned
            + self.chunk_skip * stats.chunks_skipped
            + self.label_alloc * stats.labels_allocated
            + self.chunk_alloc * stats.chunks_allocated
            + self.chunk_share * stats.chunks_shared
        )


@dataclass
class CycleClock:
    """Accrues cycles per component; ``now`` is the virtual time in cycles."""

    cost: CostModel = field(default_factory=CostModel)
    by_category: Dict[str, int] = field(default_factory=dict)
    now: int = 0

    def charge(self, category: str, cycles: int) -> None:
        if cycles < 0:
            raise ValueError(f"negative cycle charge: {cycles}")
        self.by_category[category] = self.by_category.get(category, 0) + cycles
        self.now += cycles

    def charge_label_work(self, stats: OpStats) -> None:
        self.charge(KERNEL_IPC, self.cost.label_work(stats))

    def snapshot(self) -> Dict[str, int]:
        """A copy of the per-category totals (for measuring intervals)."""
        return dict(self.by_category)

    def delta(self, since: Dict[str, int]) -> Dict[str, int]:
        """Per-category cycles accrued since *since* (a snapshot)."""
        return {
            cat: self.by_category.get(cat, 0) - since.get(cat, 0)
            for cat in set(self.by_category) | set(since)
        }

    @property
    def seconds(self) -> float:
        """Virtual wall-clock seconds at the paper's 2.8 GHz."""
        return self.now / CPU_HZ

    def reset(self) -> None:
        self.by_category.clear()
        self.now = 0
