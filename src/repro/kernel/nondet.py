"""Pluggable nondeterminism: every decision the kernel does not fully
determine flows through one :class:`NondetSource`.

Three call sites exist (see ``kernel.py`` and ``faults/injector.py``):

- ``choose("pick", options)`` — which runnable task steps next.  Option 0
  is always the plain FIFO head, so a source that answers 0 everywhere
  reproduces the deterministic round-robin exactly.
- ``choose("wake", ("timers", "task"))`` — with a due timer *and* a
  runnable task, which goes first.  Option 0 ("timers") is the kernel's
  historical order.
- ``chance(kind, p, target)`` — a fault-injection rule firing with
  probability *p*.

The split matters because it makes a run a pure function of
``(program, fault plan, source)``: the seeded PRNG that used to live
inside :class:`~repro.faults.injector.FaultInjector` becomes one source
(:class:`SeededSource`, byte-identical decision stream), and the
schedule-space explorer (:mod:`repro.analysis.sched`) becomes another
(:class:`ScriptedSource`, which replays a decision prefix and records
every choice point it was consulted at).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class ChoicePoint:
    """One consulted decision, as recorded by a :class:`ScriptedSource`."""

    seq: int                  # position in the decision stream
    kind: str                 # "pick", "wake", "chance:<rule kind>", ...
    options: Tuple[str, ...]  # human-readable option labels
    chosen: int               # index actually taken

    @property
    def forced(self) -> bool:
        """A point with one option carries no information."""
        return len(self.options) <= 1

    def to_json(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "chosen": self.chosen,
            "option": self.options[self.chosen] if self.options else "",
            "options": list(self.options),
        }


class NondetSource:
    """Base source: deterministic defaults (FIFO pick, timers-first wake,
    faults never fire).  Subclasses override either method."""

    def choose(self, kind: str, options: Sequence[str]) -> int:
        """Pick one of *options*; must return a valid index.  Index 0 is
        always the kernel's historical deterministic choice."""
        return 0

    def chance(self, kind: str, p: float, target: str = "") -> bool:
        """A probability-*p* event (fault rule firing): True = it fires."""
        return False


class SeededSource(NondetSource):
    """The classic seeded PRNG, now behind the interface.

    ``chance`` draws exactly one sample per call — the same
    ``random.Random(seed)`` stream, in the same order, as the PRNG that
    previously lived inside the fault injector — so existing (plan, seed)
    pairs replay their fault logs byte for byte.  ``choose`` stays at the
    FIFO default: scheduling was never randomised and must not start now.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.rng = random.Random(seed)

    def chance(self, kind: str, p: float, target: str = "") -> bool:
        return self.rng.random() < p


class ScriptedSource(NondetSource):
    """Replays a decision prefix, answers the default beyond it, and logs
    every choice point — the explorer's window into the kernel.

    *script* is a list of option indices consumed in decision order.  An
    out-of-range or exhausted entry falls back to 0, so any prefix of any
    recorded run is a valid script.  With ``branch_chance`` (the default)
    a fractional-probability fault rule becomes an explicit two-way
    choice point ("skip"/"fire") instead of a PRNG draw; ``p <= 0`` and
    ``p >= 1`` short-circuit without a choice point either way.  A
    ``random.Random(seed)`` backs ``chance`` when branching is off, so a
    (plan, seed, schedule) triple fully determines a run in both modes.
    """

    def __init__(
        self,
        script: Sequence[int] = (),
        seed: int = 0,
        branch_chance: bool = True,
    ):
        self.script = list(script)
        self.seed = seed
        self.rng = random.Random(seed)
        self.branch_chance = branch_chance
        self.log: List[ChoicePoint] = []

    def _record(self, kind: str, options: Sequence[str]) -> int:
        seq = len(self.log)
        chosen = self.script[seq] if seq < len(self.script) else 0
        if not 0 <= chosen < len(options):
            chosen = 0
        self.log.append(ChoicePoint(seq, kind, tuple(options), chosen))
        return chosen

    def choose(self, kind: str, options: Sequence[str]) -> int:
        return self._record(kind, options)

    def chance(self, kind: str, p: float, target: str = "") -> bool:
        if p <= 0.0:
            return False
        if p >= 1.0:
            return True
        if self.branch_chance:
            name = f"chance:{kind}:{target}" if target else f"chance:{kind}"
            return self._record(name, ("skip", "fire")) == 1
        return self.rng.random() < p

    def decisions(self) -> List[int]:
        """The run's full decision vector (replaying it through a fresh
        kernel reproduces the run exactly)."""
        return [point.chosen for point in self.log]
