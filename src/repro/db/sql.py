"""A small SQL parser.

Supports the subset OKWS needs (and a little more, so examples and tests
can write natural schemas):

.. code-block:: sql

    CREATE TABLE users (uid INTEGER, name TEXT, password TEXT)
    INSERT INTO users (uid, name, password) VALUES (?, ?, ?)
    SELECT uid, name FROM users WHERE name = ? AND password = ?
    SELECT * FROM users
    UPDATE users SET password = ? WHERE uid = ?
    DELETE FROM users WHERE uid = ?

Only equality predicates joined by AND; values are ``?`` placeholders,
integer literals, or single-quoted strings.  That is all the paper's
workloads use, and keeping the grammar small keeps the engine honest (no
accidental indexes or query planning — every scan is linear, as in the
paper's unoptimised setup).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union


class SqlError(Exception):
    """Malformed SQL or a semantic error (unknown table/column)."""


@dataclass(frozen=True)
class Placeholder:
    """A ``?`` parameter slot, numbered left to right."""

    index: int


Value = Union[int, str, Placeholder]


@dataclass(frozen=True)
class Condition:
    column: str
    value: Value


@dataclass(frozen=True)
class CreateTable:
    table: str
    columns: Tuple[Tuple[str, str], ...]  # (name, type) pairs


@dataclass(frozen=True)
class Insert:
    table: str
    columns: Tuple[str, ...]
    values: Tuple[Value, ...]


@dataclass(frozen=True)
class Select:
    table: str
    columns: Tuple[str, ...]  # ("*",) for all
    where: Tuple[Condition, ...] = ()


@dataclass(frozen=True)
class Update:
    table: str
    assignments: Tuple[Tuple[str, Value], ...]
    where: Tuple[Condition, ...] = ()


@dataclass(frozen=True)
class Delete:
    table: str
    where: Tuple[Condition, ...] = ()


Statement = Union[CreateTable, Insert, Select, Update, Delete]

_TOKEN_RE = re.compile(
    r"""
    \s*(
        '(?:[^']|'')*'        # quoted string
      | \d+                   # integer
      | \?                    # placeholder
      | [A-Za-z_][A-Za-z_0-9]*  # identifier / keyword
      | [(),=*]               # punctuation
    )
    """,
    re.VERBOSE,
)

_TYPES = {"INTEGER", "TEXT", "BLOB", "REAL"}


def _tokenize(sql: str) -> List[str]:
    tokens: List[str] = []
    pos = 0
    while pos < len(sql):
        match = _TOKEN_RE.match(sql, pos)
        if match is None:
            rest = sql[pos:].strip()
            if not rest:
                break
            raise SqlError(f"cannot tokenize near: {rest[:30]!r}")
        tokens.append(match.group(1))
        pos = match.end()
    return tokens


@dataclass
class _Cursor:
    tokens: List[str]
    pos: int = 0
    placeholders: int = 0

    def peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise SqlError("unexpected end of statement")
        self.pos += 1
        return token

    def expect(self, *words: str) -> str:
        token = self.next()
        if token.upper() not in words:
            raise SqlError(f"expected {' or '.join(words)}, got {token!r}")
        return token.upper()

    def expect_ident(self) -> str:
        token = self.next()
        if not re.fullmatch(r"[A-Za-z_][A-Za-z_0-9]*", token):
            raise SqlError(f"expected identifier, got {token!r}")
        return token

    def value(self) -> Value:
        token = self.next()
        if token == "?":
            placeholder = Placeholder(self.placeholders)
            self.placeholders += 1
            return placeholder
        if token.isdigit():
            return int(token)
        if token.startswith("'"):
            return token[1:-1].replace("''", "'")
        raise SqlError(f"expected a value, got {token!r}")

    def done(self) -> None:
        if self.peek() is not None:
            raise SqlError(f"trailing tokens from {self.peek()!r}")


def _parse_where(cur: _Cursor) -> Tuple[Condition, ...]:
    if cur.peek() is None:
        return ()
    cur.expect("WHERE")
    conditions: List[Condition] = []
    while True:
        column = cur.expect_ident()
        cur.expect("=")
        conditions.append(Condition(column, cur.value()))
        if cur.peek() is None or cur.peek().upper() != "AND":
            break
        cur.next()
    return tuple(conditions)


def parse(sql: str) -> Statement:
    """Parse one SQL statement into its AST."""
    cur = _Cursor(_tokenize(sql))
    head = cur.expect("CREATE", "INSERT", "SELECT", "UPDATE", "DELETE")

    if head == "CREATE":
        cur.expect("TABLE")
        table = cur.expect_ident()
        cur.expect("(")
        columns: List[Tuple[str, str]] = []
        while True:
            name = cur.expect_ident()
            col_type = cur.next().upper()
            if col_type not in _TYPES:
                raise SqlError(f"unknown column type {col_type!r}")
            columns.append((name, col_type))
            if cur.expect(",", ")") == ")":
                break
        cur.done()
        return CreateTable(table, tuple(columns))

    if head == "INSERT":
        cur.expect("INTO")
        table = cur.expect_ident()
        cur.expect("(")
        columns2: List[str] = []
        while True:
            columns2.append(cur.expect_ident())
            if cur.expect(",", ")") == ")":
                break
        cur.expect("VALUES")
        cur.expect("(")
        values: List[Value] = []
        while True:
            values.append(cur.value())
            if cur.expect(",", ")") == ")":
                break
        cur.done()
        if len(values) != len(columns2):
            raise SqlError("INSERT column/value count mismatch")
        return Insert(table, tuple(columns2), tuple(values))

    if head == "SELECT":
        columns3: List[str] = []
        if cur.peek() == "*":
            cur.next()
            columns3 = ["*"]
        else:
            while True:
                columns3.append(cur.expect_ident())
                if cur.peek() != ",":
                    break
                cur.next()
        cur.expect("FROM")
        table = cur.expect_ident()
        where = _parse_where(cur)
        return Select(table, tuple(columns3), where)

    if head == "UPDATE":
        table = cur.expect_ident()
        cur.expect("SET")
        assignments: List[Tuple[str, Value]] = []
        while True:
            column = cur.expect_ident()
            cur.expect("=")
            assignments.append((column, cur.value()))
            if cur.peek() != ",":
                break
            cur.next()
        where = _parse_where(cur)
        return Update(table, tuple(assignments), where)

    # DELETE
    cur.expect("FROM")
    table = cur.expect_ident()
    where = _parse_where(cur)
    return Delete(table, where)
