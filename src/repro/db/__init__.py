"""An in-memory relational engine standing in for the paper's SQLite.

The paper ports SQLite to Asbestos and interposes ok-dbproxy on all
database access (Section 7.5).  This package provides the substrate that
port relied on: a small relational engine (:mod:`repro.db.engine`) with a
SQL subset parser (:mod:`repro.db.sql`).  Like the paper's setup, all data
lives in memory, and lookups are unindexed linear scans — which is what
makes authentication cost grow with the user population in Figure 9.
"""

from repro.db.engine import Database, Table
from repro.db.sql import SqlError, parse

__all__ = ["Database", "Table", "SqlError", "parse"]
