"""The relational engine.

Tables are lists of row dicts; every SELECT/UPDATE/DELETE is a linear scan
(no indexes — matching the unoptimised SQLite setup whose cost growth the
paper observes in Figure 9).  The engine reports how many rows each
statement scanned so callers (ok-dbproxy) can charge realistic cycle
costs.

The engine itself knows nothing about labels or users; the Asbestos
security semantics live entirely in :mod:`repro.servers.dbproxy`, which is
the component the paper actually trusts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

from repro.db import sql as S

_PY_TYPES = {
    "INTEGER": int,
    "TEXT": str,
    "BLOB": (bytes, bytearray),
    "REAL": (int, float),
}


@dataclass
class Table:
    name: str
    columns: Tuple[Tuple[str, str], ...]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    #: Simulation-only equality indexes: frozenset(columns) -> values -> rows.
    #: The *modelled* engine is unindexed — SELECT still reports a full
    #: linear scan (the cost the paper's Figure 9 measures) — but repeated
    #: Python-side scans of a 10,000-row user table would dominate the
    #: simulator's wall-clock, so lookups are served from these maps.
    _indexes: Dict[frozenset, Dict[tuple, List[Dict[str, Any]]]] = field(
        default_factory=dict, repr=False
    )

    @property
    def column_names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.columns)

    def invalidate_indexes(self) -> None:
        self._indexes.clear()

    def lookup(self, conditions: Dict[str, Any]) -> List[Dict[str, Any]]:
        """Equality lookup via a lazily built index."""
        key = frozenset(conditions)
        index = self._indexes.get(key)
        if index is None:
            cols = sorted(key)
            index = {}
            for row in self.rows:
                index.setdefault(tuple(row.get(c) for c in cols), []).append(row)
            self._indexes[key] = index
        return index.get(tuple(conditions[c] for c in sorted(key)), [])

    def check_value(self, column: str, value: Any) -> None:
        for name, col_type in self.columns:
            if name == column:
                if value is not None and not isinstance(value, _PY_TYPES[col_type]):
                    raise S.SqlError(
                        f"{self.name}.{column}: expected {col_type}, got {type(value).__name__}"
                    )
                return
        raise S.SqlError(f"no column {column!r} in table {self.name!r}")


@dataclass
class Result:
    """Outcome of one statement."""

    rows: List[Dict[str, Any]] = field(default_factory=list)
    rows_affected: int = 0
    rows_scanned: int = 0


class Database:
    """A named collection of tables with a statement executor."""

    def __init__(self) -> None:
        self.tables: Dict[str, Table] = {}
        self.total_rows_scanned = 0

    # -- execution -------------------------------------------------------------

    def execute(self, statement: str, params: Sequence[Any] = ()) -> Result:
        """Parse and run one statement with ``?`` parameters bound from
        *params* (left to right)."""
        ast = S.parse(statement)
        return self.run(ast, params)

    def run(self, ast: S.Statement, params: Sequence[Any] = ()) -> Result:
        if isinstance(ast, S.CreateTable):
            return self._create(ast)
        if isinstance(ast, S.Insert):
            return self._insert(ast, params)
        if isinstance(ast, S.Select):
            return self._select(ast, params)
        if isinstance(ast, S.Update):
            return self._update(ast, params)
        if isinstance(ast, S.Delete):
            return self._delete(ast, params)
        raise S.SqlError(f"unsupported statement: {ast!r}")

    # -- statement handlers ------------------------------------------------------

    def _table(self, name: str) -> Table:
        table = self.tables.get(name)
        if table is None:
            raise S.SqlError(f"no such table: {name!r}")
        return table

    def _create(self, ast: S.CreateTable) -> Result:
        if ast.table in self.tables:
            raise S.SqlError(f"table exists: {ast.table!r}")
        names = [name for name, _ in ast.columns]
        if len(set(names)) != len(names):
            raise S.SqlError(f"duplicate column in {ast.table!r}")
        self.tables[ast.table] = Table(ast.table, ast.columns)
        return Result()

    def _bind(self, value: S.Value, params: Sequence[Any]) -> Any:
        if isinstance(value, S.Placeholder):
            if value.index >= len(params):
                raise S.SqlError(
                    f"statement needs parameter {value.index + 1}, got {len(params)}"
                )
            return params[value.index]
        return value

    def _matches(
        self,
        row: Dict[str, Any],
        where: Tuple[S.Condition, ...],
        params: Sequence[Any],
    ) -> bool:
        return all(row.get(c.column) == self._bind(c.value, params) for c in where)

    def _insert(self, ast: S.Insert, params: Sequence[Any]) -> Result:
        table = self._table(ast.table)
        row = {name: None for name in table.column_names}
        for column, value in zip(ast.columns, ast.values):
            bound = self._bind(value, params)
            table.check_value(column, bound)
            row[column] = bound
        table.rows.append(row)
        table.invalidate_indexes()
        return Result(rows_affected=1)

    def _select(self, ast: S.Select, params: Sequence[Any]) -> Result:
        table = self._table(ast.table)
        wanted = table.column_names if ast.columns == ("*",) else ast.columns
        for column in wanted:
            if column not in table.column_names:
                raise S.SqlError(f"no column {column!r} in table {table.name!r}")
        for condition in ast.where:
            if condition.column not in table.column_names:
                raise S.SqlError(
                    f"no column {condition.column!r} in table {table.name!r}"
                )
        result = Result()
        # The modelled engine scans linearly (every row is "scanned" for
        # the cost model); the simulation serves the matches from an index.
        result.rows_scanned = len(table.rows)
        if ast.where and len({c.column for c in ast.where}) == len(ast.where):
            bound = {c.column: self._bind(c.value, params) for c in ast.where}
            matches = table.lookup(bound)
        elif ast.where:
            # Duplicate columns in the WHERE (e.g. "a = 1 AND a = 2"):
            # fall back to the honest scan.
            matches = [
                row for row in table.rows if self._matches(row, ast.where, params)
            ]
        else:
            matches = table.rows
        for row in matches:
            result.rows.append({column: row[column] for column in wanted})
        self.total_rows_scanned += result.rows_scanned
        return result

    def _update(self, ast: S.Update, params: Sequence[Any]) -> Result:
        table = self._table(ast.table)
        result = Result()
        for row in table.rows:
            result.rows_scanned += 1
            if self._matches(row, ast.where, params):
                for column, value in ast.assignments:
                    bound = self._bind(value, params)
                    table.check_value(column, bound)
                    row[column] = bound
                result.rows_affected += 1
        table.invalidate_indexes()
        self.total_rows_scanned += result.rows_scanned
        return result

    def _delete(self, ast: S.Delete, params: Sequence[Any]) -> Result:
        table = self._table(ast.table)
        result = Result()
        kept: List[Dict[str, Any]] = []
        for row in table.rows:
            result.rows_scanned += 1
            if self._matches(row, ast.where, params):
                result.rows_affected += 1
            else:
                kept.append(row)
        table.rows = kept
        table.invalidate_indexes()
        self.total_rows_scanned += result.rows_scanned
        return result
