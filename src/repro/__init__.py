"""asbestos-repro: a Python reproduction of "Labels and Event Processes
in the Asbestos Operating System" (SOSP 2005).

Quick tour of the public surface:

- :mod:`repro.core` — the label algebra: :class:`~repro.core.labels.Label`,
  levels ``STAR < 0 < 1 < 2 < 3``, 61-bit handles.
- :mod:`repro.kernel` — the simulated OS: :class:`~repro.kernel.Kernel`
  (configured with a frozen :class:`~repro.kernel.KernelConfig`), the
  syscall objects program generators yield, event processes.
- :mod:`repro.okws` — the OKWS web server: :func:`~repro.okws.launch`,
  :class:`~repro.okws.ServiceConfig`, the worker framework.
- :mod:`repro.obs` — observability: :class:`~repro.obs.MetricsRegistry`,
  :class:`~repro.obs.SpanRecorder` (Chrome trace export), and the
  ``python -m repro bench`` harness.
- :mod:`repro.sim` — workload generation and the experiment drivers that
  regenerate the paper's figures.
- :mod:`repro.policies` — MLS, capability and integrity recipes.
- :mod:`repro.covert` — the Section 8 storage channels and mitigation.
- :mod:`repro.faults` — deterministic fault injection: declarative
  :class:`~repro.faults.FaultPlan` documents, the seeded injector, and
  the ``python -m repro chaos`` campaign runner.
- :mod:`repro.store` — durable storage for ok-dbproxy: a labeled
  ``wal/v1`` write-ahead log whose recovery label-checks every
  resurrected row, and the ``python -m repro crashcheck``
  crash-consistency checker that proves it at every crash point
  (DESIGN.md §14).
- :mod:`repro.cluster` — the sharded multi-core kernel:
  :class:`~repro.cluster.Cluster` runs N kernels as parallel OS
  processes behind one facade, exchanging ``wire/v1`` messages with
  full Figure 4 checks re-run on the receiving shard (DESIGN.md §13);
  ``python -m repro bench --scale`` measures the scaling.

The stable, re-exported surface is exactly ``repro.__all__`` below (see
the API table in README.md); anything else may move between releases.

Start with ``python examples/quickstart.py`` or ``python -m repro``.
"""

from repro.core import Label, STAR, L0, L1, L2, L3, Handle, HandleAllocator
from repro.kernel import Kernel, KernelConfig
from repro.obs import MetricsRegistry, SpanRecorder, kernel_snapshot

__version__ = "1.3.0"

__all__ = [
    # label algebra
    "Label",
    "STAR",
    "L0",
    "L1",
    "L2",
    "L3",
    "Handle",
    "HandleAllocator",
    # the machine
    "Kernel",
    "KernelConfig",
    # observability
    "MetricsRegistry",
    "SpanRecorder",
    "kernel_snapshot",
    # entry points (lazy; see __getattr__)
    "launch",
    "ServiceConfig",
    "run_memory_experiment",
    "run_session_sweep",
    "run_latency_experiment",
    "run_bench",
    "analyze_paths",
    "run_check",
    "explore",
    "scenario_from_topology",
    "record_okws_topology",
    "FaultPlan",
    "load_plan",
    "run_campaign",
    # the sharded cluster (repro.cluster, DESIGN.md §13)
    "Cluster",
    "ClusterConfig",
    # the interned-label fast path (repro.core.interning, DESIGN.md §11)
    "InternTable",
    "LabelOpCache",
    "global_intern_table",
    # the labeled durable store (repro.store, DESIGN.md §14)
    "LabeledStore",
    "RecoveryReport",
    "replay_image",
    "__version__",
]

#: Lazily-resolved re-exports: importing ``repro`` must stay cheap (no
#: OKWS/simulator machinery), but ``from repro import launch`` still works.
_LAZY = {
    "launch": ("repro.okws", "launch"),
    "ServiceConfig": ("repro.okws", "ServiceConfig"),
    "run_memory_experiment": ("repro.sim.runner", "run_memory_experiment"),
    "run_session_sweep": ("repro.sim.runner", "run_session_sweep"),
    "run_latency_experiment": ("repro.sim.runner", "run_latency_experiment"),
    "run_bench": ("repro.obs.bench", "run_bench"),
    "analyze_paths": ("repro.analysis.asblint", "analyze_paths"),
    "run_check": ("repro.analysis.check", "run_check"),
    "explore": ("repro.analysis.sched", "explore"),
    "scenario_from_topology": ("repro.analysis.sched", "scenario_from_topology"),
    "record_okws_topology": ("repro.okws.topology", "record_okws_topology"),
    "InternTable": ("repro.core.interning", "InternTable"),
    "LabelOpCache": ("repro.core.interning", "LabelOpCache"),
    "global_intern_table": ("repro.core.interning", "global_intern_table"),
    "FaultPlan": ("repro.faults", "FaultPlan"),
    "load_plan": ("repro.faults", "load_plan"),
    "run_campaign": ("repro.faults", "run_campaign"),
    "Cluster": ("repro.cluster", "Cluster"),
    "ClusterConfig": ("repro.cluster", "ClusterConfig"),
    "LabeledStore": ("repro.store", "LabeledStore"),
    "RecoveryReport": ("repro.store", "RecoveryReport"),
    "replay_image": ("repro.store", "replay_image"),
}


def __getattr__(name):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(target[0]), target[1])
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
