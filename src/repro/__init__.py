"""asbestos-repro: a Python reproduction of "Labels and Event Processes
in the Asbestos Operating System" (SOSP 2005).

Quick tour of the public surface:

- :mod:`repro.core` — the label algebra: :class:`~repro.core.labels.Label`,
  levels ``STAR < 0 < 1 < 2 < 3``, 61-bit handles.
- :mod:`repro.kernel` — the simulated OS: :class:`~repro.kernel.Kernel`,
  the syscall objects program generators yield, event processes.
- :mod:`repro.okws` — the OKWS web server: :func:`~repro.okws.launch`,
  :class:`~repro.okws.ServiceConfig`, the worker framework.
- :mod:`repro.sim` — workload generation and the experiment drivers that
  regenerate the paper's figures.
- :mod:`repro.policies` — MLS, capability and integrity recipes.
- :mod:`repro.covert` — the Section 8 storage channels and mitigation.

Start with ``python examples/quickstart.py`` or ``python -m repro``.
"""

from repro.core import Label, STAR, L0, L1, L2, L3, Handle, HandleAllocator
from repro.kernel import Kernel

__version__ = "1.0.0"

__all__ = [
    "Label",
    "STAR",
    "L0",
    "L1",
    "L2",
    "L3",
    "Handle",
    "HandleAllocator",
    "Kernel",
    "__version__",
]
