"""Core Asbestos label algebra.

This package implements the label machinery of the paper's Section 5:

- :mod:`repro.core.levels` -- the ordered level set ``[*, 0, 1, 2, 3]``.
- :mod:`repro.core.labels` -- labels as functions from handles to levels,
  with the lattice operators compare (``<=``), least upper bound (``|``),
  greatest lower bound (``&``), and the stars-only projection ``L.stars()``.
- :mod:`repro.core.handles` -- the 61-bit handle namespace, allocated by
  encrypting a counter so that handle values are unpredictable but never
  repeat (closing the handle-count covert channel, Section 8).
- :mod:`repro.core.chunks` -- the kernel's chunked, reference-counted,
  copy-on-write label representation (Section 5.6).
"""

from repro.core.levels import STAR, L0, L1, L2, L3, Level, level_name
from repro.core.labels import Label
from repro.core.handles import Handle, HandleAllocator, HANDLE_BITS

__all__ = [
    "STAR",
    "L0",
    "L1",
    "L2",
    "L3",
    "Level",
    "level_name",
    "Label",
    "Handle",
    "HandleAllocator",
    "HANDLE_BITS",
]
