"""Hash-consed labels and the kernel's label-operation cache.

A series of label operations accompanies every IPC, and the asbcheck
model checker (``repro.analysis.check``) already demonstrated offline
that interning labels and memoizing the Figure 4 firings turns minutes
of label algebra into sub-second runs.  This module brings the same two
ideas to the *live* kernel:

- :class:`InternTable` hash-conses :class:`~repro.core.chunks.ChunkedLabel`
  instances: structurally equal labels (same canonical entry tuple and
  default) share one canonical instance carrying a process-unique integer
  ``intern_id``.  Labels are immutable, so canonical instances are safe to
  share between every kernel in the process — and safe to key caches on
  forever, because a given id can never come to mean a different label.
- :class:`LabelOpCache` is a bounded LRU over interned ids for the three
  Figure 4 operations on the IPC hot path — the :func:`~repro.core.
  labelops.check_send` delivery verdict, the :func:`~repro.core.labelops.
  apply_send_effects` contamination result, and the :func:`~repro.core.
  labelops.raise_receive` result.  Interned ids make the cache key a
  tuple of small ints, and immutability makes the cache *invalidation
  free*: entries are only ever evicted for space, never for correctness.

Exact keys alone are not enough on a loaded OKWS site: every accepted
connection grants a fresh port capability, so the labels of netd, the
demux and the workers each carry a churning set of per-connection ``*``
entries on top of a per-user core that does reach a fixed point.  An
exact-key cache therefore misses on precisely the operations that scan
the big labels.  The fix is **⋆-factored keys**, justified by three
little theorems about Figure 4 (each checked against the reference
operators by ``tests/test_conformance.py``):

T1 (receiver ``*`` immunity).  ``apply_send_effects`` maps every handle
    the receiver holds at ``*`` to ``*`` (``min(*, ·) = *`` in both the
    grant and the contamination term), independent of ES and DS there.
    So ``effects(QS, ES, DS) = overlay(effects(QS°, ES, DS), stars(QS))``
    unconditionally, where ``QS°`` drops QS's explicit ``*`` entries and
    ``overlay`` writes them back into the result.

T2 (``*`` passes checks).  An ES entry at ``*`` can never fail
    ``ES ⊑ (QR ⊔ DR) ⊓ V ⊓ pR``.  Stripping it reverts the handle to
    ES's default, which also passes whenever every level on the
    right-hand side's lowering components (QR, V, pR — DR only ever
    *raises* the bound) is ≥ ES's default.  Under that side condition the
    verdict is a pure function of the ⋆-free ES, so the check may key on
    it.  Sends that rely on a ``*`` capability against a pinned-low port
    label (``pR(uC) = 0``) fail the side condition and take the exact
    path — capability checks are never cached across connections.

T3 (``⊔`` absorbs ``*``).  ``max(q, *) = q``, so QR's ``*`` entries
    survive ``QR ⊔ DR`` verbatim and can be overlaid back onto a result
    computed on QR's core — provided DR's default is ``*``.  A DR
    explicit entry landing *on* a QR star is admissible when it is
    ≥ QR's default: the full join gives DR(h) there and the core join
    ``max(QR.default, DR(h))`` reproduces it, so the overlay simply
    skips that handle (a taint raise punching through a held ``*``).
    DR itself always stays exact in the key: dropping one of *its*
    ``*`` entries would revert that handle to DR's default, a different
    join wherever the default exceeds QR.  This factoring is what
    serves ``ES = PS ⊔ CS`` at send time, where PS is the privileged
    sender's star-heavy label and CS a tiny contamination with a ``*``
    default.

T4 (fresh-pin abstraction).  The one send T2 rightly refuses — a
    capability send against a pinned-low port label — churns its key
    anyway, because the *port label* is a fresh intern per connection.
    But every label operation is equivariant under handle renaming, and
    when QR and V cannot dip below ES's default anywhere, a pR explicit
    entry below ES's default that is covered by a held ES star is exempt
    from the check while its handle appears nowhere else the verdict can
    see.  The verdict is then a pure function of (ES's core, QR, DR, V,
    pR with those pins abstracted to their bare levels), so the cache
    keys on that — and the per-connection conn-port handle drops out of
    the key entirely.  The miss still computes on the exact full
    operands; only the *key* abstracts.

In the steady state of a loaded server the ⋆-free cores on the hot path
reach a per-user fixed point, so nearly every delivery becomes three LRU
probes plus an O(live connections) star overlay instead of three
O(users) label merges.  The overlay itself is an artifact of the
simulation: a kernel that adopted this design would *store* labels in
factored form and never materialise the union (DESIGN.md §11).

The table holds its canonical labels through weak references, so labels
whose last kernel dies are garbage collected with it; ids are issued from
a module-wide counter, so no two labels ever share an id even across
distinct tables.
"""

from __future__ import annotations

import hashlib
import itertools
import struct
import weakref
from collections import OrderedDict
from typing import Any, Dict, Iterable, NamedTuple, Optional, Set, Tuple

from repro.core import labelops
from repro.core.chunks import ChunkedLabel, OpStats
from repro.core.labels import Label
from repro.core.levels import STAR

__all__ = [
    "CheckPlan",
    "EffectsPlan",
    "InternTable",
    "LabelOpCache",
    "RaisePlan",
    "apply_effects_tail",
    "apply_raise_tail",
    "check_plan",
    "effects_plan",
    "global_intern_table",
    "label_fingerprint",
    "overlay_stars",
    "raise_plan",
    "DEFAULT_CACHE_SIZE",
]

#: Default bound on the number of memoized operation results.
DEFAULT_CACHE_SIZE = 4096

#: Process-wide id source: ids stay unique even across distinct tables,
#: so a cache can never be confused by labels interned elsewhere.
_ids = itertools.count()

def label_fingerprint(default: int, entries: Iterable[Tuple[int, int]]) -> int:
    """Stable 64-bit content id for a label value.

    ``intern_id`` is process-local (issued from an in-process counter), so
    it cannot name a label to another shard.  The fingerprint is derived
    from the canonical ``(default, sorted entries)`` value instead —
    identical on every shard regardless of intern order — and is what the
    ``wire/v1`` codec ships when a label has already been sent to a peer.
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(struct.pack("<q", default))
    for handle, level in entries:
        h.update(struct.pack("<Qq", handle, level))
    return int.from_bytes(h.digest(), "little")


#: Largest small-side operand the ⋆-factoring side conditions will walk
#: when testing star-set disjointness; beyond this the op falls back to
#: exact keys (both operands huge never happens on the OKWS hot path).
_DISJOINT_LIMIT = 128


class InternTable:
    """Hash-conses chunked labels to canonical, id-carrying instances.

    ``intern`` is idempotent and cheap for already-interned labels (one
    attribute test); a first-time intern costs one pass over the label's
    entries to build the canonical key.  Canonical instances are held
    weakly: a label referenced by no live kernel is collectable, and a
    later intern of the same value simply issues a fresh id.

    The table also memoizes each interned label's ⋆-free core (its
    :meth:`~repro.core.chunks.ChunkedLabel.without_stars` projection,
    interned) in a small LRU — cores are what the operation cache keys
    on, and privileged labels are re-split on every message.
    """

    #: Bound on the star-core memo (value = 4 × the default op cache).
    CORE_MEMO_SIZE = 4 * DEFAULT_CACHE_SIZE

    def __init__(self) -> None:
        self._canonical: "weakref.WeakValueDictionary[Tuple[Any, ...], ChunkedLabel]" = (
            weakref.WeakValueDictionary()
        )
        self._cores: "OrderedDict[int, ChunkedLabel]" = OrderedDict()
        #: intern_id → content fingerprint (memo for :meth:`fingerprint`).
        self._fingerprints: Dict[int, int] = {}
        #: fingerprint → canonical label, weak like ``_canonical`` so a
        #: shard that stops talking about a label lets it die.
        self._by_fingerprint: "weakref.WeakValueDictionary[int, ChunkedLabel]" = (
            weakref.WeakValueDictionary()
        )
        #: Labels given a fresh id by this table (intern misses).
        self.interned = 0
        #: Calls that had to build a key (label not already canonical).
        self.lookups = 0

    def intern(self, label: ChunkedLabel) -> ChunkedLabel:
        """Return the canonical instance for *label*'s value."""
        if label.intern_id is not None:
            return label
        self.lookups += 1
        key = (label.default, tuple(label.iter_entries()))
        canonical = self._canonical.get(key)
        if canonical is not None:
            return canonical
        label.intern_id = next(_ids)
        self._canonical[key] = label
        self.interned += 1
        return label

    def intern_label(self, label: Label) -> ChunkedLabel:
        """Intern a plain :class:`~repro.core.labels.Label`."""
        return self.intern(ChunkedLabel.from_label(label))

    # -- cross-process identity (wire/v1) -----------------------------------

    def fingerprint(self, label: ChunkedLabel) -> int:
        """The stable cross-process id of *label* (interning it first).

        Memoized per ``intern_id``; the first call walks the entries once.
        Fingerprinted labels become resolvable via :meth:`from_wire`, so a
        shard can name a label to a peer by id alone once the full body
        has been shipped.
        """
        label = self.intern(label)
        fp = self._fingerprints.get(label.intern_id)
        if fp is None:
            fp = label_fingerprint(label.default, label.iter_entries())
            self._fingerprints[label.intern_id] = fp
            self._by_fingerprint[fp] = label
        return fp

    def from_wire(
        self,
        fingerprint: int,
        default: Optional[int] = None,
        entries: Optional[Iterable[Tuple[int, int]]] = None,
    ) -> ChunkedLabel:
        """Re-intern a label received over the wire.

        With only a *fingerprint*, resolves a label this table has seen
        before (raises ``KeyError`` otherwise — the peer must re-send the
        body).  With a body, builds + interns the label, verifies the
        fingerprint actually matches the content (a corrupt or forged id
        must not poison the table), and registers it for future id-only
        sends.
        """
        got = self._by_fingerprint.get(fingerprint)
        if got is not None:
            return got
        if default is None or entries is None:
            raise KeyError(f"unknown label fingerprint: {fingerprint:#x}")
        label = self.intern(
            ChunkedLabel.from_label(Label(dict(entries), default))
        )
        actual = self.fingerprint(label)
        if actual != fingerprint:
            raise ValueError(
                f"label fingerprint mismatch: wire said {fingerprint:#x}, "
                f"content hashes to {actual:#x}"
            )
        return label

    def star_core(self, label: ChunkedLabel) -> ChunkedLabel:
        """The interned ⋆-free core of an interned *label* (memoized).

        Returns *label* itself when it has no explicit ``*`` entries (or
        a ``*`` default, where explicit stars cannot canonically occur).
        """
        core = label.without_stars()
        if core is label:
            return label
        memo = self._cores.get(label.intern_id)
        if memo is not None:
            self._cores.move_to_end(label.intern_id)
            return memo
        core = self.intern(core)
        self._cores[label.intern_id] = core
        if len(self._cores) > self.CORE_MEMO_SIZE:
            self._cores.popitem(last=False)
        return core

    def __len__(self) -> int:
        return len(self._canonical)


_GLOBAL = InternTable()


def global_intern_table() -> InternTable:
    """The process-wide intern table every interning kernel shares."""
    return _GLOBAL


#: Distinguishes "not cached" from a cached ``False`` verdict.
_MISSING: Any = object()

# Operation tags (first element of every cache key).
_CHECK = 0
_EFFECTS = 1
_RAISE = 2


class CheckPlan(NamedTuple):
    """The ⋆-factored key and exec operands for one ``check_send``.

    ``key`` is what a memo keys the verdict on; ``exec_ops`` is the exact
    operand tuple :func:`repro.core.labelops.check_send` must run on when
    the memo misses (⋆-stripped wherever a factoring applied, full
    otherwise).  ``abstracted`` marks a T4 pin-abstracted key — such keys
    are per-cache artifacts (they name fresh per-connection handles only
    through their levels) and are never compiled into proofs.
    """

    key: Tuple[Any, ...]
    exec_ops: Tuple[ChunkedLabel, ...]
    abstracted: bool


class EffectsPlan(NamedTuple):
    """Key, exec operands, and overlay recipe for ``apply_send_effects``."""

    key: Tuple[Any, ...]
    exec_ops: Tuple[ChunkedLabel, ...]
    qs: ChunkedLabel
    qs_core: ChunkedLabel
    grants: Optional[Set[int]]


class RaisePlan(NamedTuple):
    """Key, exec operands, and overlay recipe for ``raise_receive``."""

    key: Tuple[Any, ...]
    exec_ops: Tuple[ChunkedLabel, ...]
    qr: ChunkedLabel
    qr_core: ChunkedLabel
    masked: Optional[Set[int]]


def overlay_stars(
    table: "InternTable",
    core_result: ChunkedLabel,
    source: ChunkedLabel,
    skip: Optional[Set[int]] = None,
    extra: Optional[Set[int]] = None,
) -> ChunkedLabel:
    """Write *source*'s explicit ``*`` entries back into a result that
    was computed on its ⋆-free core (minus the handles in *skip*, where
    the other operand legitimately overrode the star; plus the handles in
    *extra* — capability grants the stripped operands could not express).

    Deliberately billed to nobody (no OpStats): a kernel that adopted
    the factored representation would *store* ``(core, star set)`` pairs
    and maintain the star set in O(1) at grant/drop time — the
    materialised union only exists so the simulation's labels stay
    bit-comparable with the uncached kernel's (DESIGN.md §11).
    """
    stars = {
        h: STAR
        for h, lvl in source.iter_entries()
        if lvl == STAR and (skip is None or h not in skip)
    }
    if extra is not None:
        for h in extra:
            stars[h] = STAR
    return table.intern(labelops.sparse_update(core_result, stars, None))


def check_plan(
    table: "InternTable",
    es: ChunkedLabel,
    qr: ChunkedLabel,
    dr: ChunkedLabel,
    v: ChunkedLabel,
    pr: ChunkedLabel,
) -> CheckPlan:
    """Plan one memoized ``ES ⊑ (QR ⊔ DR) ⊓ V ⊓ pR`` verdict.

    Interns the operands and applies the T2 star-strip and T4 pin
    abstraction from the module docstring.  Shared by the
    :class:`LabelOpCache`, the proof compiler, and the kernel's
    :class:`~repro.kernel.elide.VerifiedFlowTable`, so a key computed
    offline names exactly the same verdict the live cache would.
    """
    intern = table.intern
    es, qr, dr = intern(es), intern(qr), intern(dr)
    v, pr = intern(v), intern(pr)
    # T2: an ES entry at ⋆ always passes; stripping it reverts the
    # handle to ES's default, which passes too iff the bound
    # min(max(QR, DR), V, pR) stays ≥ that default at the handle.  So
    # the verdict is a pure function of the ⋆-free ES whenever that
    # holds at *every* ES star.  Tested by walking whichever side is
    # smaller — the ES star set, or the explicit entries of the
    # right-hand side plus one comparison at the defaults (the
    # conservative variant).  A capability send against a pinned-low
    # port label (pR(uC) = 0) genuinely depends on the ⋆ and fails
    # both walks: it is checked exactly, uncached.
    es_key = es          # key component for the ES position
    exec_es = es         # what labelops runs on if we miss
    pr_key: Any = pr.intern_id
    abstracted = False
    if es.level_mask & 1 and es.default != STAR:  # bit 0 == STAR present
        e0 = es.default
        qr_ok = min(qr.default, qr.explicit_min) >= e0
        v_ok = min(v.default, v.explicit_min) >= e0
        if qr_ok and v_ok and min(pr.default, pr.explicit_min) >= e0:
            # Global gate: nothing on the right-hand side dips below
            # ES's default anywhere, so every star strips (O(1)).
            es_key = exec_es = table.star_core(es)
        else:
            core = table.star_core(es)
            n_stars = len(es) - len(core)
            if n_stars <= 16:
                if all(
                    lvl != STAR
                    or e0 <= min(max(qr(h), dr(h)), v(h), pr(h))
                    for h, lvl in es.iter_entries()
                ):
                    es_key = exec_es = core
            elif len(qr) + len(dr) + len(v) + len(pr) <= _DISJOINT_LIMIT:
                if e0 <= min(
                    max(qr.default, dr.default), v.default, pr.default
                ) and all(
                    es(h) != STAR
                    or e0 <= min(max(qr(h), dr(h)), v(h), pr(h))
                    for label in (qr, dr, v, pr)
                    for h, _ in label.iter_entries()
                ):
                    es_key = exec_es = core
            if es_key is es and qr_ok and v_ok and pr.default >= e0 and len(pr) <= 8:
                # T4: the capability send that T2 refuses.  When only
                # pR's explicit entries can push the bound below ES's
                # default, a low entry covered by a held ES star (the
                # pinned-port pin, pR(uC) = 0 against ⋆(uC)) is exempt
                # from the check and its fresh handle appears nowhere
                # else the verdict can see — so the verdict is
                # invariant under renaming it.  Key on pR with those
                # pins abstracted to their bare levels (plus ES's
                # core); the miss still computes on the exact full
                # operands.
                high = []
                lows = []
                for h, lvl in pr.iter_entries():
                    if lvl < e0 and es(h) == STAR:
                        lows.append(lvl)
                    else:
                        high.append((h, lvl))
                if lows:
                    es_key = core
                    pr_key = (pr.default, tuple(high), tuple(sorted(lows)))
                    abstracted = True
    key = (
        _CHECK,
        es_key.intern_id,
        qr.intern_id,
        dr.intern_id,
        v.intern_id,
        pr_key,
    )
    return CheckPlan(key, (exec_es, qr, dr, v, pr), abstracted)


def effects_plan(
    table: "InternTable",
    qs: ChunkedLabel,
    es: ChunkedLabel,
    ds: ChunkedLabel,
) -> EffectsPlan:
    """Plan one memoized ``QS ← (QS ⊓ DS) ⊔ (ES ⊓ QS*)`` application."""
    intern = table.intern
    qs, es, ds = intern(qs), intern(es), intern(ds)
    # T1: the receiver's ⋆ entries come back out as ⋆ no matter what
    # ES and DS say there, so compute on the core and overlay.
    qs_core = table.star_core(qs)
    # ES's ⋆ entries are inert too, provided reverting each ⋆ handle
    # to ES's default changes nothing pointwise: at a handle h with
    # ES(h) = *, stripped-vs-full agree iff QS(h) = * (immunity) or
    # ES's default would contaminate past min(QS(h), DS(h)) anyway.
    # The one other case — DS(h) = * too, the capability *grant*,
    # where the full op yields * but the stripped one would
    # contaminate — is factored out instead: the handle joins the
    # star overlay, and the stripped computation runs on what is
    # usually an empty core.  Tested at the defaults for the
    # implicit handles and pointwise at every explicit entry of QS°
    # and DS.
    es_key = es
    grants: Optional[Set[int]] = None
    if es.level_mask & 1 and es.default != STAR:  # bit 0 == STAR present
        e0 = es.default
        safe = qs.default == STAR or e0 <= min(qs.default, ds.default)
        if safe and len(qs_core) + len(ds) <= _DISJOINT_LIMIT:
            ok = True
            for label in (qs_core, ds):
                for h, _ in label.iter_entries():
                    if es(h) != STAR or qs(h) == STAR:
                        continue
                    if ds(h) == STAR:
                        if grants is None:
                            grants = set()
                        grants.add(h)
                    elif e0 > min(qs(h), ds(h)):
                        ok = False
                        break
                if not ok:
                    break
            if ok:
                es_key = table.star_core(es)
            else:
                grants = None
    key = (_EFFECTS, qs_core.intern_id, es_key.intern_id, ds.intern_id)
    return EffectsPlan(key, (qs_core, es_key, ds), qs, qs_core, grants)


def raise_plan(
    table: "InternTable",
    qr: ChunkedLabel,
    dr: ChunkedLabel,
) -> RaisePlan:
    """Plan one memoized ``QR ⊔ DR`` application."""
    intern = table.intern
    qr, dr = intern(qr), intern(dr)
    # T3: QR's ⋆ entries survive the ⊔ verbatim (max(*, DR(h)) = * when
    # DR is * there) and can be overlaid back, provided DR's default is
    # *.  A DR explicit entry *on* a QR star is still fine when it is
    # ≥ QR's default: there the full join yields DR(h), and the core
    # join max(QR.default, DR(h)) reproduces exactly that — the overlay
    # just has to skip the handle instead of forcing it back to ⋆ (this
    # is how a contamination raise punches through a held capability,
    # e.g. netd's ES picking up a taint it holds the ⋆ for).  DR stays
    # exact in the key: dropping one of *its* ⋆ entries would revert
    # that handle to DR's default, which is a different join whenever
    # the default exceeds QR at the handle.
    qr_core = qr
    masked: Optional[Set[int]] = None
    if (
        qr.level_mask & 1
        and qr.default != STAR
        and dr.default == STAR
        and len(dr) <= _DISJOINT_LIMIT
    ):
        q0 = qr.default
        ok = True
        for h, lvl in dr.iter_entries():
            if qr(h) == STAR:
                if lvl >= q0:
                    if masked is None:
                        masked = set()
                    masked.add(h)
                else:
                    ok = False
                    break
        if ok:
            qr_core = table.star_core(qr)
        else:
            masked = None
    key = (_RAISE, qr_core.intern_id, dr.intern_id)
    return RaisePlan(key, (qr_core, dr), qr, qr_core, masked)


def apply_effects_tail(
    table: "InternTable", plan: EffectsPlan, core_result: ChunkedLabel
) -> ChunkedLabel:
    """Rebuild the full ``apply_send_effects`` result from its core."""
    if plan.grants is None:
        if plan.qs_core is plan.qs:
            return core_result
        if core_result is plan.qs_core:
            # Identity effect on the core ⇒ identity on the full label.
            return plan.qs
    return overlay_stars(table, core_result, plan.qs, None, plan.grants)


def apply_raise_tail(
    table: "InternTable", plan: RaisePlan, core_result: ChunkedLabel
) -> ChunkedLabel:
    """Rebuild the full ``raise_receive`` result from its core."""
    if plan.qr_core is plan.qr:
        return core_result
    if plan.masked is None and core_result is plan.qr_core:
        return plan.qr
    return overlay_stars(table, core_result, plan.qr, plan.masked)


class LabelOpCache:
    """Bounded LRU memo for the three Figure 4 hot operations.

    Keys are tuples of interned label ids — with star-heavy operands
    replaced by their ⋆-free cores wherever the factoring theorems in the
    module docstring apply, so per-connection capability churn does not
    defeat the memo.  Values are either a verdict (``check_send``) or a
    canonical interned result label; results computed on cores are
    rebuilt by overlaying the receiver's star set back (a sparse update
    over the live-connection handles, not an O(users) merge).  Because
    interned labels are immutable, a hit is always exact — there is no
    invalidation protocol, only LRU eviction for space.

    Every public method returns ``(result, hit)`` so the kernel can bill
    a flat probe cost for hits and the full operation cost for misses.
    On a miss the underlying :mod:`repro.core.labelops` operation runs
    with the caller's :class:`~repro.core.chunks.OpStats`, so executed
    work stays visible to the cycle model and the metrics — the
    reconciliation invariant is ``hits + misses == lookups`` and
    "operations recorded by OpStats through this cache == misses".
    """

    def __init__(
        self,
        size: int = DEFAULT_CACHE_SIZE,
        table: Optional[InternTable] = None,
    ) -> None:
        if size <= 0:
            raise ValueError(f"cache size must be positive, got {size}")
        self.size = size
        self.table = table if table is not None else global_intern_table()
        self._memo: "OrderedDict[Tuple[Any, ...], Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: The operand tuple the last miss actually ran :mod:`labelops`
        #: on (⋆-stripped wherever a factoring applied).  The kernel's
        #: paper cost model bills misses from these — the executed
        #: operation — rather than the full operands.
        self.last_executed: Optional[Tuple[ChunkedLabel, ...]] = None

    # -- bookkeeping -----------------------------------------------------------

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def __len__(self) -> int:
        return len(self._memo)

    def counters(self) -> Dict[str, int]:
        """Plain-data snapshot for kernel_snapshot / tests."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self._memo),
            "size": self.size,
        }

    def _probe(self, key: Tuple[Any, ...]) -> Any:
        got = self._memo.get(key, _MISSING)
        if got is not _MISSING:
            self._memo.move_to_end(key)
            self.hits += 1
        else:
            self.misses += 1
        return got

    def _store(self, key: Tuple[Any, ...], value: Any) -> None:
        self._memo[key] = value
        if len(self._memo) > self.size:
            self._memo.popitem(last=False)
            self.evictions += 1

    # -- the three Figure 4 hot operations ------------------------------------
    #
    # Each method delegates its ⋆-factored key construction to the
    # module-level plan helpers (shared with the proof compiler and the
    # kernel's VerifiedFlowTable), probes the LRU, and on a miss runs the
    # reference operation on the plan's exec operands.

    def check_send(
        self,
        es: ChunkedLabel,
        qr: ChunkedLabel,
        dr: ChunkedLabel,
        v: ChunkedLabel,
        pr: ChunkedLabel,
        stats: Optional[OpStats] = None,
    ) -> Tuple[bool, bool]:
        """Memoized ``ES ⊑ (QR ⊔ DR) ⊓ V ⊓ pR`` verdict."""
        plan = check_plan(self.table, es, qr, dr, v, pr)
        got = self._probe(plan.key)
        if got is not _MISSING:
            return got, True
        verdict = labelops.check_send(*plan.exec_ops, stats)
        self._store(plan.key, verdict)
        self.last_executed = plan.exec_ops
        return verdict, False

    def apply_send_effects(
        self,
        qs: ChunkedLabel,
        es: ChunkedLabel,
        ds: ChunkedLabel,
        stats: Optional[OpStats] = None,
    ) -> Tuple[ChunkedLabel, bool]:
        """Memoized ``QS ← (QS ⊓ DS) ⊔ (ES ⊓ QS*)`` result (canonical)."""
        plan = effects_plan(self.table, qs, es, ds)
        got = self._probe(plan.key)
        if got is not _MISSING:
            core_result, hit = got, True
        else:
            core_result = self.table.intern(
                labelops.apply_send_effects(*plan.exec_ops, stats)
            )
            self._store(plan.key, core_result)
            self.last_executed = plan.exec_ops
            hit = False
        return apply_effects_tail(self.table, plan, core_result), hit

    def raise_receive(
        self,
        qr: ChunkedLabel,
        dr: ChunkedLabel,
        stats: Optional[OpStats] = None,
    ) -> Tuple[ChunkedLabel, bool]:
        """Memoized ``QR ⊔ DR`` result (canonical interned label).

        Also serves ``ES = PS ⊔ CS`` at send time — the same ⊔, with PS
        in the QR position carrying the sender's ``*`` capabilities.
        """
        plan = raise_plan(self.table, qr, dr)
        got = self._probe(plan.key)
        if got is not _MISSING:
            core_result, hit = got, True
        else:
            core_result = self.table.intern(
                labelops.raise_receive(*plan.exec_ops, stats)
            )
            self._store(plan.key, core_result)
            self.last_executed = plan.exec_ops
            hit = False
        return apply_raise_tail(self.table, plan, core_result), hit
