"""Fused, sparsity-aware kernel label operations.

A series of label operations accompanies every IPC (Section 5.6), and in a
loaded server some of the labels involved are huge — netd's receive label
accumulates one taint-handle entry per user, idd's send label two.  The
naive operators in :mod:`repro.core.chunks` are linear in the *total* size
of their inputs; these fused operations exploit the structure of the
Figure 4 rules so the common case touches only the *small* labels, using:

- **level masks**: each label knows the set of levels occurring among its
  explicit entries, so "would this pointwise function change any entry?"
  is answerable in O(1);
- **chunk-granular copy-on-write**: an update that touches k handles
  rewrites only the chunks containing them and shares the rest, exactly
  the sharing design the paper describes.

The three entry points mirror Figure 4:

- :func:`check_send` — requirement (1): ``ES ⊑ (QR ⊔ DR) ⊓ V ⊓ pR``,
  evaluated pointwise without materialising the right-hand side.
- :func:`apply_send_effects` — ``QS ← (QS ⊓ DS) ⊔ (ES ⊓ QS*)``.
- :func:`raise_receive` — ``QR ← QR ⊔ DR``.

All are exact: a slow full-merge fallback handles every case the sparse
fast path cannot prove safe, and the property-based test suite checks the
fused results against the naive operators on random labels.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Dict, List, Optional, Tuple

from repro.core.chunks import (
    CHUNK_CAPACITY,
    Chunk,
    ChunkedLabel,
    OpStats,
    level_bit,
)
from repro.core.handles import Handle
from repro.core.labels import Label
from repro.core.levels import ALL_LEVELS, L3, STAR, Level


def _star3(level: Level) -> Level:
    """The pointwise form of the stars-only projection L*."""
    return STAR if level == STAR else L3


def _levels_in(label: ChunkedLabel) -> List[Level]:
    """Distinct levels occurring in *label* (explicit entries + default)."""
    mask = label.level_mask | level_bit(label.default)
    return [lvl for lvl in ALL_LEVELS if mask & level_bit(lvl)]


def _explicit_handles(*labels: ChunkedLabel) -> List[Handle]:
    """Sorted union of the labels' explicit handles."""
    handles = set()
    for label in labels:
        for handle, _ in label.iter_entries():
            handles.add(handle)
    return sorted(handles)


# -- requirement (1): the delivery check ------------------------------------------


def check_send(
    es: ChunkedLabel,
    qr: ChunkedLabel,
    dr: ChunkedLabel,
    v: ChunkedLabel,
    pr: ChunkedLabel,
    stats: Optional[OpStats] = None,
) -> bool:
    """Evaluate ``ES ⊑ (QR ⊔ DR) ⊓ V ⊓ pR`` pointwise.

    ``QR`` may be huge (netd's accumulated decontaminations); ``ES``,
    ``DR``, ``V`` and ``pR`` are small in practice.  The QR-only handles
    are covered by a bound test on QR's explicit minimum; only when that
    test is inconclusive do we scan QR.
    """
    if stats is not None:
        stats.operations += 1
    scanned = 0

    def rhs(h: Handle) -> Level:
        return min(max(qr(h), dr(h)), v(h), pr(h))

    # ES entries at * can never violate the check (⋆ is the global
    # minimum), so only its non-star entries need inspection — privileged
    # senders like netd carry one * per user and would otherwise make this
    # loop O(users).
    small = {h for h, _ in es.nonstar_entries()}
    for label in (dr, v, pr):
        small.update(h for h, _ in label.iter_entries())
    small_handles = sorted(small)
    for handle in small_handles:
        scanned += 1
        if es(handle) > rhs(handle):
            if stats is not None:
                stats.entries_scanned += scanned
            return False

    # Default-vs-default (handles explicit nowhere).
    if es.default > min(max(qr.default, dr.default), v.default, pr.default):
        if stats is not None:
            stats.entries_scanned += scanned
        return False

    # Handles explicit only in QR: need
    #   es.default <= min(max(qr(h), dr.default), v.default, pr.default).
    bound = min(v.default, pr.default)
    if es.default <= bound and (
        es.default <= dr.default or es.default <= qr.explicit_min
    ):
        if stats is not None:
            stats.entries_scanned += scanned
            stats.chunks_skipped += len(qr.chunks)
            stats.fast_path += 1
        return True

    if stats is not None:
        stats.full_merges += 1
    for handle, level in qr.iter_entries():
        if handle in small:
            continue
        scanned += 1
        # es(handle) rather than es.default: the handle may be explicit in
        # ES at * (skipped above precisely because * always passes).
        if es(handle) > min(max(level, dr.default), bound):
            if stats is not None:
                stats.entries_scanned += scanned
            return False
    if stats is not None:
        stats.entries_scanned += scanned
    return True


# -- contamination / decontamination effects ------------------------------------------


def apply_send_effects(
    qs: ChunkedLabel,
    es: ChunkedLabel,
    ds: ChunkedLabel,
    stats: Optional[OpStats] = None,
) -> ChunkedLabel:
    """Compute ``(QS ⊓ DS) ⊔ (ES ⊓ QS*)`` — Figure 4's send-label effect.

    Pointwise this is ``f(qs(h), es(h), ds(h))`` with::

        f(q, e, d) = max(min(q, d), min(e, * if q == * else 3))

    i.e. contaminate with ES and grant DS, but a receiver's ``*`` entries
    are immune to contamination.  The fast path applies when the function
    is the identity on every level actually present in QS (checked exactly
    via the level mask) for the *default* levels of ES and DS — then only
    the handles explicit in ES or DS can change, and QS's chunks are
    rewritten copy-on-write at exactly those handles.
    """
    if stats is not None:
        stats.operations += 1

    def f(q: Level, e: Level, d: Level) -> Level:
        return max(min(q, d), min(e, _star3(q)))

    new_default = f(qs.default, es.default, ds.default)

    fast = new_default == qs.default and all(
        # f must be the identity on every level present in QS both for
        # ES's default and for an explicit ES * (skipped-entry) value —
        # the latter matters when DS's default grants below 3.
        f(lvl, es.default, ds.default) == lvl and f(lvl, STAR, ds.default) == lvl
        for lvl in _levels_in(qs)
    )
    if stats is not None:
        if fast:
            stats.fast_path += 1
        else:
            stats.full_merges += 1
    if fast:
        # Only non-star ES entries and explicit DS entries can change the
        # receiver: an ES entry at * contributes min(*, ·) = *, which the
        # ⊔ absorbs (the fast-path precondition already guarantees the
        # identity at every level present in QS, and at QS's default for
        # handles QS leaves implicit).
        touched_set = {h for h, _ in es.nonstar_entries()}
        touched_set.update(h for h, _ in ds.iter_entries())
        touched = sorted(touched_set)
        updates: Dict[Handle, Level] = {}
        changed = False
        for handle in touched:
            if stats is not None:
                stats.entries_scanned += 1
            old = qs(handle)
            new = f(old, es(handle), ds(handle))
            updates[handle] = new
            if new != old:
                changed = True
        if not changed:
            if stats is not None:
                stats.chunks_shared += len(qs.chunks)
            return qs
        return sparse_update(qs, updates, stats)

    # Slow path: full pointwise merge (star entries of ES included — with
    # a changed default they can matter).
    entries: Dict[Handle, Level] = {}
    for handle in set(_explicit_handles(qs, es, ds)):
        if stats is not None:
            stats.entries_scanned += 1
        entries[handle] = f(qs(handle), es(handle), ds(handle))
    return _from_entries(entries, new_default, stats, reuse=(qs,))


def raise_receive(
    qr: ChunkedLabel,
    dr: ChunkedLabel,
    stats: Optional[OpStats] = None,
) -> ChunkedLabel:
    """Compute ``QR ⊔ DR``, sparsely when DR is small (the common case: one
    decontaminate-receive entry per message)."""
    if stats is not None:
        stats.operations += 1
    new_default = max(qr.default, dr.default)
    fast = new_default == qr.default and (
        not qr.chunks or dr.default <= qr.explicit_min
    )
    touched = _explicit_handles(dr)
    if stats is not None:
        if fast:
            stats.fast_path += 1
        else:
            stats.full_merges += 1
    if fast:
        updates: Dict[Handle, Level] = {}
        changed = False
        for handle in touched:
            if stats is not None:
                stats.entries_scanned += 1
            old = qr(handle)
            new = max(old, dr(handle))
            updates[handle] = new
            if new != old:
                changed = True
        if not changed:
            if stats is not None:
                stats.chunks_shared += len(qr.chunks)
            return qr
        return sparse_update(qr, updates, stats)

    entries: Dict[Handle, Level] = {}
    for handle in set(_explicit_handles(qr)) | set(touched):
        if stats is not None:
            stats.entries_scanned += 1
        entries[handle] = max(qr(handle), dr(handle))
    return _from_entries(entries, new_default, stats, reuse=(qr,))


# -- chunk-granular copy-on-write update ------------------------------------------------


def _balanced_runs(
    entries: Sequence[Tuple[Handle, Level]]
) -> List[Tuple[Tuple[Handle, Level], ...]]:
    """Split *entries* into the minimum number of chunk runs, sized evenly."""
    entries = tuple(entries)
    if not entries:
        return []
    n_chunks = -(-len(entries) // CHUNK_CAPACITY)
    base = len(entries) // n_chunks
    extra = len(entries) % n_chunks
    runs: List[Tuple[Tuple[Handle, Level], ...]] = []
    pos = 0
    for i in range(n_chunks):
        size = base + (1 if i < extra else 0)
        runs.append(entries[pos : pos + size])
        pos += size
    return runs


def sparse_update(
    label: ChunkedLabel,
    updates: Dict[Handle, Level],
    stats: Optional[OpStats] = None,
) -> ChunkedLabel:
    """Return *label* with ``label(h) = level`` for each update, rewriting
    only the chunks that contain touched handles and sharing the rest.

    The label's default is unchanged; updates equal to the default are
    normalised away (entry removed).
    """
    if not updates:
        return label
    if not label.chunks:
        entries = {h: lvl for h, lvl in updates.items() if lvl != label.default}
        return _from_entries(entries, label.default, stats, reuse=())

    # Route each updated handle to a chunk index: the chunk whose range
    # contains it, else the nearest chunk to its insertion point.
    los = [chunk.lo for chunk in label.chunks]
    per_chunk: Dict[int, Dict[Handle, Level]] = {}
    for handle, level in updates.items():
        idx = bisect_right(los, handle) - 1
        if idx < 0:
            idx = 0
        per_chunk.setdefault(idx, {})[handle] = level

    new_chunks: List[Chunk] = []
    for idx, chunk in enumerate(label.chunks):
        todo = per_chunk.get(idx)
        if todo is None:
            new_chunks.append(chunk)
            if stats is not None:
                stats.chunks_shared += 1
            continue
        merged: List[Tuple[Handle, Level]] = []
        existing = {h: lvl for h, lvl in chunk.entries}
        if stats is not None:
            stats.entries_scanned += len(chunk.entries)
        existing.update(todo)
        for handle in sorted(existing):
            level = existing[handle]
            if level != label.default:
                merged.append((handle, level))
        # Re-chunk this run.  Overflowing runs split *evenly* — a [64, 1]
        # split would leave a near-empty chunk owning half the handle
        # range, and repeated inserts then fragment the label (B-tree
        # median splits, same reason).
        for run in _balanced_runs(merged):
            if run == chunk.entries:
                new_chunks.append(chunk)
                if stats is not None:
                    stats.chunks_shared += 1
            else:
                new_chunks.append(Chunk(run))
                if stats is not None:
                    stats.chunks_allocated += 1
    if stats is not None:
        stats.labels_allocated += 1
    kept = [c for c in new_chunks if len(c)]
    total = sum(len(c) for c in kept)
    if len(kept) > 3 and total < len(kept) * (CHUNK_CAPACITY // 3):
        # Deletions (capability releases) have fragmented the label;
        # rebalance it wholesale.
        entries = []
        for chunk in kept:
            entries.extend(chunk.entries)
        kept = [Chunk(run) for run in _balanced_runs(entries)]
        if stats is not None:
            stats.chunks_allocated += len(kept)
            stats.entries_scanned += total
    return ChunkedLabel(kept, label.default)


def _from_entries(
    entries: Dict[Handle, Level],
    default: Level,
    stats: Optional[OpStats],
    reuse: Tuple[ChunkedLabel, ...] = (),
) -> ChunkedLabel:
    """Build a chunked label from an entries dict, sharing any chunk from
    *reuse* whose run is reproduced verbatim."""
    pool: Dict[Tuple[Tuple[Handle, Level], ...], Chunk] = {}
    for source in reuse:
        for chunk in source.chunks:
            pool.setdefault(chunk.entries, chunk)
    normalised = tuple(
        (h, entries[h]) for h in sorted(entries) if entries[h] != default
    )
    chunks: List[Chunk] = []
    for i in range(0, len(normalised), CHUNK_CAPACITY):
        run = normalised[i : i + CHUNK_CAPACITY]
        shared = pool.get(run)
        if shared is not None:
            chunks.append(shared)
            if stats is not None:
                stats.chunks_shared += 1
        else:
            chunks.append(Chunk(run))
            if stats is not None:
                stats.chunks_allocated += 1
    if stats is not None:
        stats.labels_allocated += 1
    return ChunkedLabel(chunks, default)


# -- reference implementations (used by tests and the ablation bench) ----------------------


def check_send_reference(
    es: Label, qr: Label, dr: Label, v: Label, pr: Label
) -> bool:
    """Naive Figure 4 requirement (1), via the plain Label operators."""
    return es <= ((qr | dr) & v & pr)


# -- the paper's cost model ------------------------------------------------------
#
# The prototype's label operations are linear in the size of their inputs,
# with exactly one family of short-circuits: the per-label min/max level
# hints ("if L2's maximum level is no larger than L1's minimum level, then
# L1 ⊔ L2 = L1 by definition", Section 5.6).  The fused operations above
# are *our* optimisation — the kind the paper lists as future work ("for
# example when most of a label's handle levels are ⋆").  To reproduce
# Figure 9 faithfully, the kernel charges cycles for the work the paper's
# algorithms would do; the functions below compute those entry counts from
# operand sizes in O(1).  The fused ops still execute (the semantics are
# identical and the Python simulation stays fast); only the *bill* models
# the 2005 implementation.  ``Kernel(label_cost_mode="fused")`` bills the
# fused counts instead — the ablation measured by bench_label_ops.


class _Approx:
    """(size, min, max) abstraction of a label flowing through the
    modelled operator chain.  Result sizes use max() — the operand handle
    sets overlap almost entirely in practice — and the min/max bounds are
    sound in the direction that matters (they may only *enable* extra
    short-circuits, modelling a competent implementation)."""

    __slots__ = ("size", "lo", "hi")

    def __init__(self, size: int, lo: Level, hi: Level):
        self.size = size
        self.lo = lo
        self.hi = hi

    @classmethod
    def of(cls, label: ChunkedLabel) -> "_Approx":
        return cls(len(label), label.min_level, label.max_level)


def _lub_cost(a: _Approx, b: _Approx) -> Tuple[int, _Approx]:
    """(entries scanned, result) for the paper's a ⊔ b; the min/max hint
    skips the merge when one operand dominates the other."""
    if b.hi <= a.lo:
        return 0, a
    if a.hi <= b.lo:
        return 0, b
    merged = _Approx(max(a.size, b.size), max(a.lo, b.lo), max(a.hi, b.hi))
    return a.size + b.size, merged


def _glb_cost(a: _Approx, b: _Approx) -> Tuple[int, _Approx]:
    if b.lo >= a.hi:
        return 0, a
    if a.lo >= b.hi:
        return 0, b
    merged = _Approx(max(a.size, b.size), min(a.lo, b.lo), min(a.hi, b.hi))
    return a.size + b.size, merged


def paper_cost_check_send(
    es: ChunkedLabel,
    qr: ChunkedLabel,
    dr: ChunkedLabel,
    v: ChunkedLabel,
    pr: ChunkedLabel,
) -> int:
    """Entries the 2005 implementation scans for requirements (1) and (4):
    materialise (QR ⊔ DR) ⊓ V ⊓ pR, then compare ES against it.

    ⊑ of a label against a bound whose minimum dominates the label's
    default only inspects the label's own entries (the same min/max hint
    family as ⊔/⊓)."""
    scanned, rhs = _lub_cost(_Approx.of(qr), _Approx.of(dr))
    cost, rhs = _glb_cost(rhs, _Approx.of(v))
    scanned += cost
    cost, rhs = _glb_cost(rhs, _Approx.of(pr))
    scanned += cost
    # Requirement (4): DR ⊑ pR.
    scanned += len(dr)
    if dr.default > pr.min_level:
        scanned += len(pr)
    # ES ⊑ rhs: always scans ES; scans the rhs only when ES's default is
    # not already bounded by the rhs's minimum.
    scanned += len(es)
    if es.default > rhs.lo:
        scanned += rhs.size
    return scanned


def paper_cost_apply_effects(
    qs: ChunkedLabel,
    es: ChunkedLabel,
    ds: ChunkedLabel,
) -> int:
    """Entries scanned for QS ← (QS ⊓ DS) ⊔ (ES ⊓ QS*).

    The stars-only projection has no short-circuit when stars are present
    (the optimisation the paper explicitly defers), so a receiver like
    netd with one ⋆ per user pays O(users) on every delivery."""
    scanned = 0
    if qs.min_level == STAR:
        scanned += len(qs)                       # compute QS* by scanning
        stars = _Approx(len(qs), STAR, L3)
        cost, rhs = _glb_cost(_Approx.of(es), stars)
        scanned += cost
    else:
        rhs = _Approx.of(es)                     # QS* = {3}; ES ⊓ {3} = ES
    cost, t1 = _glb_cost(_Approx.of(qs), _Approx.of(ds))
    scanned += cost
    cost, _ = _lub_cost(t1, rhs)
    scanned += cost
    return scanned


def paper_cost_raise_receive(qr: ChunkedLabel, dr: ChunkedLabel) -> int:
    cost, _ = _lub_cost(_Approx.of(qr), _Approx.of(dr))
    return cost


def apply_send_effects_reference(qs: Label, es: Label, ds: Label) -> Label:
    """Naive Figure 4 send-label effect."""
    return (qs & ds) | (es & qs.stars())


def raise_receive_reference(qr: Label, dr: Label) -> Label:
    return qr | dr
