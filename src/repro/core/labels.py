"""Asbestos labels.

A label is a total function from handles to levels, represented as an
explicit map for finitely many handles plus a *default* level for all
others (paper Section 5.1).  We write labels the way the paper does:
``{h1 0, h2 1, 2}`` maps ``h1`` to 0, ``h2`` to 1 and everything else to 2.

Labels form a lattice under the pointwise order:

- ``L1 <= L2``  iff  ``L1(h) <= L2(h)`` for all handles ``h``  (⊑)
- ``L1 | L2``   is the least upper bound: pointwise max  (⊔)
- ``L1 & L2``   is the greatest lower bound: pointwise min  (⊓)
- ``L.stars()`` is the stars-only projection ``L*``: ``*`` where ``L`` is
  ``*``, ``3`` everywhere else.

Instances are immutable; every operator returns a new label.  Entries equal
to the default level are normalised away so that structurally different
spellings of the same function compare (and hash) equal.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple

from repro.core.handles import HANDLE_SPACE, Handle
from repro.core.levels import (
    L1,
    L2,
    L3,
    STAR,
    Level,
    check_level,
    level_from_wire,
    level_name,
    level_to_wire,
)


class Label:
    """An immutable Asbestos label: finitely many explicit (handle, level)
    entries over a default level.

    >>> u = 42
    >>> lab = Label({u: 3}, default=1)
    >>> lab(u), lab(7)
    (3, 1)
    """

    __slots__ = ("_entries", "_default", "_hash")

    def __init__(self, entries: Optional[Mapping[Handle, Level]] = None, default: Level = L1):
        check_level(default)
        normalised: Dict[Handle, Level] = {}
        if entries:
            for handle, level in entries.items():
                check_level(level)
                if not 0 <= handle < HANDLE_SPACE:
                    raise ValueError(f"handle out of 61-bit range: {handle!r}")
                if level != default:
                    normalised[handle] = level
        self._entries: Dict[Handle, Level] = normalised
        self._default: Level = default
        self._hash: Optional[int] = None

    # -- construction helpers ------------------------------------------------

    @classmethod
    def uniform(cls, default: Level) -> "Label":
        """The constant label ``{default}``."""
        return cls({}, default)

    @classmethod
    def send_default(cls) -> "Label":
        """A fresh process's send label, ``{1}``."""
        return cls({}, L1)

    @classmethod
    def receive_default(cls) -> "Label":
        """A fresh process's receive label, ``{2}``."""
        return cls({}, L2)

    @classmethod
    def bottom(cls) -> "Label":
        """The lowest label ``{*}`` — the identity for contamination (⊔)."""
        return cls({}, STAR)

    @classmethod
    def top(cls) -> "Label":
        """The highest label ``{3}`` — the identity for restriction (⊓)."""
        return cls({}, L3)

    # -- the label-as-function view -------------------------------------------

    def __call__(self, handle: Handle) -> Level:
        """Evaluate the label at *handle* (the paper's ``L(h)``)."""
        return self._entries.get(handle, self._default)

    @property
    def default(self) -> Level:
        """The level assigned to every handle not explicitly listed."""
        return self._default

    def entries(self) -> Iterator[Tuple[Handle, Level]]:
        """Iterate over the explicit (handle, level) entries, sorted by handle."""
        return iter(sorted(self._entries.items()))

    def handles(self) -> Iterator[Handle]:
        """Iterate over explicitly mentioned handles, sorted."""
        return iter(sorted(self._entries))

    def __len__(self) -> int:
        """Number of explicit entries (the label's *size*, which drives the
        linear costs measured in Figure 9)."""
        return len(self._entries)

    def __contains__(self, handle: Handle) -> bool:
        return handle in self._entries

    # -- lattice structure -----------------------------------------------------

    def __le__(self, other: "Label") -> bool:
        """The partial order ⊑: pointwise level comparison.

        Only handles explicit in either label need inspection; all other
        handles compare default-to-default.
        """
        if not isinstance(other, Label):
            return NotImplemented
        if self._default > other._default:
            return False
        for handle, level in self._entries.items():
            if level > other(handle):
                return False
        # Handles explicit only in `other` take self's default on the left.
        for handle, level in other._entries.items():
            if handle not in self._entries and self._default > level:
                return False
        return True

    def __ge__(self, other: "Label") -> bool:
        if not isinstance(other, Label):
            return NotImplemented
        return other.__le__(self)

    # NB: ⊑ is a partial order; L1 < L2 is "dominated and not equal".
    def __lt__(self, other: "Label") -> bool:
        if not isinstance(other, Label):
            return NotImplemented
        return self != other and self <= other

    def __gt__(self, other: "Label") -> bool:
        if not isinstance(other, Label):
            return NotImplemented
        return self != other and self >= other

    def __or__(self, other: "Label") -> "Label":
        """Least upper bound ⊔ (pointwise max) — used to contaminate."""
        if not isinstance(other, Label):
            return NotImplemented
        default = max(self._default, other._default)
        combined: Dict[Handle, Level] = {}
        for handle in set(self._entries) | set(other._entries):
            combined[handle] = max(self(handle), other(handle))
        return Label(combined, default)

    def __and__(self, other: "Label") -> "Label":
        """Greatest lower bound ⊓ (pointwise min) — used to declassify."""
        if not isinstance(other, Label):
            return NotImplemented
        default = min(self._default, other._default)
        combined: Dict[Handle, Level] = {}
        for handle in set(self._entries) | set(other._entries):
            combined[handle] = min(self(handle), other(handle))
        return Label(combined, default)

    def stars(self) -> "Label":
        """The stars-only projection ``L*`` of Figure 3.

        ``L*(h)`` is ``*`` where ``L(h) = *`` and ``3`` otherwise.  In the
        contamination rule (Equation 5), ``ES ⊓ QS*`` protects a receiver's
        ``*`` entries from being overwritten by incoming taint.
        """
        default = STAR if self._default == STAR else L3
        # Every explicit entry maps to * or 3; the Label constructor
        # normalises away whichever equals the result default.
        mapped = {
            h: (STAR if lvl == STAR else L3) for h, lvl in self._entries.items()
        }
        return Label(mapped, default)

    # -- functional updates ----------------------------------------------------

    def with_entry(self, handle: Handle, level: Level) -> "Label":
        """A copy of this label with ``L(handle) = level``."""
        check_level(level)
        updated = dict(self._entries)
        if level == self._default:
            updated.pop(handle, None)
        else:
            updated[handle] = level
        return Label(updated, self._default)

    def without(self, handle: Handle) -> "Label":
        """A copy with *handle* back at the default level."""
        return self.with_entry(handle, self._default)

    def controls(self, handle: Handle) -> bool:
        """True if this (send) label holds ``*`` for *handle*, i.e. the
        process controls — may declassify within — that compartment."""
        return self(handle) == STAR

    # -- wire encoding (Section 5.6 user-space format) --------------------------

    def to_words(self) -> Tuple[int, ...]:
        """Pack into 64-bit words: handle in the upper 61 bits, level wire
        code in the lower 3.  The final word carries handle 0 with the
        default level (a sentinel mirroring the paper's trailing default)."""
        words = [
            (handle << 3) | level_to_wire(level) for handle, level in self.entries()
        ]
        words.append(level_to_wire(self._default))
        return tuple(words)

    @classmethod
    def from_words(cls, words: Iterable[int]) -> "Label":
        """Inverse of :meth:`to_words`."""
        seq = list(words)
        if not seq:
            raise ValueError("empty word sequence has no default level")
        default = level_from_wire(seq[-1] & 0b111)
        entries = {word >> 3: level_from_wire(word & 0b111) for word in seq[:-1]}
        return cls(entries, default)

    # -- value semantics ---------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Label):
            return NotImplemented
        return self._default == other._default and self._entries == other._entries

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self._default, frozenset(self._entries.items())))
        return self._hash

    def __repr__(self) -> str:
        parts = [f"h{handle:x} {level_name(level)}" for handle, level in self.entries()]
        parts.append(level_name(self._default))
        return "{" + ", ".join(parts) + "}"

    def format(self, names: Mapping[Handle, str]) -> str:
        """Pretty-print using symbolic handle names (for examples/docs)."""
        parts = [
            f"{names.get(handle, f'h{handle:x}')} {level_name(level)}"
            for handle, level in self.entries()
        ]
        parts.append(level_name(self._default))
        return "{" + ", ".join(parts) + "}"


#: The default contamination label ``{*}``: adds no contamination (§5.2).
DEFAULT_CONTAMINATION = Label.bottom()
#: The default decontaminate-send label ``{3}``: lowers nothing.
DEFAULT_DECONTAMINATE_SEND = Label.top()
#: The default decontaminate-receive label ``{*}``: raises nothing.
DEFAULT_DECONTAMINATE_RECEIVE = Label.bottom()
#: The default verification label ``{3}``: restricts nothing.
DEFAULT_VERIFY = Label.top()
#: The default port label ``{3}``: no restriction beyond the receive label.
DEFAULT_PORT_LABEL = Label.top()
