"""The 61-bit handle namespace.

Asbestos compartments are named by *handles*, 61-bit numbers (paper
Section 5.1).  Handles double as port names: the port namespace is the
handle value space (Section 5.5), which is what lets labels emulate send
capabilities.

Handle values must be unique since boot and *unpredictable*: the kernel
generates them by encrypting a counter with a 61-bit block cipher, so the
user-visible sequence of handles conveys no information about how many
handles have been created (a covert storage channel otherwise; Section 8).
The paper derives its cipher from Blowfish; we use a small balanced Feistel
network over the 61-bit block, which preserves the properties that matter —
the map is a bijection on [0, 2^61), so values never repeat, and the output
sequence looks unrelated to the counter.

Simply knowing a handle's value confers no privilege; handles are not
self-authenticating.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

#: Handles are 61-bit numbers; a 64-bit word holds a handle plus a 3-bit level.
HANDLE_BITS = 61
HANDLE_SPACE = 1 << HANDLE_BITS

# The Feistel network splits the 61-bit block into a 30-bit left half and a
# 31-bit right half.  An unbalanced split is fine for a Feistel cipher as
# long as the halves swap roles consistently; we alternate round functions
# sized to each half.
_LEFT_BITS = 30
_RIGHT_BITS = 31
_LEFT_MASK = (1 << _LEFT_BITS) - 1
_RIGHT_MASK = (1 << _RIGHT_BITS) - 1
_ROUNDS = 8

Handle = int


def _round_fn(value: int, key: bytes, round_no: int, out_bits: int) -> int:
    """Pseudorandom round function: hash (key, round, value) to out_bits."""
    digest = hashlib.sha256(
        key + round_no.to_bytes(2, "big") + value.to_bytes(8, "big")
    ).digest()
    return int.from_bytes(digest[:8], "big") & ((1 << out_bits) - 1)


def feistel_encrypt(block: int, key: bytes, rounds: int = _ROUNDS) -> int:
    """Encrypt a 61-bit block with an unbalanced Feistel network.

    The construction is a bijection on [0, 2^61): each round XORs one half
    with a keyed hash of the other and swaps, and every step is invertible
    (see :func:`feistel_decrypt`).
    """
    if not 0 <= block < HANDLE_SPACE:
        raise ValueError(f"block out of range for 61-bit cipher: {block!r}")
    left = block >> _RIGHT_BITS  # 30 bits
    right = block & _RIGHT_MASK  # 31 bits
    for rnd in range(rounds):
        if rnd % 2 == 0:
            left ^= _round_fn(right, key, rnd, _LEFT_BITS)
        else:
            right ^= _round_fn(left, key, rnd, _RIGHT_BITS)
    return (left << _RIGHT_BITS) | right


def feistel_decrypt(block: int, key: bytes, rounds: int = _ROUNDS) -> int:
    """Invert :func:`feistel_encrypt` (used only by tests to prove bijectivity)."""
    if not 0 <= block < HANDLE_SPACE:
        raise ValueError(f"block out of range for 61-bit cipher: {block!r}")
    left = block >> _RIGHT_BITS
    right = block & _RIGHT_MASK
    for rnd in reversed(range(rounds)):
        if rnd % 2 == 0:
            left ^= _round_fn(right, key, rnd, _LEFT_BITS)
        else:
            right ^= _round_fn(left, key, rnd, _RIGHT_BITS)
    return (left << _RIGHT_BITS) | right


@dataclass
class HandleAllocator:
    """Allocates unpredictable, non-repeating 61-bit handles.

    A fixed *key* makes an allocator deterministic, which the simulator
    relies on for reproducible experiment runs; distinct keys model
    distinct boots.
    """

    key: bytes = b"asbestos-boot-key"
    _counter: int = field(default=0, repr=False)

    def fresh(self) -> Handle:
        """Return a previously unused handle value."""
        if self._counter >= HANDLE_SPACE:
            raise RuntimeError("61-bit handle space exhausted")
        value = feistel_encrypt(self._counter, self.key)
        self._counter += 1
        return value

    @property
    def allocated(self) -> int:
        """How many handles this allocator has produced (kernel-private)."""
        return self._counter
