"""The Asbestos level set.

Handle privileges are represented by *levels*, members of the ordered set
``[*, 0, 1, 2, 3]`` (paper Section 5.1).  ``*`` (star) is the lowest, most
privileged level: a process whose send label maps handle ``h`` to ``*``
*controls* compartment ``h`` and may declassify data in it.  ``3`` is the
highest, least privileged level.

Levels are plain integers internally.  ``*`` is represented by ``-1`` so
that Python's built-in integer comparison realises the paper's order
``* < 0 < 1 < 2 < 3`` directly; ``min``/``max`` then implement the
greatest-lower-bound and least-upper-bound on levels.

A separate 3-bit *wire encoding* (``*`` = 4) is provided for the packed
64-bit user-space label-entry format of Section 5.6, where the upper 61
bits are the handle value and the lower 3 bits the level.
"""

from __future__ import annotations

# Type alias: levels are small ints.  (An IntEnum would be prettier but
# levels appear on the hottest label-operation paths and raw ints keep
# those paths cheap; the kernel performs millions of comparisons per
# simulated benchmark run.)
Level = int

#: Declassification privilege for a compartment; the lowest level.
STAR: Level = -1
#: Integrity / capability level (below the send default).
L0: Level = 0
#: Default send-label level.
L1: Level = 1
#: Default receive-label level.
L2: Level = 2
#: Full taint; the highest level.
L3: Level = 3

#: Default level of a freshly created process's send label (Section 5.1).
DEFAULT_SEND: Level = L1
#: Default level of a freshly created process's receive label.
DEFAULT_RECEIVE: Level = L2

ALL_LEVELS = (STAR, L0, L1, L2, L3)

_NAMES = {STAR: "*", L0: "0", L1: "1", L2: "2", L3: "3"}

# 3-bit wire encoding used in the packed 64-bit label-entry format.
_WIRE = {STAR: 4, L0: 0, L1: 1, L2: 2, L3: 3}
_UNWIRE = {code: lvl for lvl, code in _WIRE.items()}


def parse_level(value) -> Level:
    """``"*"``/``"0"``…``"3"`` (or an int, ``-1`` for ⋆) → level.

    The one level spelling shared by every declarative surface — topology
    and policy JSON, CLI arguments — so it lives here with the level set
    itself rather than in any one consumer.
    """
    if isinstance(value, bool):
        raise ValueError(f"not a level: {value!r}")
    if isinstance(value, int):
        if value not in ALL_LEVELS:
            raise ValueError(f"not a level: {value!r}")
        return value
    text = str(value).strip()
    if text == "*":
        return STAR
    if text in ("0", "1", "2", "3"):
        return int(text)
    if text == "-1":
        return STAR
    raise ValueError(f"not a level: {value!r}")


def is_level(value: object) -> bool:
    """Return True if *value* is a valid Asbestos level."""
    return isinstance(value, int) and not isinstance(value, bool) and STAR <= value <= L3


def check_level(value: object) -> Level:
    """Validate *value* as a level, returning it; raise ValueError otherwise."""
    if not is_level(value):
        raise ValueError(f"not an Asbestos level: {value!r} (expected one of *, 0, 1, 2, 3)")
    return value  # type: ignore[return-value]


def level_name(level: Level) -> str:
    """Human-readable name for a level: ``*`` or the digit."""
    try:
        return _NAMES[level]
    except KeyError:
        raise ValueError(f"not an Asbestos level: {level!r}") from None


def level_to_wire(level: Level) -> int:
    """Encode a level into its 3-bit wire form (``*`` encodes as 4)."""
    try:
        return _WIRE[level]
    except KeyError:
        raise ValueError(f"not an Asbestos level: {level!r}") from None


def level_from_wire(code: int) -> Level:
    """Decode a 3-bit wire form back into a level."""
    try:
        return _UNWIRE[code]
    except KeyError:
        raise ValueError(f"not a level wire code: {code!r} (expected 0..4)") from None
