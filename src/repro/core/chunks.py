"""The kernel's chunked label representation (paper Section 5.6).

A series of label operations accompanies every IPC, so the in-kernel label
representation dominates both performance and memory use.  The paper's
design, reproduced here:

- a label points to a sorted array of *chunks*;
- each chunk is a sorted array of up to 64 vnode pointers whose low 3 bits
  (free because pointers are 8-byte aligned) encode the level;
- labels and chunks are reference counted and updated copy-on-write, so
  multiple labels can share chunks;
- each chunk (and each label) caches the minimum and maximum of its levels,
  enabling short-circuits such as: if L2's maximum level is no larger than
  L1's minimum level, then ``L1 ⊔ L2 = L1`` by definition.

Worst-case ⊑/⊔/⊓ remain linear in label size — exactly the linear scaling
the paper observes in Figure 9 — and :class:`OpStats` counts the entries
actually touched so the simulator's cycle model charges for real work, not
an analytic estimate.

Memory accounting mirrors the paper's "smallest label is about 300 bytes,
including space for one chunk": a 44-byte label header plus chunks of
16-byte header + 8 bytes per slot, slots allocated in powers of two with a
minimum of 32 (44 + 16 + 32*8 = 316 bytes for the smallest label).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.handles import Handle
from repro.core.labels import Label
from repro.core.levels import L3, STAR, Level

#: Maximum vnode pointers per chunk.
CHUNK_CAPACITY = 64
#: Bytes of per-label bookkeeping (default level, chunk directory, refcount,
#: cached min/max).
LABEL_HEADER_BYTES = 44
#: Bytes of per-chunk bookkeeping (length, capacity, refcount, min/max).
CHUNK_HEADER_BYTES = 16
#: Bytes per vnode-pointer slot.
SLOT_BYTES = 8
#: Smallest slot allocation.
MIN_SLOTS = 32


def _slots_for(count: int) -> int:
    """Power-of-two slot allocation, minimum MIN_SLOTS, maximum CHUNK_CAPACITY."""
    slots = MIN_SLOTS
    while slots < count:
        slots *= 2
    return min(max(slots, MIN_SLOTS), CHUNK_CAPACITY)


@dataclass
class OpStats:
    """Counts the work label operations actually perform.

    The kernel cycle model (``repro.kernel.clock``) converts these counts
    into cycles, which is how Figure 9's "Kernel IPC" series is produced.
    """

    entries_scanned: int = 0
    chunks_skipped: int = 0
    labels_allocated: int = 0
    chunks_allocated: int = 0
    chunks_shared: int = 0
    operations: int = 0
    #: Operations resolved entirely by the min/max (or level-mask) hints —
    #: no pointwise walk of the large operand.  fast_path + full_merges
    #: does not necessarily equal operations: cheap ops like sparse_update
    #: are classified as neither.
    fast_path: int = 0
    #: Operations that fell back to a full pointwise merge/scan.
    full_merges: int = 0

    def merge(self, other: "OpStats") -> None:
        self.entries_scanned += other.entries_scanned
        self.chunks_skipped += other.chunks_skipped
        self.labels_allocated += other.labels_allocated
        self.chunks_allocated += other.chunks_allocated
        self.chunks_shared += other.chunks_shared
        self.operations += other.operations
        self.fast_path += other.fast_path
        self.full_merges += other.full_merges

    def reset(self) -> None:
        self.entries_scanned = 0
        self.chunks_skipped = 0
        self.labels_allocated = 0
        self.chunks_allocated = 0
        self.chunks_shared = 0
        self.operations = 0
        self.fast_path = 0
        self.full_merges = 0


def level_bit(level: Level) -> int:
    """Bit index for a level in a levels-present mask (``*`` is bit 0)."""
    return 1 << (level + 1)


class Chunk:
    """An immutable sorted run of (handle, level) entries, shareable between
    labels via reference counting."""

    __slots__ = ("entries", "min_level", "max_level", "level_mask", "refcount")

    def __init__(self, entries: Tuple[Tuple[Handle, Level], ...]):
        if len(entries) > CHUNK_CAPACITY:
            raise ValueError(f"chunk overflow: {len(entries)} > {CHUNK_CAPACITY}")
        self.entries = entries
        levels = [level for _, level in entries]
        self.min_level: Level = min(levels) if levels else L3
        self.max_level: Level = max(levels) if levels else STAR
        self.level_mask: int = 0
        for level in levels:
            self.level_mask |= level_bit(level)
        self.refcount = 0  # maintained by ChunkedLabel for accounting

    @property
    def lo(self) -> Handle:
        return self.entries[0][0]

    @property
    def hi(self) -> Handle:
        return self.entries[-1][0]

    def memory_bytes(self) -> int:
        return CHUNK_HEADER_BYTES + SLOT_BYTES * _slots_for(len(self.entries))

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:
        return f"<Chunk {len(self.entries)} entries, levels {self.min_level}..{self.max_level}>"


class ChunkedLabel:
    """The kernel-resident form of a :class:`~repro.core.labels.Label`.

    Semantically identical to ``Label``; structurally a sorted tuple of
    shareable chunks.  All operators take an optional :class:`OpStats` to
    record the work done.
    """

    __slots__ = (
        "chunks",
        "default",
        "min_level",
        "max_level",
        "explicit_min",
        "explicit_max",
        "level_mask",
        "_size",
        "_nonstar_cache",
        # Hash-consing support (repro.core.interning): the process-unique
        # id of this label's canonical instance, or None while the label
        # has never been interned.  The weakref slot lets the intern
        # table hold canonical labels without keeping dead kernels'
        # labels alive.
        "intern_id",
        "__weakref__",
    )

    def __init__(self, chunks: Sequence[Chunk], default: Level):
        self.chunks: Tuple[Chunk, ...] = tuple(chunks)
        self.default: Level = default
        # One pass over the chunk directory: refcounts, explicit bounds,
        # level mask, size.  (This constructor runs on every label update
        # in the kernel's hottest path.)
        emin: Level = L3
        emax: Level = STAR
        mask = 0
        size = 0
        for chunk in self.chunks:
            chunk.refcount += 1
            if chunk.min_level < emin:
                emin = chunk.min_level
            if chunk.max_level > emax:
                emax = chunk.max_level
            mask |= chunk.level_mask
            size += len(chunk.entries)
        # Explicit-entry bounds (exclude the default)...
        self.explicit_min: Level = emin
        self.explicit_max: Level = emax
        # ...and whole-function bounds (include it).
        self.min_level: Level = min(emin, default)
        self.max_level: Level = max(emax, default) if self.chunks else default
        # Bitmask of levels occurring explicitly (default not included).
        self.level_mask: int = mask
        self._size = size
        self._nonstar_cache: Optional[Tuple[Tuple[Handle, Level], ...]] = None
        self.intern_id: Optional[int] = None

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_label(cls, label: Label, stats: Optional[OpStats] = None) -> "ChunkedLabel":
        entries = tuple(label.entries())
        chunks = [
            Chunk(entries[i : i + CHUNK_CAPACITY])
            for i in range(0, len(entries), CHUNK_CAPACITY)
        ]
        if stats is not None:
            stats.labels_allocated += 1
            stats.chunks_allocated += len(chunks)
        return cls(chunks, label.default)

    def to_label(self) -> Label:
        entries: Dict[Handle, Level] = {}
        for chunk in self.chunks:
            entries.update(chunk.entries)
        return Label(entries, self.default)

    # -- inspection ---------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __call__(self, handle: Handle) -> Level:
        """Evaluate at *handle* via binary search over chunk ranges."""
        lo, hi = 0, len(self.chunks) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            chunk = self.chunks[mid]
            if handle < chunk.lo:
                hi = mid - 1
            elif handle > chunk.hi:
                lo = mid + 1
            else:
                clo, chi = 0, len(chunk.entries) - 1
                while clo <= chi:
                    cmid = (clo + chi) // 2
                    h, level = chunk.entries[cmid]
                    if handle == h:
                        return level
                    if handle < h:
                        chi = cmid - 1
                    else:
                        clo = cmid + 1
                return self.default
        return self.default

    def iter_entries(self) -> Iterable[Tuple[Handle, Level]]:
        for chunk in self.chunks:
            yield from chunk.entries

    def nonstar_entries(self) -> Tuple[Tuple[Handle, Level], ...]:
        """The explicit entries whose level is not ``*``, cached.

        ``*`` entries are the global minimum: they can never fail a ⊑
        check and never contaminate a receiver, so the hot IPC paths
        iterate only this view.  Privileged servers hold one ``*`` per
        user (netd, idd, ok-dbproxy), making this the difference between
        O(users) and O(1) per message in the simulator.  Labels are
        immutable, so the tuple is computed once; all-star chunks are
        skipped wholesale via their level masks.
        """
        if self._nonstar_cache is None:
            star_bit = level_bit(STAR)
            entries = []
            for chunk in self.chunks:
                if chunk.level_mask == star_bit:
                    continue
                entries.extend(
                    (handle, level) for handle, level in chunk.entries if level != STAR
                )
            self._nonstar_cache = tuple(entries)
        return self._nonstar_cache

    def without_stars(self) -> "ChunkedLabel":
        """This label with its explicit ``*`` entries dropped (those handles
        revert to the default level).

        This is *not* semantically equal to the original label — it is the
        ⋆-free core the interning cache keys on: a privileged server's
        label is a stable core plus a churning set of per-connection ``*``
        capabilities, and the Figure 4 operations either ignore the ``*``
        entries outright or preserve them verbatim (see
        ``repro.core.interning`` for the exact side conditions).  With a
        ``*`` default there is nothing to drop (canonical labels carry no
        explicit entry equal to their default).
        """
        if self.default == STAR or not (self.level_mask & level_bit(STAR)):
            return self
        return _build(self.nonstar_entries(), self.default, None)

    def memory_bytes(self) -> int:
        """Bytes of kernel memory for this label, counting shared chunks in
        full (use :func:`shared_memory_bytes` across a set of labels to
        account sharing)."""
        total = LABEL_HEADER_BYTES
        if not self.chunks:
            # Space for one (empty) chunk is always reserved.
            total += CHUNK_HEADER_BYTES + SLOT_BYTES * MIN_SLOTS
        for chunk in self.chunks:
            total += chunk.memory_bytes()
        return total

    def __repr__(self) -> str:
        return f"<ChunkedLabel {self._size} entries in {len(self.chunks)} chunks, default {self.default}>"

    # -- lattice operations ----------------------------------------------------------

    def leq(self, other: "ChunkedLabel", stats: Optional[OpStats] = None) -> bool:
        """The partial order ⊑, with min/max short-circuits."""
        if stats is not None:
            stats.operations += 1
        # Short-circuit: everything in self at or below everything in other.
        if self.max_level <= other.min_level and self.default <= other.default:
            if stats is not None:
                stats.chunks_skipped += len(self.chunks) + len(other.chunks)
                stats.fast_path += 1
            return True
        if self.default > other.default:
            if stats is not None:
                stats.fast_path += 1
            return False
        if stats is not None:
            stats.full_merges += 1
        scanned = 0
        for handle, level in self.iter_entries():
            scanned += 1
            if level > other(handle):
                if stats is not None:
                    stats.entries_scanned += scanned
                return False
        own_handles = _handle_set(self)
        for handle, level in other.iter_entries():
            scanned += 1
            if handle not in own_handles and self.default > level:
                if stats is not None:
                    stats.entries_scanned += scanned
                return False
        if stats is not None:
            stats.entries_scanned += scanned
        return True

    def lub(self, other: "ChunkedLabel", stats: Optional[OpStats] = None) -> "ChunkedLabel":
        """Least upper bound ⊔ with the paper's short-circuit: if other's
        max level is no larger than self's min level (and defaults agree),
        the result *is* self and no new memory is allocated."""
        if stats is not None:
            stats.operations += 1
        # Sound because min_level/max_level incorporate the default: if
        # every level in `other` (default included) is <= every level in
        # `self` (default included), then other(h) <= self(h) pointwise.
        if other.max_level <= self.min_level:
            if stats is not None:
                stats.chunks_skipped += len(other.chunks)
                stats.chunks_shared += len(self.chunks)
                stats.fast_path += 1
            return self
        if self.max_level <= other.min_level:
            if stats is not None:
                stats.chunks_skipped += len(self.chunks)
                stats.chunks_shared += len(other.chunks)
                stats.fast_path += 1
            return other
        if stats is not None:
            stats.full_merges += 1
        return _merge(self, other, max, stats)

    def glb(self, other: "ChunkedLabel", stats: Optional[OpStats] = None) -> "ChunkedLabel":
        """Greatest lower bound ⊓."""
        if stats is not None:
            stats.operations += 1
        if other.min_level >= self.max_level:
            if stats is not None:
                stats.chunks_skipped += len(other.chunks)
                stats.chunks_shared += len(self.chunks)
                stats.fast_path += 1
            return self
        if self.min_level >= other.max_level:
            if stats is not None:
                stats.chunks_skipped += len(self.chunks)
                stats.chunks_shared += len(other.chunks)
                stats.fast_path += 1
            return other
        if stats is not None:
            stats.full_merges += 1
        return _merge(self, other, min, stats)

    def stars(self, stats: Optional[OpStats] = None) -> "ChunkedLabel":
        """The stars-only projection ``L*``."""
        if stats is not None:
            stats.operations += 1
        if self.min_level > STAR:
            # No stars anywhere: L* is the constant {3}.
            if stats is not None:
                stats.chunks_skipped += len(self.chunks)
            return ChunkedLabel((), L3)
        default = STAR if self.default == STAR else L3
        entries = []
        for handle, level in self.iter_entries():
            if stats is not None:
                stats.entries_scanned += 1
            mapped = STAR if level == STAR else L3
            if mapped != default:
                entries.append((handle, mapped))
        return _build(entries, default, stats)


def _handle_set(label: ChunkedLabel) -> frozenset:
    # Small helper for leq's default-comparison pass.  Cached per call site
    # would be premature; leq over disjoint handle sets is rare in practice.
    return frozenset(handle for handle, _ in label.iter_entries())


def _merge(a: ChunkedLabel, b: ChunkedLabel, combine, stats: Optional[OpStats]) -> ChunkedLabel:
    """Pointwise merge of two chunked labels — the linear-cost path."""
    default = combine(a.default, b.default)
    result: List[Tuple[Handle, Level]] = []
    ai = list(a.iter_entries())
    bi = list(b.iter_entries())
    i = j = 0
    scanned = 0
    while i < len(ai) or j < len(bi):
        scanned += 1
        if j >= len(bi) or (i < len(ai) and ai[i][0] < bi[j][0]):
            handle, level = ai[i]
            merged = combine(level, b.default)
            i += 1
        elif i >= len(ai) or bi[j][0] < ai[i][0]:
            handle, level = bi[j]
            merged = combine(a.default, level)
            j += 1
        else:
            handle = ai[i][0]
            merged = combine(ai[i][1], bi[j][1])
            i += 1
            j += 1
        if merged != default:
            result.append((handle, merged))
    if stats is not None:
        stats.entries_scanned += scanned
    return _build(result, default, stats, reuse_from=(a, b))


def _build(
    entries: Sequence[Tuple[Handle, Level]],
    default: Level,
    stats: Optional[OpStats],
    reuse_from: Tuple[ChunkedLabel, ...] = (),
) -> ChunkedLabel:
    """Re-chunk *entries*, reusing (sharing) any input chunk whose entry run
    is reproduced verbatim — the copy-on-write path of Section 5.6."""
    pool: Dict[Tuple[Tuple[Handle, Level], ...], Chunk] = {}
    for source in reuse_from:
        for chunk in source.chunks:
            pool.setdefault(chunk.entries, chunk)
    chunks: List[Chunk] = []
    entries = tuple(entries)
    for i in range(0, len(entries), CHUNK_CAPACITY):
        run = entries[i : i + CHUNK_CAPACITY]
        shared = pool.get(run)
        if shared is not None:
            chunks.append(shared)
            if stats is not None:
                stats.chunks_shared += 1
        else:
            chunks.append(Chunk(run))
            if stats is not None:
                stats.chunks_allocated += 1
    if stats is not None:
        stats.labels_allocated += 1
    return ChunkedLabel(chunks, default)


def shared_memory_bytes(labels: Iterable[ChunkedLabel]) -> int:
    """Total kernel bytes for a set of labels, counting each shared chunk
    once — how the kernel's memory accountant measures label storage for
    Figure 6."""
    total = 0
    seen = set()
    for label in labels:
        total += LABEL_HEADER_BYTES
        if not label.chunks:
            total += CHUNK_HEADER_BYTES + SLOT_BYTES * MIN_SLOTS
        for chunk in label.chunks:
            if id(chunk) not in seen:
                seen.add(id(chunk))
                total += chunk.memory_bytes()
    return total
