"""Working demonstrations of the Section 8 storage channels.

Both channels move secret bits *despite* the label rules, by modulating
kernel state that less-tainted processes can observe:

- :func:`label_observation_channel` — "labels can be observed through
  lack of communication": a tainted process A transmits bit *i* by
  contaminating heartbeat process B_i; the observer C sees which
  heartbeat stops arriving.  Inherent to any system with run-time
  checking of dynamic labels.
- :func:`yield_order_channel` — the shared program counter: event
  processes of one base process share an execution context (a blocked EP
  blocks them all, Section 6.1), so a tainted EP can modulate *when* an
  untainted sibling's message reaches an observer.

Each function returns ``(sent_bits, received_bits)``; a correct channel
run leaks every bit.  Both consume fresh processes (or event processes)
per bit — the property that makes fork-rate limiting
(:class:`~repro.covert.mitigation.ForkRateLimiter`) an effective
mitigation, demonstrated in the tests and in ``examples/covert_channels.py``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.labels import Label
from repro.core.levels import L1, L2, L3
from repro.kernel.errors import ResourceExhausted
from repro.kernel.kernel import Kernel
from repro.kernel.syscalls import (
    ChangeLabel,
    EpCheckpoint,
    EpYield,
    NewHandle,
    NewPort,
    Recv,
    Send,
    SetPortLabel,
    Spawn,
)

__all__ = ["label_observation_channel", "yield_order_channel"]


def label_observation_channel(
    bits: Sequence[int],
    kernel: Optional[Kernel] = None,
) -> Tuple[List[int], List[int]]:
    """Run the heartbeat channel for *bits*; returns (sent, received).

    Uses "partial taint" at level 2 (Section 5.2's permissive default) so
    the tainted sender can still contaminate default-labelled processes;
    the observer C explicitly lowers its receive label to ``{h 1, 2}`` so
    contaminated heartbeats stop reaching it.  Each bit burns a fresh
    pair of heartbeat processes — a contaminated B is spent.

    If a fork limiter denies the B-pair spawns mid-run, the channel stops
    and the received list is truncated: quantifying exactly how the
    mitigation bounds leaked bits.
    """
    kernel = kernel if kernel is not None else Kernel()
    sent = [1 if b else 0 for b in bits]
    received: List[int] = []

    def b_body(ctx):
        # Announce, wait for go (and possibly a taint beforehand), then
        # heartbeat to C.
        port = yield NewPort()
        yield SetPortLabel(port, Label.top())
        yield Send(ctx.env["orch_port"], {"type": "B_READY", "who": ctx.env["who"], "port": port})
        while True:
            msg = yield Recv(port=port)
            if msg.payload.get("type") == "GO":
                yield Send(ctx.env["c_port"], {"type": "BEAT", "who": ctx.env["who"], "round": msg.payload["round"]})
                yield Send(ctx.env["orch_port"], {"type": "B_DONE", "who": ctx.env["who"]})
            # TAINT messages need no action: delivery alone contaminates.

    def a_body(ctx):
        # The secret holder: self-contaminated with h at level 2.
        h = ctx.env["h"]
        yield ChangeLabel(send=Label({h: L2}, L1))
        port = yield NewPort()
        yield SetPortLabel(port, Label.top())
        # The self-contamination leaking onto the orchestrator is the
        # covert channel under study.  # asblint: ignore[taint-creep]
        yield Send(ctx.env["orch_port"], {"type": "A_READY", "port": port})
        while True:
            msg = yield Recv(port=port)
            # Transmit one bit: contaminate the chosen heartbeater.
            target = msg.payload["b_ports"][msg.payload["bit"]]
            yield Send(target, {"type": "TAINT"})
            yield Send(ctx.env["orch_port"], {"type": "A_DONE"})

    def c_body(ctx):
        # The observer: refuses h-contaminated traffic outright.
        h = ctx.env["h"]
        yield ChangeLabel(receive=Label({h: L1}, L2))
        port = yield NewPort()
        yield SetPortLabel(port, Label.top())
        yield Send(ctx.env["orch_port"], {"type": "C_READY", "port": port})
        while True:
            seen = []
            while True:
                msg = yield Recv(port=port)
                if msg.payload.get("type") == "ROUND_DONE":
                    break
                if msg.payload.get("type") == "BEAT":
                    seen.append(msg.payload["who"])
            # The missing heartbeat is the transmitted bit.
            bit = 0 if 0 not in seen else 1 if 1 not in seen else -1
            yield Send(ctx.env["orch_port"], {"type": "OBSERVED", "bit": bit})

    def orch_body(ctx):
        h = yield NewHandle()
        port = yield NewPort()
        yield SetPortLabel(port, Label.top())
        # We hold h ⋆, so we may accept arbitrarily h-tainted acks.
        yield ChangeLabel(raise_receive={h: L3})
        yield Spawn(c_body, name="C", env={"orch_port": port, "h": h})
        c_ready = yield Recv(port=port)
        c_port = c_ready.payload["port"]
        yield Spawn(a_body, name="A", env={"orch_port": port, "h": h})
        a_ready = yield Recv(port=port)
        a_port = a_ready.payload["port"]

        observed: List[int] = []
        for round_no, bit in enumerate(sent):
            b_ports = {}
            try:
                for who in (0, 1):
                    yield Spawn(
                        b_body,
                        name=f"B{who}-{round_no}",
                        env={"orch_port": port, "c_port": c_port, "who": who},
                    )
            except ResourceExhausted:
                # Fork limiting: the channel is cut off here.
                break
            for _ in range(2):
                msg = yield Recv(port=port)
                b_ports[msg.payload["who"]] = msg.payload["port"]
            # A contaminates the chosen B...
            yield Send(a_port, {"type": "XMIT", "bit": bit, "b_ports": b_ports})
            yield Recv(port=port)  # A_DONE
            # ...then both Bs heartbeat.
            for who in (0, 1):
                yield Send(b_ports[who], {"type": "GO", "round": round_no})
            done = 0
            while done < 2:
                msg = yield Recv(port=port)
                if msg.payload.get("type") == "B_DONE":
                    done += 1
            yield Send(c_port, {"type": "ROUND_DONE"})
            msg = yield Recv(port=port)  # OBSERVED
            observed.append(msg.payload["bit"])
        ctx.env["observed"] = observed

    orch = kernel.spawn(orch_body, "orchestrator")
    kernel.run()
    received = orch.env.get("observed", [])
    return sent, received


def yield_order_channel(
    bits: Sequence[int],
    kernel: Optional[Kernel] = None,
) -> Tuple[List[int], List[int]]:
    """The shared-program-counter channel (Section 8).

    A worker hosts two event processes: T (tainted, knows the secret) and
    U (untainted heartbeater).  Event-process execution states are not
    isolated — a blocked EP blocks the whole process — so T transmits a
    bit by either blocking the process (bit 1) or yielding immediately
    (bit 0) before U's heartbeat is serviced.  The observer C, which can
    never receive anything from T, reads each bit from whether U's
    heartbeat beats a reference marker that routes around the worker.
    """
    kernel = kernel if kernel is not None else Kernel()
    sent = [1 if b else 0 for b in bits]

    def worker_body(ctx):
        base = yield NewPort()
        yield SetPortLabel(base, Label.top())
        yield Send(ctx.env["orch_port"], {"type": "W_READY", "port": base})

        def event_body(ectx, msg):
            role = msg.payload["role"]
            my_port = yield NewPort()
            yield SetPortLabel(my_port, Label.top())
            if role == "T":
                # The secret holder: contaminate ourselves so nothing we
                # send can ever reach C directly, and set up the port we
                # stall on.
                stall_port = yield NewPort()
                yield SetPortLabel(stall_port, Label.top())
                yield ChangeLabel(send=Label({ectx.env["h"]: L3}, L1))
                # Deliberate: T's taint spreading to the orchestrator is
                # the timing channel itself.  # asblint: ignore[taint-creep]
                yield Send(
                    ectx.env["orch_port"],
                    {"type": "EP_READY", "role": role, "port": my_port, "stall": stall_port},
                )
                msg = yield EpYield()
                while True:
                    round_no = msg.payload["round"]
                    if msg.payload.get("bit"):
                        # Bit 1: block the *whole process* (execution
                        # states are not isolated, Section 6.1) until this
                        # round's release arrives.
                        while True:
                            release = yield Recv(port=stall_port)
                            if release.payload.get("round") == round_no:
                                break
                    msg = yield EpYield()
            else:
                yield Send(
                    ectx.env["orch_port"],
                    {"type": "EP_READY", "role": role, "port": my_port},
                )
                msg = yield EpYield()
                while True:
                    yield Send(
                        ectx.env["c_port"],
                        {"type": "BEAT", "round": msg.payload["round"]},
                    )
                    msg = yield EpYield()

        yield EpCheckpoint(event_body)

    def relay_body(ctx):
        # An untainted forwarding hop; gives the scheduler the slack that
        # makes the worker's stall (or lack of it) observable as ordering.
        port = yield NewPort()
        yield SetPortLabel(port, Label.top())
        yield Send(ctx.env["orch_port"], {"type": "R_READY", "who": ctx.env["who"], "port": port})
        while True:
            msg = yield Recv(port=port)
            for target, payload in msg.payload["forward"]:
                yield Send(target, payload)

    def c_body(ctx):
        port = yield NewPort()
        yield SetPortLabel(port, Label.top())
        yield Send(ctx.env["orch_port"], {"type": "C_READY", "port": port})
        while True:
            first = yield Recv(port=port)
            second = yield Recv(port=port)
            # Marker before heartbeat means the worker was stalled: bit 1.
            bit = 1 if first.payload["type"] == "MARK" else 0
            yield Send(ctx.env["orch_port"], {"type": "OBSERVED", "bit": bit})

    def orch_body(ctx):
        h = yield NewHandle()
        port = yield NewPort()
        yield SetPortLabel(port, Label.top())
        # We hold h ⋆: accept the tainted EP's announcements.
        yield ChangeLabel(raise_receive={h: L3})
        yield Spawn(c_body, name="C", env={"orch_port": port})
        c_port = (yield Recv(port=port)).payload["port"]
        yield Spawn(worker_body, name="W", env={"orch_port": port, "c_port": c_port, "h": h})
        wport = (yield Recv(port=port)).payload["port"]
        relays = {}
        for who in (1, 2):
            yield Spawn(relay_body, name=f"R{who}", env={"orch_port": port, "who": who})
            msg = yield Recv(port=port)
            relays[msg.payload["who"]] = msg.payload["port"]
        # Create the two event processes.
        yield Send(wport, {"role": "T"})
        t_ready = (yield Recv(port=port)).payload
        t_port, stall_port = t_ready["port"], t_ready["stall"]
        yield Send(wport, {"role": "U"})
        u_port = (yield Recv(port=port)).payload["port"]

        observed: List[int] = []
        for round_no, bit in enumerate(sent):
            # T gets the bit (and may stall the whole worker); U's
            # heartbeat request is next in the worker's queue; the marker
            # takes the two-relay detour, arriving at C after U's
            # heartbeat iff the worker was not stalled.  The release rides
            # behind the marker so a stalled worker resumes afterwards.
            yield Send(t_port, {"bit": bit, "round": round_no})
            yield Send(u_port, {"round": round_no})
            yield Send(
                relays[1],
                {
                    "forward": [
                        (
                            relays[2],
                            {
                                "forward": [
                                    (c_port, {"type": "MARK", "round": round_no}),
                                    (stall_port, {"type": "RELEASE", "round": round_no}),
                                ]
                            },
                        )
                    ]
                },
            )
            msg = yield Recv(port=port)
            observed.append(msg.payload["bit"])
        ctx.env["observed"] = observed

    orch = kernel.spawn(orch_body, "orchestrator")
    kernel.run()
    return sent, orch.env.get("observed", [])
