"""Mitigating the Section 8 storage channels by limiting process creation.

Both inherent storage channels — label observation and shared program
counters — require at least two cooperating processes *per transmitted
bit* (contaminated processes cannot be reused).  Asbestos's design
therefore anticipates a hardened kernel limiting process creation rates;
:class:`ForkRateLimiter` is that hook, installable as
``kernel.fork_limiter``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class ForkRateLimiter:
    """A per-parent spawn budget.

    The budget is deliberately simple (a hardened kernel would use a
    replenishing rate); what matters for the covert-channel argument is
    that the attacker's cost is *processes per bit*, so any cap on
    process creation caps the channel's total capacity.
    """

    budget: int = 16
    spent: Dict[str, int] = field(default_factory=dict)
    denied: int = 0

    def __call__(self, parent) -> bool:
        used = self.spent.get(parent.key, 0)
        if used >= self.budget:
            self.denied += 1
            return False
        self.spent[parent.key] = used + 1
        return True
