"""The storage channels of paper Section 8, and their mitigation.

Asbestos aims not to eliminate covert channels but to ensure exploiting a
storage channel requires *at least two cooperating processes*, so that a
hardened kernel can mitigate them by limiting process creation rates.
This package demonstrates both inherent channels working, and the
fork-rate mitigation cutting them off.
"""

from repro.covert.channels import (
    label_observation_channel,
    yield_order_channel,
)
from repro.covert.mitigation import ForkRateLimiter

__all__ = ["label_observation_channel", "yield_order_channel", "ForkRateLimiter"]
