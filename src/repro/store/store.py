"""The labeled store: a :class:`~repro.db.engine.Database` backed by a
``wal/v1`` write-ahead log.

ok-dbproxy owns all persistent user data in the OKWS port (paper Section
7); when :class:`~repro.kernel.config.KernelConfig` carries a
``store_path`` the proxy routes every write through a
:class:`LabeledStore` instead of mutating its in-memory tables directly.
The store appends ``begin``/``write``/``commit`` records *after* the
engine has validated and applied the statement — a statement the engine
rejects never reaches the log, so an uncommitted transaction in the log
can only mean one thing: the process crashed between ``begin`` and
``commit``.

Recovery (:func:`replay_image`) replays the log against an empty engine:

1. the torn tail — any prefix of the final record a crash left behind —
   is identified by :func:`repro.store.wal.scan` and discarded;
2. ``checkpoint`` records reset the replayed state to their snapshot;
3. ``write`` records of *committed* transactions are re-executed in log
   order; writes of uncommitted transactions are discarded;
4. every resurrected write is label-checked against the security facts
   persisted with it (owner, taint-handle set, declassification proof).
   A write that claims public ownership while carrying taint it never
   declassified is an IFC violation: applying it would resurrect rows
   with *weaker* taint than they were written with.  Strict recovery
   (the default) repairs by skipping the write and recording the
   violation in the :class:`RecoveryReport`.

``label_check=False`` selects the deliberately *broken* recovery — a
naive redo that trusts the log and applies every scanned write,
committed or not, unchecked.  It exists only as a target for
``repro crashcheck`` (and its CI job), which must be able to catch a
recovery that skips the label check.

Crash injection hooks in at the single choke point all log bytes pass
through: :meth:`LabeledStore._append` consults an ``io_hook`` before
each append.  When the hook fires (a ``crash_at_io`` fault rule), the
store writes only the first ``torn_bytes`` of the record, snapshots the
whole file image to ``<path>.crash`` — preserving the exact bytes a real
power failure would leave, before any later recovery truncates them —
and raises :class:`StoreCrash` to kill the owning process.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.db import sql as S
from repro.db.engine import Database, Result, Table
from repro.store import wal
from repro.store.wal import RowTaint

#: Owner ID of public (declassified or administrative) rows; matches
#: ``repro.servers.dbproxy.PUBLIC_USER_ID`` (kept literal here so the
#: store never imports the server).
PUBLIC_OWNER = 0

#: Cycle billing for one log append (base + per-byte), charged through
#: the owning process's ``compute`` hook so fig9's durability-overhead
#: series has a simulated cost, not just a wall-clock one.
APPEND_BASE_CYCLES = 12_000
APPEND_BYTE_CYCLES = 30


class StoreCrash(RuntimeError):
    """An injected crash at a log-append boundary (``crash_at_io``)."""


class StoreError(RuntimeError):
    """A store-level invariant failure that is not a torn tail."""


@dataclass(frozen=True)
class LabelViolation:
    """One write record that failed the recovery label check."""

    tx: int
    table: str
    reason: str

    def to_json(self) -> Dict[str, Any]:
        return {"tx": self.tx, "table": self.table, "reason": self.reason}


@dataclass
class RecoveryReport:
    """What one recovery pass saw and did."""

    records: int = 0
    clean_bytes: int = 0
    torn_bytes: int = 0
    committed_txs: int = 0
    discarded_txs: int = 0
    applied_writes: int = 0
    skipped_writes: int = 0
    checkpoints_used: int = 0
    label_check: bool = True
    violations: List[LabelViolation] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return self.torn_bytes == 0 and not self.violations and self.discarded_txs == 0

    def to_json(self) -> Dict[str, Any]:
        return {
            "records": self.records,
            "clean_bytes": self.clean_bytes,
            "torn_bytes": self.torn_bytes,
            "committed_txs": self.committed_txs,
            "discarded_txs": self.discarded_txs,
            "applied_writes": self.applied_writes,
            "skipped_writes": self.skipped_writes,
            "checkpoints_used": self.checkpoints_used,
            "label_check": self.label_check,
            "violations": [v.to_json() for v in self.violations],
        }


def policy_problem(payload: Dict[str, Any]) -> Optional[str]:
    """The recovery label check for one ``write`` record.

    Returns a reason string when applying the record would resurrect
    rows with weaker taint than the security facts persisted with the
    write justify, else ``None``.  The rules mirror what ok-dbproxy
    enforced when it first executed the statement:

    - a public-owner write either carries no taint (administrative) or
      proves declassification (``declass`` — the writer held ``V(uT)=⋆``);
    - a declassified write must name the compartment it declassified;
    - a private-owner write must carry its compartment's taint — a
      private row with no persisted taint would recover unreadable or,
      worse, be re-published by a later repair.
    """
    owner = payload["owner"]
    taint = payload["taint"]
    declass = payload["declass"]
    if declass:
        if taint is None:
            return "declassified write names no taint compartment"
        if owner != PUBLIC_OWNER:
            return "declassified write retains a private owner"
        return None
    if owner == PUBLIC_OWNER:
        if taint is not None:
            return (
                "tainted write stored with public owner but no "
                "declassification proof"
            )
        return None
    if taint is None:
        return "private write persisted without its taint compartment"
    return None


@dataclass
class ReplayState:
    """The outcome of :func:`replay_image`: a rebuilt engine, the
    per-owner taint metadata, and the recovery report."""

    db: Database
    taints: Dict[int, RowTaint]
    report: RecoveryReport
    next_tx: int


def replay_image(data: bytes, label_check: bool = True) -> ReplayState:
    """Rebuild store state from a log image (the recovery protocol).

    Pure — no file I/O — so the offline crash-consistency checker can
    run the *same* recovery code against thousands of crash-point
    prefixes that :class:`LabeledStore` runs at open."""
    scanned = wal.scan(data)
    report = RecoveryReport(
        records=len(scanned.records),
        clean_bytes=scanned.clean_bytes,
        torn_bytes=scanned.torn_bytes,
        label_check=label_check,
    )
    committed = {r.tx for r in scanned.records if r.type == "commit"}
    begun = {r.tx for r in scanned.records if r.type == "begin"}
    report.committed_txs = len(committed)
    report.discarded_txs = len(begun - committed)
    db = Database()
    taints: Dict[int, RowTaint] = {}
    max_tx = 0
    for record in scanned.records:
        tx = record.tx
        if tx is not None:
            max_tx = max(max_tx, tx)
        if record.type == "checkpoint":
            db, taints = _load_checkpoint(record.payload)
            report.checkpoints_used += 1
            continue
        if record.type != "write":
            continue
        payload = record.payload
        problem = policy_problem(payload)
        if label_check:
            if tx not in committed:
                report.skipped_writes += 1
                continue
            if problem is not None:
                # Repair: refuse to resurrect the row, keep the evidence.
                report.violations.append(
                    LabelViolation(
                        tx=tx or 0,
                        table=payload["stmt"].get("table", "?"),
                        reason=problem,
                    )
                )
                report.skipped_writes += 1
                continue
        # label_check=False is the deliberately broken naive redo: apply
        # every scanned write, committed or not, policy or no policy.
        ast = wal.stmt_from_json(payload["stmt"])
        try:
            db.run(ast, tuple(payload["params"]))
        except S.SqlError:
            # A write the engine now rejects (e.g. an uncommitted
            # CREATE applied twice under naive redo) cannot be redone.
            report.skipped_writes += 1
            continue
        report.applied_writes += 1
        taint = RowTaint.from_json(payload["taint"])
        owner = payload["owner"]
        if taint is not None and owner != PUBLIC_OWNER:
            taints[owner] = taint
    return ReplayState(db=db, taints=taints, report=report, next_tx=max_tx + 1)


def _load_checkpoint(payload: Dict[str, Any]) -> Tuple[Database, Dict[int, RowTaint]]:
    if payload.get("schema") != wal.SCHEMA:
        raise wal.WalError(
            f"checkpoint schema {payload.get('schema')!r} is not {wal.SCHEMA!r}"
        )
    db = Database()
    for name in sorted(payload["tables"]):
        doc = payload["tables"][name]
        columns = tuple((n, t) for n, t in doc["columns"])
        db.tables[name] = Table(name, columns, [dict(row) for row in doc["rows"]])
    taints: Dict[int, RowTaint] = {}
    for uid, doc in payload["taints"].items():
        taint = RowTaint.from_json(doc)
        if taint is not None:
            taints[int(uid)] = taint
    return db, taints


class LabeledStore:
    """A write-ahead-logged :class:`~repro.db.engine.Database`.

    Reads go straight to :attr:`db` (SELECT is never logged); writes go
    through :meth:`apply`/:meth:`bulk_insert`, which run the engine
    first and then make the transaction durable.  Opening a path with an
    existing log recovers it (torn tail truncated, committed
    transactions replayed, every write label-checked) and leaves the
    report in :attr:`report`.

    Hooks — all optional, all owned by the embedding process:

    - ``io_hook(nbytes) -> Optional[int]``: consulted before each
      append; a non-``None`` return is an injected crash leaving that
      many torn bytes (``repro.faults`` ``crash_at_io``);
    - ``compute(cycles)``: cycle billing for log I/O;
    - ``metrics``: a :class:`~repro.obs.metrics.MetricsRegistry` scope
      (e.g. ``kernel.store``) for the counters below.
    """

    def __init__(
        self,
        path: str,
        io_hook: Optional[Callable[[int], Optional[int]]] = None,
        compute: Optional[Callable[[int], None]] = None,
        metrics: Any = None,
        label_check: bool = True,
    ) -> None:
        self.path = path
        self._io_hook = io_hook
        self._compute = compute
        self._metrics = metrics
        existed = os.path.exists(path)
        data = b""
        if existed:
            with open(path, "rb") as handle:
                data = handle.read()
        state = replay_image(data, label_check=label_check)
        self.db = state.db
        self.taints = state.taints
        self.report = state.report
        self._next_tx = state.next_tx
        if self.report.torn_bytes:
            # Truncate the torn tail so new appends frame contiguously
            # with the durable prefix.
            with open(path, "r+b") as handle:
                handle.truncate(self.report.clean_bytes)
        self._fh = open(path, "ab")
        if self._metrics is not None and existed:
            self._metrics.counter("recoveries").inc()
            self._metrics.counter("recovered_txs").inc(self.report.committed_txs)
            self._metrics.counter("discarded_txs").inc(self.report.discarded_txs)
            if self.report.violations:
                self._metrics.counter("label_violations").inc(
                    len(self.report.violations)
                )

    # -- write path ----------------------------------------------------------------

    def apply(
        self,
        ast: S.Statement,
        params: Tuple[Any, ...] = (),
        owner: int = PUBLIC_OWNER,
        taint: Optional[RowTaint] = None,
        declass: bool = False,
    ) -> Result:
        """Execute one write statement and make it durable as a
        single-statement transaction.  The engine runs first: a rejected
        statement (``SqlError``) leaves no trace in the log."""
        result = self.db.run(ast, params)
        tx = self._next_tx
        self._next_tx += 1
        self._append(wal.frame(wal.begin_record(tx)))
        self._append(
            wal.frame(wal.write_record(tx, ast, tuple(params), owner, taint, declass))
        )
        self._append(wal.frame(wal.commit_record(tx)))
        self._note_commit(owner, taint)
        return result

    def bulk_insert(
        self, table: str, rows: List[Dict[str, Any]], owner_column: str = "_user_id"
    ) -> int:
        """Insert pre-built rows as one transaction of fully-bound
        ``write`` records (the ok-dbproxy ``BULK_INSERT`` path)."""
        tbl = self.db.tables.get(table)
        if tbl is None:
            raise S.SqlError(f"no such table: {table!r}")
        columns = tbl.column_names
        asts = []
        for row in rows:
            asts.append(
                S.Insert(
                    table,
                    columns,
                    tuple(row.get(column) for column in columns),
                )
            )
        for ast in asts:  # engine first: validate the whole batch
            self.db.run(ast)
        tx = self._next_tx
        self._next_tx += 1
        self._append(wal.frame(wal.begin_record(tx)))
        for ast, row in zip(asts, rows):
            owner = row.get(owner_column, PUBLIC_OWNER) or PUBLIC_OWNER
            self._append(
                wal.frame(wal.write_record(tx, ast, (), owner, None, False))
            )
        self._append(wal.frame(wal.commit_record(tx)))
        self._count("commits")
        return len(rows)

    def checkpoint(self) -> None:
        """Append a full-state snapshot.  Append-only — the log is never
        rewritten, so a torn checkpoint tail degrades to replaying the
        records before it, never to losing them."""
        tables = {
            name: {
                "columns": [list(c) for c in tbl.columns],
                "rows": [dict(row) for row in tbl.rows],
            }
            for name, tbl in sorted(self.db.tables.items())
        }
        taints = {uid: t.to_json() for uid, t in sorted(self.taints.items())}
        self._append(wal.frame(wal.checkpoint_record(tables, taints)))
        self._count("checkpoints")

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    # -- internals ------------------------------------------------------------------

    def _note_commit(self, owner: int, taint: Optional[RowTaint]) -> None:
        if taint is not None and owner != PUBLIC_OWNER:
            self.taints[owner] = taint
        self._count("commits")

    def _append(self, data: bytes) -> None:
        if self._compute is not None:
            self._compute(APPEND_BASE_CYCLES + APPEND_BYTE_CYCLES * len(data))
        if self._io_hook is not None:
            torn = self._io_hook(len(data))
            if torn is not None:
                torn = max(0, min(int(torn), len(data) - 1))
                if torn:
                    self._fh.write(data[:torn])
                self._fh.flush()
                self._crash_snapshot()
                self._fh.close()
                raise StoreCrash(
                    f"injected crash at log append ({torn}/{len(data)} bytes durable)"
                )
        self._fh.write(data)
        self._fh.flush()
        self._count("appends")
        self._count("bytes", len(data))

    def _crash_snapshot(self) -> None:
        """Freeze the exact post-crash file image beside the log.

        The supervised restart's recovery truncates the torn tail in
        place; without this snapshot the bytes the crash actually left
        would be unobservable, and ``crashcheck --replay`` could not
        prove byte-identity against its offline prefix."""
        os.fsync(self._fh.fileno())
        with open(self.path, "rb") as handle:
            image = handle.read()
        with open(self.path + ".crash", "wb") as handle:
            handle.write(image)

    def _count(self, name: str, amount: int = 1) -> None:
        if self._metrics is not None:
            self._metrics.counter(name).inc(amount)


def image_digest(data: bytes) -> str:
    """SHA-256 of a log image; the identity ``crashcheck`` plans carry."""
    return hashlib.sha256(data).hexdigest()
