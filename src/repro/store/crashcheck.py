"""The crash-consistency checker behind ``python -m repro crashcheck``.

Mosaic-style (``fs-crash.py`` / ``xv6-log.py``) exhaustive checking of
the labeled store's recovery protocol:

1. **Record** one OKWS write workload against a store-backed site (the
   bulletin-board example: private drafts by two users, then a
   declassifying publish as the final transaction) and keep the clean
   ``wal/v1`` image.
2. **Enumerate** every crash point of that image: every record boundary
   (the crash landed between appends) and every torn-tail prefix — each
   byte offset inside every record, which is what a crash mid-append can
   leave on disk.
3. **Check** each point: truncate the image at the point, run the
   recovery under test (:func:`repro.store.store.replay_image`), and
   compare against an independent committed-prefix oracle.  Violations
   are classified as *durability* (a committed row did not survive),
   *atomicity* (an uncommitted row was resurrected), or *ifc-weakening*
   (recovery applied a taint-weakening write — a declassification or
   taint-stripping store — that the committed, label-checked prefix
   never authorized: a row recovered with weaker taint than it was
   written with).
4. **Minimize** any violation to the earliest, least-torn crash point
   that still reproduces it (the PR 6 shrinking discipline: order
   candidates by cost, re-verify each, keep the first that still fails),
   and emit it as a *replayable* ``faultplan/v1`` document whose
   ``crash_at_io`` rule re-creates the crash live.  The plan carries the
   SHA-256 of the crash image; ``--replay`` re-runs the workload under
   the plan and proves the ``<store>.crash`` snapshot is byte-identical
   to the offline prefix before re-checking the violation on it.

The strict recovery should survive the full sweep (exit 0); the
deliberately broken recovery (``label_check=False`` — naive redo, no
commit filter, no label check) must be caught (exit 1).
"""

from __future__ import annotations

import json
import os
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.db.engine import Database, Table
from repro.faults.plan import FaultPlan, FaultRule
from repro.store import wal
from repro.store.store import (
    PUBLIC_OWNER,
    image_digest,
    policy_problem,
    replay_image,
)

#: Violation kinds, in decreasing severity.
VIOLATION_KINDS = ("ifc-weakening", "durability", "atomicity")

#: The example workload's requests: (user, password, service, body, args).
BOARD_USERS = (("alice", "wonderland"), ("bob", "builder"))
BOARD_SCHEMA = ("CREATE TABLE posts (author TEXT, text TEXT, published INTEGER)",)
BOARD_REQUESTS: Tuple[Tuple[str, str, str, Any, Optional[Dict[str, Any]]], ...] = (
    ("alice", "wonderland", "board", "first draft", {"op": "draft"}),
    ("bob", "builder", "board", "second draft", {"op": "draft"}),
    ("alice", "wonderland", "board", "third draft", {"op": "draft"}),
    # The final transaction: alice's drafts become public via the
    # declassifier.  Its torn-commit crash points are where a recovery
    # that skips the label check resurrects private rows as public.
    ("alice", "wonderland", "publish", None, None),
)


@dataclass(frozen=True)
class CrashPoint:
    """One crash point: the ``at_io``-th append (1-based, in recording
    order) with *torn_bytes* of that record durable.  ``offset`` is the
    resulting file length."""

    at_io: int
    torn_bytes: int
    offset: int

    def to_json(self) -> Dict[str, Any]:
        return {"at_io": self.at_io, "torn_bytes": self.torn_bytes, "offset": self.offset}


@dataclass(frozen=True)
class Violation:
    """One recovery defect at one crash point."""

    kind: str
    table: str
    detail: str
    row: Optional[Dict[str, Any]] = None

    def to_json(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "kind": self.kind,
            "table": self.table,
            "detail": self.detail,
        }
        if self.row is not None:
            doc["row"] = dict(self.row)
        return doc


@dataclass
class PointResult:
    point: CrashPoint
    violations: List[Violation]

    def to_json(self) -> Dict[str, Any]:
        return {
            "point": self.point.to_json(),
            "violations": [v.to_json() for v in self.violations],
        }


@dataclass
class CrashcheckReport:
    """Outcome of one exhaustive sweep."""

    workload: str
    wal_bytes: int
    records: int
    boot_records: int
    points: int
    label_check: bool
    failures: List[PointResult] = field(default_factory=list)
    minimized: Optional[CrashPoint] = None
    plan: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_json(self) -> Dict[str, Any]:
        return {
            "schema": "crashcheck/v1",
            "workload": self.workload,
            "wal_bytes": self.wal_bytes,
            "records": self.records,
            "boot_records": self.boot_records,
            "points": self.points,
            "label_check": self.label_check,
            "ok": self.ok,
            "failing_points": len(self.failures),
            "failures": [f.to_json() for f in self.failures],
            "minimized": self.minimized.to_json() if self.minimized else None,
            "plan": self.plan,
        }

    def format_text(self) -> str:
        lines = [
            f"crashcheck: workload={self.workload} "
            f"({self.records} records, {self.wal_bytes} bytes, "
            f"{self.boot_records} from boot)",
            f"  recovery under test: "
            f"{'strict (label-checked)' if self.label_check else 'BROKEN (naive redo, no label check)'}",
            f"  crash points checked: {self.points}",
        ]
        if self.ok:
            lines.append("  OK: durability and IFC monotonicity hold at every point")
            return "\n".join(lines)
        lines.append(f"  FAILED at {len(self.failures)} point(s)")
        by_kind = Counter(
            v.kind for result in self.failures for v in result.violations
        )
        for kind in VIOLATION_KINDS:
            if by_kind.get(kind):
                lines.append(f"    {kind}: {by_kind[kind]} violation(s)")
        if self.minimized is not None:
            point = self.minimized
            lines.append(
                f"  minimized: crash at append #{point.at_io} with "
                f"{point.torn_bytes} torn byte(s) (offset {point.offset})"
            )
            example = next(
                (r for r in self.failures if r.point == point), self.failures[0]
            )
            for violation in example.violations[:4]:
                lines.append(f"    - [{violation.kind}] {violation.table}: {violation.detail}")
        return "\n".join(lines)


# -- the live example workload -----------------------------------------------------


def run_board_workload(store_path: str, plan: Optional[FaultPlan] = None):
    """Boot a store-backed board site, drive the example requests, and
    return the :class:`~repro.okws.launcher.OkwsSite`.

    With a *plan*, the injector is armed from boot and a ``crash_at_io``
    rule kills ok-dbproxy mid-workload; the supervised launcher then
    restarts and recovers it.  Everything is deterministic — same store
    path contents, same plan, same bytes."""
    from repro.kernel.config import KernelConfig
    from repro.kernel.kernel import Kernel
    from repro.okws.launcher import ServiceConfig, launch
    from repro.okws.services import board_handler, board_publisher_handler
    from repro.sim.workload import HttpClient

    config = KernelConfig(store_path=store_path, faults=plan, fault_seed=0)
    kernel = Kernel(config=config)
    site = launch(
        kernel,
        services=[
            ServiceConfig("board", board_handler),
            ServiceConfig("publish", board_publisher_handler, declassifier=True),
        ],
        users=list(BOARD_USERS),
        schema=list(BOARD_SCHEMA),
    )
    client = HttpClient(site)
    for user, password, service, body, args in BOARD_REQUESTS:
        client.request(user, password, service, body, args)
    site.kernel.run()
    return site


def record_workload(store_path: str) -> Tuple[bytes, int]:
    """Record the example workload into a fresh store at *store_path*.

    Returns ``(wal image, boot_records)`` where *boot_records* counts the
    records written before the first client request (schema + user
    seeding) — crash points inside that prefix are checked offline but
    are not replayable, because they would abort the boot the replay
    needs to reach the workload."""
    if os.path.exists(store_path):
        raise ValueError(f"refusing to record over an existing store: {store_path}")

    from repro.kernel.config import KernelConfig
    from repro.kernel.kernel import Kernel
    from repro.okws.launcher import ServiceConfig, launch
    from repro.okws.services import board_handler, board_publisher_handler
    from repro.sim.workload import HttpClient

    kernel = Kernel(config=KernelConfig(store_path=store_path))
    site = launch(
        kernel,
        services=[
            ServiceConfig("board", board_handler),
            ServiceConfig("publish", board_publisher_handler, declassifier=True),
        ],
        users=list(BOARD_USERS),
        schema=list(BOARD_SCHEMA),
    )
    boot_records = len(wal.scan_file(store_path).records)
    client = HttpClient(site)
    for user, password, service, body, args in BOARD_REQUESTS:
        client.request(user, password, service, body, args)
    site.kernel.run()
    with open(store_path, "rb") as handle:
        return handle.read(), boot_records


# -- crash-point enumeration --------------------------------------------------------


def crash_points(data: bytes) -> List[CrashPoint]:
    """Every crash point of a clean log image: for each record ``i``, the
    boundary before it (``torn_bytes=0``) plus every torn prefix length
    ``1..len-1`` inside it.  A full record is not a crash point of record
    ``i`` — it is the boundary of ``i+1``."""
    scanned = wal.scan(data)
    if scanned.torn:
        raise ValueError(
            f"recording is torn ({scanned.torn_bytes} trailing bytes); "
            "crash points need a clean image"
        )
    points: List[CrashPoint] = []
    for index, record in enumerate(scanned.records, start=1):
        for torn in range(record.length):
            points.append(CrashPoint(index, torn, record.offset + torn))
    return points


# -- the independent oracle ---------------------------------------------------------


def reference_state(data: bytes) -> Database:
    """The committed-prefix reference: what a correct recovery of *data*
    must produce.  Re-implements the replay policy (checkpoint resets,
    committed transactions only, policy-violating writes repaired away)
    independently of :func:`repro.store.store.replay_image`, sharing only
    the record format and the relational engine."""
    scanned = wal.scan(data)
    committed = {r.tx for r in scanned.records if r.type == "commit"}
    db = Database()
    for record in scanned.records:
        if record.type == "checkpoint":
            db = Database()
            for name in sorted(record.payload["tables"]):
                doc = record.payload["tables"][name]
                db.tables[name] = Table(
                    name,
                    tuple((n, t) for n, t in doc["columns"]),
                    [dict(row) for row in doc["rows"]],
                )
            continue
        if record.type != "write":
            continue
        if record.tx not in committed:
            continue
        if policy_problem(record.payload) is not None:
            continue
        try:
            db.run(
                wal.stmt_from_json(record.payload["stmt"]),
                tuple(record.payload["params"]),
            )
        except Exception:
            continue
    return db


def _row_key(row: Dict[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    return tuple(sorted(row.items()))


def _multisets(db: Database) -> Dict[str, Counter]:
    return {
        name: Counter(_row_key(row) for row in table.rows)
        for name, table in db.tables.items()
    }


def check_prefix(
    prefix: bytes, label_check: bool = True
) -> List[Violation]:
    """Run the recovery under test on one crash image and diff it against
    the oracle.  Returns the violations (empty = this point is safe)."""
    recovered = replay_image(prefix, label_check=label_check)
    reference = reference_state(prefix)
    violations: List[Violation] = []
    ref_sets = _multisets(reference)
    rec_sets = _multisets(recovered.db)
    for table in sorted(set(ref_sets) | set(rec_sets)):
        ref_rows = ref_sets.get(table, Counter())
        rec_rows = rec_sets.get(table, Counter())
        for key, count in sorted((ref_rows - rec_rows).items()):
            violations.append(
                Violation(
                    kind="durability",
                    table=table,
                    detail=f"committed row lost in recovery ({count}x)",
                    row=dict(key),
                )
            )
        for key, count in sorted((rec_rows - ref_rows).items()):
            violations.append(
                Violation(
                    kind="atomicity",
                    table=table,
                    detail=f"row resurrected that the committed state lacks ({count}x)",
                    row=dict(key),
                )
            )
    # IFC monotonicity, by record provenance: every write the committed,
    # label-checked semantics reject but naive redo applies is audited —
    # if it declassifies or stores tainted data publicly, recovery gave
    # rows weaker taint than they were written with.
    if not label_check:
        scanned = wal.scan(prefix)
        committed = {r.tx for r in scanned.records if r.type == "commit"}
        for record in scanned.records:
            if record.type != "write":
                continue
            payload = record.payload
            rejected = record.tx not in committed or policy_problem(payload)
            if not rejected:
                continue
            weakens = payload["declass"] or (
                payload["owner"] == PUBLIC_OWNER and payload["taint"] is not None
            )
            if weakens:
                violations.append(
                    Violation(
                        kind="ifc-weakening",
                        table=payload["stmt"].get("table", "?"),
                        detail=(
                            f"tx {record.tx}: recovery applied a declassifying "
                            "write the log never committed/label-checked"
                        ),
                    )
                )
    violations.sort(key=lambda v: VIOLATION_KINDS.index(v.kind))
    return violations


# -- sweep + minimization -----------------------------------------------------------


def sweep(
    data: bytes,
    boot_records: int = 0,
    label_check: bool = True,
    workload: str = "board",
) -> CrashcheckReport:
    """Check every crash point of *data*; minimize and emit a replayable
    plan when any fails."""
    points = crash_points(data)
    scanned = wal.scan(data)
    report = CrashcheckReport(
        workload=workload,
        wal_bytes=len(data),
        records=len(scanned.records),
        boot_records=boot_records,
        points=len(points),
        label_check=label_check,
    )
    for point in points:
        violations = check_prefix(data[: point.offset], label_check=label_check)
        if violations:
            report.failures.append(PointResult(point, violations))
    if report.failures:
        report.minimized = minimize(
            data, [f.point for f in report.failures], boot_records, label_check
        )
        if report.minimized is not None:
            report.plan = counterexample_plan(
                data, report.minimized, workload=workload, label_check=label_check
            )
    return report


def minimize(
    data: bytes,
    failing: List[CrashPoint],
    boot_records: int = 0,
    label_check: bool = True,
) -> Optional[CrashPoint]:
    """Shrink to the cheapest *replayable* failing point.

    Candidates are ordered by (append index, torn bytes) and re-verified
    one by one; the first that still reproduces wins.  Points inside the
    boot prefix are excluded — a plan crashing the proxy mid-seeding
    aborts the launch the replay needs — so the minimum is the earliest
    workload-phase crash.  Falls back to the overall earliest failing
    point when only boot-phase points fail."""
    replayable = [p for p in failing if p.at_io > boot_records]
    candidates = sorted(
        replayable or failing, key=lambda p: (p.at_io, p.torn_bytes)
    )
    for point in candidates:
        if check_prefix(data[: point.offset], label_check=label_check):
            return point
    return None


def counterexample_plan(
    data: bytes,
    point: CrashPoint,
    workload: str = "board",
    label_check: bool = False,
) -> Dict[str, Any]:
    """A ``faultplan/v1`` document that re-creates *point* live.

    The extra ``crashcheck`` block (ignored by the plan loader) carries
    the replay contract: which recorded workload to drive, the expected
    crash-image length and SHA-256, and which recovery to re-check."""
    prefix = data[: point.offset]
    rule = FaultRule(
        kind="crash_at_io",
        id="crashcheck-min",
        match="ok-dbproxy",
        at_io=point.at_io,
        torn_bytes=point.torn_bytes,
        max_fires=1,
    )
    plan = FaultPlan.of(
        rule,
        description=(
            f"crashcheck counterexample: crash ok-dbproxy at log append "
            f"#{point.at_io} leaving {point.torn_bytes} torn byte(s)"
        ),
    )
    doc = plan.to_json()
    doc["crashcheck"] = {
        "workload": workload,
        "at_io": point.at_io,
        "torn_bytes": point.torn_bytes,
        "offset": point.offset,
        "sha256": image_digest(prefix),
        "label_check": label_check,
    }
    return doc


# -- replay -------------------------------------------------------------------------


@dataclass
class ReplayResult:
    """Outcome of replaying a minimized plan live."""

    crashed: bool
    byte_identical: bool
    crash_bytes: int
    expected_bytes: int
    violations: List[Violation]

    @property
    def reproduced(self) -> bool:
        return self.crashed and self.byte_identical and bool(self.violations)

    def to_json(self) -> Dict[str, Any]:
        return {
            "crashed": self.crashed,
            "byte_identical": self.byte_identical,
            "crash_bytes": self.crash_bytes,
            "expected_bytes": self.expected_bytes,
            "violations": [v.to_json() for v in self.violations],
            "reproduced": self.reproduced,
        }

    def format_text(self) -> str:
        lines = [
            f"crashcheck replay: crashed={self.crashed} "
            f"byte_identical={self.byte_identical} "
            f"({self.crash_bytes}/{self.expected_bytes} bytes)",
        ]
        for violation in self.violations[:6]:
            lines.append(f"  - [{violation.kind}] {violation.table}: {violation.detail}")
        lines.append(
            "  REPRODUCED" if self.reproduced else "  did not reproduce"
        )
        return lines and "\n".join(lines)


def replay_counterexample(doc: Dict[str, Any], workdir: str) -> ReplayResult:
    """Replay a :func:`counterexample_plan` document live.

    Re-runs the recorded workload under the plan's ``crash_at_io`` rule
    in *workdir*; the injected crash freezes the log image in
    ``<store>.crash`` at the instant of death (before the supervised
    restart's recovery truncates the tail).  Byte-identity against the
    offline prefix, then the violation re-check, both run on that
    snapshot."""
    meta = doc.get("crashcheck")
    if not isinstance(meta, dict):
        raise ValueError("not a crashcheck counterexample: missing 'crashcheck' block")
    plan = FaultPlan.from_json(doc)
    store_path = os.path.join(workdir, "replay-wal.log")
    if os.path.exists(store_path):
        raise ValueError(f"refusing to replay over an existing store: {store_path}")
    run_board_workload(store_path, plan=plan)
    crash_path = store_path + ".crash"
    if not os.path.exists(crash_path):
        return ReplayResult(
            crashed=False,
            byte_identical=False,
            crash_bytes=0,
            expected_bytes=int(meta["offset"]),
            violations=[],
        )
    with open(crash_path, "rb") as handle:
        image = handle.read()
    byte_identical = (
        len(image) == int(meta["offset"]) and image_digest(image) == meta["sha256"]
    )
    violations = check_prefix(image, label_check=bool(meta.get("label_check", True)))
    return ReplayResult(
        crashed=True,
        byte_identical=byte_identical,
        crash_bytes=len(image),
        expected_bytes=int(meta["offset"]),
        violations=violations,
    )


def load_counterexample(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    if not isinstance(doc, dict):
        raise ValueError("counterexample plan must be a JSON object")
    return doc
