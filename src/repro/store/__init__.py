"""repro.store: the labeled, write-ahead-logged store behind ok-dbproxy.

DESIGN.md §14.  The package is import-gated: a kernel with
``store_path=None`` (the default) never imports it, keeping the in-memory
path bit-identical to the pre-store tree.

- :mod:`repro.store.wal` — the ``wal/v1`` record format (CRC-framed
  begin/write/commit/checkpoint records, torn-tail scanning);
- :mod:`repro.store.store` — :class:`LabeledStore` (engine-coupled append
  path, label-checked recovery, crash injection via ``crash_at_io``);
- :mod:`repro.store.crashcheck` — the exhaustive crash-consistency
  checker behind ``python -m repro crashcheck``.
"""

from repro.store.store import (
    LabeledStore,
    LabelViolation,
    RecoveryReport,
    StoreCrash,
    StoreError,
    image_digest,
    policy_problem,
    replay_image,
)
from repro.store.wal import RowTaint, WalError, scan, scan_file

__all__ = [
    "LabeledStore",
    "LabelViolation",
    "RecoveryReport",
    "StoreCrash",
    "StoreError",
    "image_digest",
    "policy_problem",
    "replay_image",
    "RowTaint",
    "WalError",
    "scan",
    "scan_file",
]
