"""The ``wal/v1`` on-disk log format.

A write-ahead log is a sequence of CRC-framed records::

    [4-byte BE payload length][4-byte BE CRC32(payload)][payload bytes]

The payload is compact, key-sorted JSON — one of four record types:

``begin``       ``{"t": "begin", "tx": N}``
``write``       ``{"t": "write", "tx": N, "stmt": ..., "params": [...],
                "owner": uid, "taint": {"handles": [...], "level": L} | null,
                "declass": bool}``
``commit``      ``{"t": "commit", "tx": N}``
``checkpoint``  ``{"t": "checkpoint", "tables": {name: {"columns": [...],
                "rows": [...]}}, "taints": {uid: {...}}}``

Writes are *logical redo* records: the (already policy-rewritten)
statement AST plus its bound parameters, exactly what ok-dbproxy handed
the relational engine.  Replaying the committed records in log order
against an empty :class:`~repro.db.engine.Database` reproduces the
committed state deterministically, because the engine itself is
deterministic.  Each write additionally carries the security facts the
recovery label check needs: the owning user ID, the taint-handle set and
contamination level the writer's compartment carried, and whether the
writer proved declassification privilege (``V(uT) = ⋆``).

Torn tails are first-class: :func:`scan` reads records until the bytes
stop framing — a short header, a short payload, or a CRC mismatch — and
reports how many trailing bytes it had to discard.  A crash may leave any
prefix of the final record on disk; everything before it must still parse.

This module knows nothing about the kernel or labels-as-objects; handles
and levels are plain integers here, which is also what makes the format
stable across boots (handle *values* are per-boot, so recovery treats
them as evidence to check, not capabilities to reuse).
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.db import sql as S

#: Schema identifier (stamped into checkpoint records and used by tools).
SCHEMA = "wal/v1"

#: Bytes of framing before each payload: 4-byte length + 4-byte CRC32.
HEADER_BYTES = 8

_HEADER = struct.Struct(">II")

#: Record types, in the order they typically appear.
RECORD_TYPES = ("begin", "write", "commit", "checkpoint")


class WalError(ValueError):
    """A structurally invalid record (bad framing is *not* an error at the
    tail — it is a torn write — but a well-framed record with a malformed
    payload is)."""


# -- statement (de)serialisation -------------------------------------------------


def stmt_to_json(ast: S.Statement) -> Dict[str, Any]:
    """A JSON-stable encoding of the write-side statement ASTs."""
    if isinstance(ast, S.CreateTable):
        return {"op": "create", "table": ast.table, "columns": [list(c) for c in ast.columns]}
    if isinstance(ast, S.Insert):
        return {
            "op": "insert",
            "table": ast.table,
            "columns": list(ast.columns),
            "values": [_value_to_json(v) for v in ast.values],
        }
    if isinstance(ast, S.Update):
        return {
            "op": "update",
            "table": ast.table,
            "assignments": [[c, _value_to_json(v)] for c, v in ast.assignments],
            "where": [_cond_to_json(c) for c in ast.where],
        }
    if isinstance(ast, S.Delete):
        return {
            "op": "delete",
            "table": ast.table,
            "where": [_cond_to_json(c) for c in ast.where],
        }
    raise WalError(f"not a loggable statement: {ast!r}")


def stmt_from_json(doc: Dict[str, Any]) -> S.Statement:
    op = doc.get("op")
    if op == "create":
        return S.CreateTable(doc["table"], tuple((n, t) for n, t in doc["columns"]))
    if op == "insert":
        return S.Insert(
            doc["table"],
            tuple(doc["columns"]),
            tuple(_value_from_json(v) for v in doc["values"]),
        )
    if op == "update":
        return S.Update(
            doc["table"],
            tuple((c, _value_from_json(v)) for c, v in doc["assignments"]),
            tuple(_cond_from_json(c) for c in doc["where"]),
        )
    if op == "delete":
        return S.Delete(doc["table"], tuple(_cond_from_json(c) for c in doc["where"]))
    raise WalError(f"unknown statement op: {op!r}")


def _value_to_json(value: S.Value) -> Any:
    if isinstance(value, S.Placeholder):
        return {"?": value.index}
    return value


def _value_from_json(doc: Any) -> S.Value:
    if isinstance(doc, dict):
        return S.Placeholder(doc["?"])
    return doc


def _cond_to_json(cond: S.Condition) -> List[Any]:
    return [cond.column, _value_to_json(cond.value)]


def _cond_from_json(doc: List[Any]) -> S.Condition:
    return S.Condition(doc[0], _value_from_json(doc[1]))


# -- taint metadata --------------------------------------------------------------


@dataclass(frozen=True)
class RowTaint:
    """The security facts persisted with a write: the taint-handle set the
    rows carry and the contamination level readers are raised to.  A
    ``None`` taint on a record means an untainted (public/admin) write."""

    handles: Tuple[int, ...]
    level: int

    def to_json(self) -> Dict[str, Any]:
        return {"handles": sorted(self.handles), "level": self.level}

    @classmethod
    def from_json(cls, doc: Optional[Dict[str, Any]]) -> Optional["RowTaint"]:
        if doc is None:
            return None
        return cls(handles=tuple(sorted(doc["handles"])), level=doc["level"])


# -- framing ---------------------------------------------------------------------


def frame(payload: Dict[str, Any]) -> bytes:
    """Encode one record: header + compact key-sorted JSON payload."""
    body = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    ).encode("ascii")
    return _HEADER.pack(len(body), zlib.crc32(body)) + body


@dataclass(frozen=True)
class Record:
    """One decoded record plus its byte span in the log file."""

    payload: Dict[str, Any]
    offset: int  # first byte of the header
    length: int  # total framed length (header + payload)

    @property
    def end(self) -> int:
        return self.offset + self.length

    @property
    def type(self) -> str:
        return self.payload.get("t", "")

    @property
    def tx(self) -> Optional[int]:
        return self.payload.get("tx")


@dataclass(frozen=True)
class ScanResult:
    """Everything :func:`scan` learned about a log image."""

    records: Tuple[Record, ...]
    #: Bytes of well-framed log (== offset of the torn tail, if any).
    clean_bytes: int
    #: Trailing bytes that failed to frame (0 on a cleanly closed log).
    torn_bytes: int

    @property
    def torn(self) -> bool:
        return self.torn_bytes > 0


def scan(data: bytes) -> ScanResult:
    """Decode *data* record by record, stopping at the first torn tail.

    A short header, a short payload, or a CRC mismatch ends the scan —
    that is what a crash mid-append leaves behind, and recovery must
    treat everything before it as the durable log.  A well-framed record
    whose payload is not a JSON object is a :class:`WalError` (the log
    was corrupted in place, not torn)."""
    records: List[Record] = []
    offset = 0
    total = len(data)
    while offset < total:
        if total - offset < HEADER_BYTES:
            break  # torn header
        length, crc = _HEADER.unpack_from(data, offset)
        body_start = offset + HEADER_BYTES
        if total - body_start < length:
            break  # torn payload
        body = data[body_start : body_start + length]
        if zlib.crc32(body) != crc:
            break  # torn or corrupted tail; recovery stops here
        try:
            payload = json.loads(body.decode("ascii"))
        except (UnicodeDecodeError, json.JSONDecodeError) as err:
            raise WalError(f"record at offset {offset}: undecodable payload: {err}")
        if not isinstance(payload, dict) or payload.get("t") not in RECORD_TYPES:
            raise WalError(f"record at offset {offset}: not a wal/v1 record")
        records.append(Record(payload, offset, HEADER_BYTES + length))
        offset = body_start + length
    return ScanResult(
        records=tuple(records), clean_bytes=offset, torn_bytes=total - offset
    )


def scan_file(path: str) -> ScanResult:
    with open(path, "rb") as handle:
        return scan(handle.read())


# -- record constructors ---------------------------------------------------------


def begin_record(tx: int) -> Dict[str, Any]:
    return {"t": "begin", "tx": tx}


def write_record(
    tx: int,
    ast: S.Statement,
    params: Tuple[Any, ...],
    owner: int,
    taint: Optional[RowTaint],
    declass: bool,
) -> Dict[str, Any]:
    return {
        "t": "write",
        "tx": tx,
        "stmt": stmt_to_json(ast),
        "params": list(params),
        "owner": owner,
        "taint": taint.to_json() if taint is not None else None,
        "declass": bool(declass),
    }


def commit_record(tx: int) -> Dict[str, Any]:
    return {"t": "commit", "tx": tx}


def checkpoint_record(
    tables: Dict[str, Dict[str, Any]], taints: Dict[int, Dict[str, Any]]
) -> Dict[str, Any]:
    return {
        "t": "checkpoint",
        "schema": SCHEMA,
        "tables": tables,
        "taints": {str(uid): doc for uid, doc in taints.items()},
    }
