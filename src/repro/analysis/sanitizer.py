"""Runtime IFC sanitizer: differential checking of the fused label paths.

The kernel's hot paths (:mod:`repro.core.labelops`) are fused,
sparsity-aware implementations of the Figure 4 operations; the naive
:class:`~repro.core.labels.Label` operators are the executable
specification.  With the sanitizer enabled (``Kernel(sanitize=True)``,
``python -m repro run --sanitize``, or the ``REPRO_SANITIZE=1``
environment variable) every IPC is re-evaluated through the naive
operators and the two answers are compared:

- the delivery verdict of ``check_send`` must equal
  ``ES ⊑ (QR ⊔ DR) ⊓ V ⊓ pR`` (and requirement (4) ``DR ⊑ pR``)
  computed on plain Labels;
- the send-label effect must equal ``QS ← (QS ⊓ DS) ⊔ (ES ⊓ QS⋆)``;
- the receive-label effect must equal ``QR ← QR ⊔ DR`` exactly;
- monotonicity invariants must hold independently of the reference:
  absent a decontaminating ``DS`` the send label only ever rises, and
  the receive label only ever rises.

Disagreements are recorded as structured :class:`Violation` records
(surfaced through :class:`repro.sim.trace.FlowTracer` transcripts) and,
in strict mode (the default), raised as :class:`SanitizerViolation` —
any violation means a label-engine bug, never a program bug, so failing
loudly is the point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from repro.core.chunks import ChunkedLabel
from repro.core.labels import Label
from repro.kernel.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.kernel import Kernel
    from repro.kernel.message import QueuedMessage
    from repro.kernel.ports import Port
    from repro.kernel.process import Task


class SanitizerViolation(SimulationError):
    """Raised in strict mode when fused and naive label math disagree."""


#: Violation kinds.
EFFECTIVE_SEND_MISMATCH = "effective-send-mismatch"
CHECK_MISMATCH = "check-mismatch"
SEND_EFFECT_MISMATCH = "send-effect-mismatch"
RECEIVE_EFFECT_MISMATCH = "receive-effect-mismatch"
SEND_LABEL_LOWERED = "send-label-lowered"
RECEIVE_LABEL_LOWERED = "receive-label-lowered"


@dataclass(frozen=True)
class Violation:
    """One disagreement between the fused path and the specification."""

    seq: int
    kind: str
    sender: str
    receiver: str
    port: int
    detail: str

    def format(self) -> str:
        return (
            f"SANITIZER[{self.kind}] #{self.seq} "
            f"{self.sender} => {self.receiver} port={self.port:#x}: {self.detail}"
        )


@dataclass
class DeliverySnapshot:
    """Pre-delivery state + the naive prediction of what must happen."""

    qs_before: Label
    qr_before: Label
    es: Label
    ds: Label
    dr: Label
    expected_delivered: bool
    expected_qs: Optional[Label]
    expected_qr: Optional[Label]


class LabelSanitizer:
    """Cross-checks every IPC against the naive Label operators."""

    def __init__(self, kernel: "Kernel", strict: bool = True):
        self.kernel = kernel
        self.strict = strict
        self.violations: List[Violation] = []
        self.checked_sends = 0
        self.checked_deliveries = 0
        self._seq = 0

    # -- recording ----------------------------------------------------------------

    def _record(
        self, kind: str, sender: str, receiver: str, port: int, detail: str
    ) -> None:
        self._seq += 1
        violation = Violation(self._seq, kind, sender, receiver, port, detail)
        self.violations.append(violation)
        self.kernel.debug_log("sanitizer", violation.format())
        if self.strict:
            raise SanitizerViolation(violation.format())

    # -- send-time hook (ES = PS ⊔ CS) ---------------------------------------------

    def check_effective_send(
        self,
        sender: str,
        port: int,
        ps: ChunkedLabel,
        cs: ChunkedLabel,
        es: ChunkedLabel,
    ) -> None:
        self.checked_sends += 1
        expected = ps.to_label() | cs.to_label()
        actual = es.to_label()
        if actual != expected:
            self._record(
                EFFECTIVE_SEND_MISMATCH,
                sender,
                "<send>",
                port,
                f"fused ES = PS ⊔ CS produced {actual!r}, naive gives {expected!r}",
            )

    # -- delivery hooks ------------------------------------------------------------

    def before_deliver(
        self, task: "Task", entry: "Port", qmsg: "QueuedMessage"
    ) -> DeliverySnapshot:
        qs = task.send_label.to_label()
        qr = task.receive_label.to_label()
        es = qmsg.effective_send.to_label()
        ds = qmsg.decontaminate_send.to_label()
        v = qmsg.verify.to_label()
        dr = qmsg.decontaminate_receive.to_label()
        pr = entry.label.to_label()
        # Figure 4 requirements (4) and (1) on plain labels.
        req4 = dr <= pr
        req1 = es <= ((qr | dr) & v & pr)
        expected = req4 and req1
        return DeliverySnapshot(
            qs_before=qs,
            qr_before=qr,
            es=es,
            ds=ds,
            dr=dr,
            expected_delivered=expected,
            expected_qs=((qs & ds) | (es & qs.stars())) if expected else None,
            expected_qr=(qr | dr) if expected else None,
        )

    def after_deliver(
        self,
        task: "Task",
        entry: "Port",
        qmsg: "QueuedMessage",
        delivered: bool,
        snapshot: DeliverySnapshot,
    ) -> None:
        self.checked_deliveries += 1
        sender = qmsg.sender_name
        receiver = task.name
        port = entry.handle
        if delivered != snapshot.expected_delivered:
            self._record(
                CHECK_MISMATCH,
                sender,
                receiver,
                port,
                f"fused delivery verdict {delivered}, naive Figure 4 check "
                f"says {snapshot.expected_delivered} "
                f"(ES={snapshot.es!r}, QR={snapshot.qr_before!r})",
            )
            return
        if not delivered:
            return
        qs_after = task.send_label.to_label()
        qr_after = task.receive_label.to_label()
        if snapshot.expected_qs is not None and qs_after != snapshot.expected_qs:
            self._record(
                SEND_EFFECT_MISMATCH,
                sender,
                receiver,
                port,
                f"QS ← (QS ⊓ DS) ⊔ (ES ⊓ QS⋆): fused {qs_after!r}, "
                f"naive {snapshot.expected_qs!r}",
            )
        if snapshot.expected_qr is not None and qr_after != snapshot.expected_qr:
            self._record(
                RECEIVE_EFFECT_MISMATCH,
                sender,
                receiver,
                port,
                f"QR ← QR ⊔ DR: fused {qr_after!r}, naive {snapshot.expected_qr!r}",
            )
        # Monotonicity invariants, independent of the reference computation.
        if snapshot.ds == Label.top() and not snapshot.qs_before <= qs_after:
            self._record(
                SEND_LABEL_LOWERED,
                sender,
                receiver,
                port,
                f"send label fell without a decontaminating DS: "
                f"{snapshot.qs_before!r} → {qs_after!r}",
            )
        if not snapshot.qr_before <= qr_after:
            self._record(
                RECEIVE_LABEL_LOWERED,
                sender,
                receiver,
                port,
                f"receive label fell on delivery: "
                f"{snapshot.qr_before!r} → {qr_after!r}",
            )

    # -- reporting ------------------------------------------------------------------

    def summary(self) -> str:
        return (
            f"sanitizer: {self.checked_sends} sends and "
            f"{self.checked_deliveries} deliveries cross-checked, "
            f"{len(self.violations)} violations"
        )
