"""asbcheck — the whole-system label-flow model checker.

asblint proves properties of one program's sends in isolation; the
paper's security argument is global: *no sequence of messages* moves one
user's taint somewhere it must not go (Section 7).  asbcheck closes that
gap by exhaustive exploration: given a :class:`~repro.analysis.model.
Topology`, it fires every send edge in every reachable label state under
the verbatim Figure 4 rules —

- ``ES = PS ⊔ CS``
- requirement (2): ``DS(h) < 3 ⇒ PS(h) = ⋆`` (send time)
- requirement (3): ``DR(h) > ⋆ ⇒ PS(h) = ⋆`` (send time)
- requirement (4): ``DR ⊑ pR`` (delivery time)
- requirement (1): ``ES ⊑ (QR ⊔ DR) ⊓ V ⊓ pR`` (delivery time)
- effects: ``QS ← (QS ⊓ DS) ⊔ (ES ⊓ QS*)``, ``QR ← QR ⊔ DR``

— the exact operations the kernel executes (``repro.core.labelops``),
memoized over interned label ids so the OKWS model checks in seconds.
Policies (:mod:`repro.policies.assertions`) are verified over the
explored graph; a violation comes back as a shortest counterexample
trace, breadth-first by construction, replayable on the real kernel
(``repro.analysis.replay``).

**State-space reduction.**  A state is the tuple of (QS, QR) ids per
process; grant and contamination flows would otherwise make the
reachable set the product of the per-handle lattices of every process.
Two observations tame it:

1. *Eager closure.*  A delivery whose only send-label changes are
   lowerings at handles the current exploration does not watch (plus any
   receive-label raises) is saturated immediately instead of branched.
   Such steps only lower future effective send labels and raise receive
   bounds — every Figure 4 check is antitone in ES and monotone in QR,
   so they can only *enable* later deliveries — and they never change a
   watched handle's level anywhere.  Saturation therefore preserves
   every watched violation and every edge's deliverability.  Changes at
   watched handles, and all contamination raises, still branch.
2. *Per-handle decomposition.*  The delivery effects are pointwise per
   handle, so a policy about handle ``h`` only needs the ``h``-projection
   of the state graph — which an exploration with ``watched = {h}``
   preserves exactly, by the same argument.  ``run_check`` runs one
   small exploration per policy handle (plus a fully-eager one for edge
   liveness) instead of one joint exploration watching every handle at
   once, whose reachable set is the product of the per-handle sets.

``exact=True`` disables the reduction entirely (used by the tests that
validate it against exhaustive exploration on small topologies).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.labels import Label
from repro.core.levels import STAR, level_name
from repro.kernel.errors import (
    DROP_DECONT_PRIVILEGE,
    DROP_LABEL_CHECK,
    DROP_PORT_LABEL,
)

from repro.analysis.model import LabelStore, Topology
from repro.policies import assertions as A

State = Tuple[int, ...]


class _Edge:
    """A topology edge compiled to label-store ids."""

    __slots__ = (
        "idx",
        "name",
        "sender",
        "s_idx",
        "receiver",
        "r_idx",
        "port",
        "pr",
        "cs",
        "ds",
        "v",
        "dr",
        "declassifier",
        "fork",
        "via",
    )

    def __init__(self, **kw: Any) -> None:
        for key, value in kw.items():
            setattr(self, key, value)


@dataclass(frozen=True)
class Firing:
    """The outcome of firing one edge in one state."""

    delivered: bool
    drop: Optional[str]
    es: int
    new_qs: int
    new_qr: int


class Engine:
    """The compiled transition system: fire edges, apply effects."""

    def __init__(
        self,
        topology: Topology,
        store: Optional[LabelStore] = None,
        skip_declassifiers: bool = False,
    ):
        problems = topology.validate()
        if problems:
            raise ValueError("; ".join(problems))
        self.topology = topology
        self.store = store if store is not None else LabelStore()
        self.proc_names: List[str] = list(topology.processes)
        self._proc_idx = {name: i for i, name in enumerate(self.proc_names)}
        self.edges: List[_Edge] = []
        for spec in topology.edges:
            if skip_declassifiers and spec.declassifier:
                continue
            port = topology.ports[spec.port]
            self.edges.append(
                _Edge(
                    idx=len(self.edges),
                    name=spec.name,
                    sender=spec.sender,
                    s_idx=self._proc_idx[spec.sender],
                    receiver=port.owner,
                    r_idx=self._proc_idx[port.owner],
                    port=spec.port,
                    pr=self.store.intern(port.label),
                    cs=self.store.intern(spec.cs),
                    ds=self.store.intern(spec.ds),
                    v=self.store.intern(spec.v),
                    dr=self.store.intern(spec.dr),
                    declassifier=spec.declassifier,
                    fork=port.fork,
                    via=spec.via,
                )
            )
        self.edges_by_sender: List[List[_Edge]] = [[] for _ in self.proc_names]
        for edge in self.edges:
            self.edges_by_sender[edge.s_idx].append(edge)
        init: List[int] = []
        for name in self.proc_names:
            spec = topology.processes[name]
            init.append(self.store.intern(spec.send))
            init.append(self.store.intern(spec.receive))
        self.initial: State = tuple(init)
        self._fire_memo: Dict[Tuple[int, int, int, int], Firing] = {}

    def fire(self, state: State, edge: _Edge) -> Firing:
        """Figure 4, one message: send-time checks, delivery checks,
        effects.  Memoized on (edge, sender PS, receiver QS, receiver QR)
        — the only state the rules read."""
        ps = state[2 * edge.s_idx]
        rqs = state[2 * edge.r_idx]
        rqr = state[2 * edge.r_idx + 1]
        key = (edge.idx, ps, rqs, rqr)
        got = self._fire_memo.get(key)
        if got is not None:
            return got
        store = self.store
        es = store.lub(ps, edge.cs)
        if not store.privilege_ok(ps, edge.ds, edge.dr):
            firing = Firing(False, DROP_DECONT_PRIVILEGE, es, rqs, rqr)
        elif not store.leq(edge.dr, edge.pr):
            firing = Firing(False, DROP_PORT_LABEL, es, rqs, rqr)
        elif not store.check(es, rqr, edge.dr, edge.v, edge.pr):
            firing = Firing(False, DROP_LABEL_CHECK, es, rqs, rqr)
        elif edge.fork:
            # Fork ports (event-process base ports): the delivery spawns a
            # fresh EP — modelled separately — and the base's own labels
            # are frozen, so the effects never land on the port owner.
            firing = Firing(True, None, es, rqs, rqr)
        else:
            firing = Firing(
                True,
                None,
                es,
                store.effects(rqs, es, edge.ds),
                store.lub(rqr, edge.dr),
            )
        self._fire_memo[key] = firing
        return firing

    def apply(self, state: State, edge: _Edge, firing: Firing) -> State:
        r = edge.r_idx
        if state[2 * r] == firing.new_qs and state[2 * r + 1] == firing.new_qr:
            return state
        out = list(state)
        out[2 * r] = firing.new_qs
        out[2 * r + 1] = firing.new_qr
        return tuple(out)


@dataclass
class TraceStep:
    """One hop of a counterexample: the edge fired and the label merge."""

    index: int
    edge: str
    sender: str
    receiver: str
    port: str
    delivered: bool
    drop: Optional[str]
    es: Label
    qs_before: Label
    qs_after: Label
    qr_before: Label
    qr_after: Label

    def format(self, topology: Topology) -> str:
        fmt = topology.format_label
        verdict = "delivered" if self.delivered else f"DROPPED ({self.drop})"
        lines = [
            f"{self.index}. {self.sender} --[{self.edge}]--> "
            f"{self.receiver} via port {self.port!r}: {verdict}",
            f"     ES = {fmt(self.es)}",
        ]
        if self.qs_before != self.qs_after:
            lines.append(
                f"     {self.receiver}.QS {fmt(self.qs_before)} -> {fmt(self.qs_after)}"
            )
        if self.qr_before != self.qr_after:
            lines.append(
                f"     {self.receiver}.QR {fmt(self.qr_before)} -> {fmt(self.qr_after)}"
            )
        return "\n".join(lines)

    def to_json(self, topology: Topology) -> Dict[str, Any]:
        fmt = topology.format_label
        return {
            "index": self.index,
            "edge": self.edge,
            "sender": self.sender,
            "receiver": self.receiver,
            "port": self.port,
            "delivered": self.delivered,
            "drop": self.drop,
            "es": fmt(self.es),
            "qs_before": fmt(self.qs_before),
            "qs_after": fmt(self.qs_after),
            "qr_before": fmt(self.qr_before),
            "qr_after": fmt(self.qr_after),
        }


@dataclass
class Violation:
    """A policy failure with its (shortest explored) counterexample."""

    message: str
    trace: List[TraceStep] = field(default_factory=list)
    process: str = ""
    edge: str = ""

    def format(self, topology: Topology) -> str:
        lines = [self.message]
        if self.trace:
            noun = "message" if len(self.trace) == 1 else "messages"
            lines.append(f"   counterexample ({len(self.trace)} {noun}):")
            for step in self.trace:
                lines.append("    " + step.format(topology).replace("\n", "\n    "))
        return "\n".join(lines)


@dataclass
class PolicyResult:
    policy: A.Policy
    ok: bool
    violation: Optional[Violation] = None


class Exploration:
    """The reachable (reduced) state graph plus per-edge liveness."""

    def __init__(self, engine: Engine, watched: Set[int], exact: bool, max_states: int):
        self.engine = engine
        self.watched = watched
        self.exact = exact
        self.max_states = max_states
        self.states: Dict[State, int] = {}
        self.order: List[State] = []
        #: state id → (parent state id or -1, edge idx sequence fired).
        self.parents: List[Tuple[int, Tuple[int, ...]]] = []
        self.edge_delivered: List[bool] = [False] * len(engine.edges)
        self.edge_last_drop: List[Optional[str]] = [None] * len(engine.edges)
        self.transitions = 0
        self.truncated = False
        self._qs_eager_memo: Dict[Tuple[int, int], bool] = {}
        self._run()

    # -- reduction ----------------------------------------------------------

    def _qs_change_eager(self, old: int, new: int) -> bool:
        """True when ``old → new`` only lowers levels, all at unwatched
        handles: a pure grant, safe to saturate (see module docstring)."""
        key = (old, new)
        got = self._qs_eager_memo.get(key)
        if got is not None:
            return got
        store = self.engine.store
        a, b = store.label(old), store.label(new)
        ok = a.default == b.default
        if ok:
            for handle in set(a.handles()) | set(b.handles()):
                before, after = a(handle), b(handle)
                if after > before or (after != before and handle in self.watched):
                    ok = False
                    break
        self._qs_eager_memo[key] = ok
        return ok

    def _fire(self, state: State, edge: _Edge) -> Firing:
        firing = self.engine.fire(state, edge)
        if firing.delivered:
            self.edge_delivered[edge.idx] = True
        else:
            self.edge_last_drop[edge.idx] = firing.drop
        return firing

    def _closure(self, state: State) -> Tuple[State, Tuple[int, ...]]:
        if self.exact:
            return state, ()
        steps: List[int] = []
        progress = True
        while progress and len(steps) < 10_000:
            progress = False
            for edge in self.engine.edges:
                firing = self._fire(state, edge)
                if not firing.delivered:
                    continue
                r = edge.r_idx
                qs_old, qr_old = state[2 * r], state[2 * r + 1]
                if firing.new_qs == qs_old and firing.new_qr == qr_old:
                    continue
                # Receive-label raises are always enabling-only; the send
                # label must change by unwatched grants alone.
                if firing.new_qs != qs_old and not self._qs_change_eager(
                    qs_old, firing.new_qs
                ):
                    continue
                state = self.engine.apply(state, edge, firing)
                steps.append(edge.idx)
                progress = True
        return state, tuple(steps)

    # -- breadth-first search ------------------------------------------------

    def _register(self, state: State, parent: int, steps: Tuple[int, ...]) -> Optional[int]:
        if state in self.states:
            return None
        if len(self.states) >= self.max_states:
            self.truncated = True
            return None
        sid = len(self.order)
        self.states[state] = sid
        self.order.append(state)
        self.parents.append((parent, steps))
        return sid

    def _run(self) -> None:
        init, init_steps = self._closure(self.engine.initial)
        self._register(init, -1, init_steps)
        queue = deque([0])
        while queue:
            sid = queue.popleft()
            state = self.order[sid]
            for edge in self.engine.edges:
                firing = self._fire(state, edge)
                if not firing.delivered:
                    continue
                succ = self.engine.apply(state, edge, firing)
                if succ == state:
                    continue
                self.transitions += 1
                succ, steps = self._closure(succ)
                new_sid = self._register(succ, sid, (edge.idx,) + steps)
                if new_sid is not None:
                    queue.append(new_sid)

    # -- counterexample traces ----------------------------------------------

    def edge_sequence(self, sid: int) -> List[int]:
        """Edge indices fired from the pre-closure initial state to *sid*."""
        chunks: List[Tuple[int, ...]] = []
        while sid >= 0:
            parent, steps = self.parents[sid]
            chunks.append(steps)
            sid = parent
        out: List[int] = []
        for steps in reversed(chunks):
            out.extend(steps)
        return out

    def trace_to(self, sid: int, extra: Optional[_Edge] = None) -> List[TraceStep]:
        """Replay the path to *sid* (plus one final *extra* firing),
        rendering the label merge at each hop."""
        engine, store = self.engine, self.engine.store
        state = engine.initial
        steps: List[TraceStep] = []
        sequence = [engine.edges[i] for i in self.edge_sequence(sid)]
        if extra is not None:
            sequence.append(extra)
        for edge in sequence:
            firing = engine.fire(state, edge)
            r = edge.r_idx
            steps.append(
                TraceStep(
                    index=len(steps) + 1,
                    edge=edge.name,
                    sender=edge.sender,
                    receiver=edge.receiver,
                    port=edge.port,
                    delivered=firing.delivered,
                    drop=firing.drop,
                    es=store.label(firing.es),
                    qs_before=store.label(state[2 * r]),
                    qs_after=store.label(firing.new_qs),
                    qr_before=store.label(state[2 * r + 1]),
                    qr_after=store.label(firing.new_qr),
                )
            )
            if firing.delivered:
                state = engine.apply(state, edge, firing)
        return steps


# -- policy evaluation ------------------------------------------------------------


def _resolve_handle(topology: Topology, name: str) -> Optional[int]:
    return topology.handles.get(name)


def _match_procs(engine: Engine, pattern: str) -> List[int]:
    return [
        i for i, name in enumerate(engine.proc_names) if A.matches(pattern, name)
    ]


def _eval_isolation(
    policy: A.Isolation, engine: Engine, expl: Exploration
) -> Optional[Violation]:
    topo, store = engine.topology, engine.store
    handle = _resolve_handle(topo, policy.handle)
    if handle is None:
        return Violation(message=f"unknown handle {policy.handle!r} in policy")
    procs = _match_procs(engine, policy.process)
    if not procs:
        return Violation(message=f"policy matches no process: {policy.process!r}")
    bound = policy.max_level
    for sid, state in enumerate(expl.order):
        for i in procs:
            name = engine.proc_names[i]
            qs = state[2 * i]
            level = store.label(qs)(handle)
            if level > bound:
                return Violation(
                    message=(
                        f"{name} carries {policy.handle} at "
                        f"{level_name(level)} (> {level_name(bound)}) in its "
                        "send label"
                    ),
                    trace=expl.trace_to(sid),
                    process=name,
                )
            for edge in engine.edges_by_sender[i]:
                es_level = store.label(store.lub(qs, edge.cs))(handle)
                if es_level > bound:
                    return Violation(
                        message=(
                            f"{name} can emit {policy.handle} at "
                            f"{level_name(es_level)} (> {level_name(bound)}) "
                            f"in the effective send label of edge {edge.name!r}"
                        ),
                        trace=expl.trace_to(sid),
                        process=name,
                        edge=edge.name,
                    )
    return None


def _eval_confinement(
    policy: A.CapabilityConfinement, engine: Engine, expl: Exploration
) -> Optional[Violation]:
    topo, store = engine.topology, engine.store
    handle = _resolve_handle(topo, policy.handle)
    if handle is None:
        return Violation(message=f"unknown handle {policy.handle!r} in policy")
    outsiders = [
        i for i, name in enumerate(engine.proc_names) if not policy.permits(name)
    ]
    for sid, state in enumerate(expl.order):
        for i in outsiders:
            if store.label(state[2 * i])(handle) == STAR:
                name = engine.proc_names[i]
                return Violation(
                    message=(
                        f"{name} holds * for {policy.handle} but is not in "
                        f"the allowed set ({', '.join(policy.allowed)})"
                    ),
                    trace=expl.trace_to(sid),
                    process=name,
                )
    return None


def _eval_declassifier(
    policy: A.MandatoryDeclassifier,
    engine: Engine,
    sub_expl_for: Any,
) -> Optional[Violation]:
    """Re-explore with declassifier edges removed; any delivery carrying
    the handle above the bound into the sink is then an undeclared flow."""
    topo = engine.topology
    handle = _resolve_handle(topo, policy.handle)
    if handle is None:
        return Violation(message=f"unknown handle {policy.handle!r} in policy")
    sub_expl = sub_expl_for(handle)
    sub = sub_expl.engine
    sinks = set(_match_procs(sub, policy.sink))
    if not sinks:
        return Violation(message=f"policy matches no process: {policy.sink!r}")
    store = sub.store
    bound = policy.max_level
    for sid, state in enumerate(sub_expl.order):
        for edge in sub.edges:
            if edge.r_idx not in sinks:
                continue
            firing = sub.fire(state, edge)
            if not firing.delivered:
                continue
            level = store.label(firing.es)(handle)
            if level > bound:
                return Violation(
                    message=(
                        f"edge {edge.name!r} delivers {policy.handle} at "
                        f"{level_name(level)} (> {level_name(bound)}) into "
                        f"{edge.receiver} without passing a declassifier"
                    ),
                    trace=sub_expl.trace_to(sid, extra=edge),
                    process=edge.receiver,
                    edge=edge.name,
                )
    return None


def _eval_dead_edges(
    policy: A.DeadEdges, engine: Engine, expl: Exploration
) -> Optional[Violation]:
    dead = []
    for edge in engine.edges:
        if policy.covers(edge.name) and not expl.edge_delivered[edge.idx]:
            reason = expl.edge_last_drop[edge.idx] or "never attempted"
            dead.append(f"{edge.name} ({reason})")
    if dead:
        return Violation(
            message="edges can never deliver in any reachable state: "
            + "; ".join(dead)
        )
    return None


# -- the report -------------------------------------------------------------------


@dataclass
class CheckReport:
    topology: Topology
    results: List[PolicyResult]
    states: int
    transitions: int
    dead_edges: List[Tuple[str, str]]
    elapsed: float
    truncated: bool
    labels_interned: int

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    def violations(self) -> List[PolicyResult]:
        return [result for result in self.results if not result.ok]

    def format(self) -> str:
        topo = self.topology
        lines = [
            f"asbcheck: topology {topo.name!r} — {len(topo.processes)} processes, "
            f"{len(topo.edges)} edges; {self.states} states explored "
            f"({self.labels_interned} labels interned) in {self.elapsed:.2f}s"
        ]
        if self.truncated:
            lines.append("  WARNING: state space truncated at the max-states cap")
        for result in self.results:
            status = "ok" if result.ok else "VIOLATED"
            lines.append(f"  [{status:8}] {result.policy.describe()}")
            if result.violation is not None:
                lines.append(
                    "   " + result.violation.format(topo).replace("\n", "\n   ")
                )
        if self.dead_edges:
            lines.append("  dead edges (informational):")
            for name, reason in self.dead_edges:
                lines.append(f"    {name}: {reason}")
        bad = len(self.violations())
        noun = "policy" if len(self.results) == 1 else "policies"
        lines.append(
            f"asbcheck: {len(self.results)} {noun} checked, {bad} violated"
        )
        return "\n".join(lines)

    def to_json(self) -> Dict[str, Any]:
        topo = self.topology
        return {
            "version": 1,
            "tool": "asbcheck",
            "topology": topo.name,
            "ok": self.ok,
            "stats": {
                "processes": len(topo.processes),
                "edges": len(topo.edges),
                "states": self.states,
                "transitions": self.transitions,
                "labels_interned": self.labels_interned,
                "elapsed_s": round(self.elapsed, 4),
                "truncated": self.truncated,
            },
            "dead_edges": [
                {"edge": name, "reason": reason} for name, reason in self.dead_edges
            ],
            "policies": [
                {
                    **A.policy_to_json(result.policy),
                    "ok": result.ok,
                    "violation": (
                        None
                        if result.violation is None
                        else {
                            "message": result.violation.message,
                            "process": result.violation.process,
                            "edge": result.violation.edge,
                            "trace": [
                                step.to_json(topo) for step in result.violation.trace
                            ],
                        }
                    ),
                }
                for result in self.results
            ],
        }


def run_check(
    topology: Topology,
    policies: Optional[Sequence[A.Policy]] = None,
    exact: bool = False,
    max_states: int = 200_000,
) -> CheckReport:
    """Explore *topology* and verify *policies* (default: the ones
    embedded in the topology document)."""
    start = time.perf_counter()
    if policies is None:
        policies = A.policies_from_json(topology.policies)
    policies = list(policies)
    engine = Engine(topology)
    # One exploration per policy handle (see the module docstring), all
    # sharing the engine's label store and fire memo.  Exact mode ignores
    # the watched set, so a single exploration serves every policy.
    explorations: Dict[Optional[int], Exploration] = {}
    sub_explorations: Dict[Optional[int], Exploration] = {}
    sub_engines: List[Optional[Engine]] = [None]

    def explo(handle: Optional[int]) -> Exploration:
        key = None if exact else handle
        got = explorations.get(key)
        if got is None:
            watched = set() if key is None else {key}
            got = explorations[key] = Exploration(
                engine, watched, exact=exact, max_states=max_states
            )
        return got

    def sub_explo(handle: Optional[int]) -> Exploration:
        key = None if exact else handle
        got = sub_explorations.get(key)
        if got is None:
            if sub_engines[0] is None:
                sub_engines[0] = Engine(
                    topology, store=engine.store, skip_declassifiers=True
                )
            watched = set() if key is None else {key}
            got = sub_explorations[key] = Exploration(
                sub_engines[0], watched, exact=exact, max_states=max_states
            )
        return got

    live = explo(None)  # the fully-eager exploration: maximal deliverability
    results: List[PolicyResult] = []
    for policy in policies:
        handle = _resolve_handle(topology, getattr(policy, "handle", ""))
        if isinstance(policy, A.Isolation):
            violation = _eval_isolation(policy, engine, explo(handle))
        elif isinstance(policy, A.CapabilityConfinement):
            violation = _eval_confinement(policy, engine, explo(handle))
        elif isinstance(policy, A.MandatoryDeclassifier):
            violation = _eval_declassifier(policy, engine, sub_explo)
        elif isinstance(policy, A.DeadEdges):
            violation = _eval_dead_edges(policy, engine, live)
        else:  # pragma: no cover - policy_from_json rejects unknown kinds
            violation = Violation(message=f"unsupported policy: {policy!r}")
        results.append(PolicyResult(policy=policy, ok=violation is None, violation=violation))
    dead = [
        (edge.name, live.edge_last_drop[edge.idx] or "never attempted")
        for edge in engine.edges
        if not live.edge_delivered[edge.idx]
    ]
    everything = list(explorations.values()) + list(sub_explorations.values())
    return CheckReport(
        topology=topology,
        results=results,
        states=sum(len(e.order) for e in everything),
        transitions=sum(e.transitions for e in everything),
        dead_edges=dead,
        elapsed=time.perf_counter() - start,
        truncated=any(e.truncated for e in everything),
        labels_interned=len(engine.store),
    )


# -- asblint ↔ asbcheck linking ----------------------------------------------------


def _qualname_matches(a: str, b: str) -> bool:
    if not a or not b:
        return False
    return a == b or a.endswith("." + b) or b.endswith("." + a)


def link_lint_findings(reports: Sequence[Any], topology: Topology) -> List[Any]:
    """Attach the asbcheck edges each asblint finding feeds.

    An ASB002 taint-creep finding says one program's send implicitly
    contaminates its receiver; the topology says *which* system edge that
    send becomes (matched through the program qualname recorded in
    ``EdgeSpec.via``).  Returns the reports with ``related_edges`` filled
    in on matching diagnostics."""
    from dataclasses import replace

    for report in reports:
        for attr in ("diagnostics", "suppressed"):
            updated = []
            for diag in getattr(report, attr):
                edges = tuple(
                    edge.name
                    for edge in topology.edges
                    if _qualname_matches(edge.via, diag.function)
                )
                if edges:
                    diag = replace(diag, related_edges=edges)
                updated.append(diag)
            setattr(report, attr, updated)
    return list(reports)
