"""The ``python -m repro`` command line.

Subcommands::

    python -m repro                # the guided tour (default)
    python -m repro tour
    python -m repro analyze <paths...> [--select RULES]
    python -m repro check [--topology FILE | --okws] [--policy FILE]
    python -m repro explore [--topology FILE | --okws] [--dpor|--exhaustive]
                            [--depth N] [--shrink/--no-shrink] [--plan FILE]
    python -m repro run [--sanitize] [--strict/--no-strict] [--trace]
    python -m repro chaos --plan FILE [--seeds N,N...]
    python -m repro crashcheck [--broken-recovery] [--plan-out FILE]
                               [--replay PLAN] [--wal FILE] [--dir DIR]
    python -m repro bench [--quick] [--only FIGS] [--scale] [--guard BASELINE...]
    python -m repro bench --validate <BENCH_*.json...>

Every subcommand shares one option surface (a common argparse parent):

- ``--format text|json|sarif`` — report format.  ``sarif`` (GitHub
  code-scanning 2.1.0) is supported by the analysis commands
  (``analyze``/``check``/``explore``/``crashcheck``); elsewhere it is a
  usage error.
- ``--out PATH`` — where output artifacts land: the report file for
  ``analyze``/``check``/``run``, the chaos-report/v1 document for
  ``chaos``, the output *directory* for ``bench`` (default ``.``) and
  for ``explore`` counterexamples.
- ``--seed N`` — the deterministic seed wherever one applies
  (``explore`` fault draws, ``chaos`` campaigns); accepted and ignored
  by the fully deterministic commands so scripts can pass it uniformly.

And one exit-code convention: **0** clean, **1** a violation, failing
campaign, or guarded regression, **2** usage error.  Pre-unification
spellings (``--json`` on the analysis commands, ``chaos --json FILE``)
remain as hidden aliases.

``analyze`` runs the asblint static pass and exits 1 if any finding
survives the pragma filter; ``--topology`` links each finding to the
asbcheck edges the flagged program feeds.  ``check`` runs the asbcheck
whole-system model checker over a topology document (or the shipped
OKWS topology extracted from a live run) and exits 1 on any policy
violation, printing shortest counterexample traces.  ``explore`` runs
the asbsched schedule-space explorer: it animates the topology on the
real kernel and drives it through alternative interleavings (DPOR by
default), exits 1 on any schedule that breaks the policy battery or the
differential sanitizer, and shrinks that schedule to a minimal
byte-identically replayable counterexample (``--out`` writes the
schedule/v1 + faultplan/v1 pair; ``--replay`` re-executes one).
``run`` drives the OKWS demo workload on a live kernel; with
``--sanitize`` every IPC is differentially checked against the naive
label operators.  ``crashcheck`` records a write workload into the
``wal/v1`` store, enumerates every crash point (record boundaries and
all torn-tail prefixes), and proves recovery preserves durability and
IFC monotonicity at each one — ``--broken-recovery`` swaps in the naive
redo recovery, which must be caught and minimized to a byte-identically
replayable ``faultplan/v1`` counterexample (``--plan-out``/``--replay``).  ``bench`` regenerates the paper's figures headlessly
as ``BENCH_<figure>.json`` documents; ``--scale`` selects the sharded
``repro.cluster`` scaling bench (DESIGN.md §13), ``--validate`` checks
existing documents instead, and ``--guard`` fails on regressions
against committed baselines.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence, Set


def _cmd_tour() -> int:
    from repro.core.labels import Label
    from repro.core.levels import L1, L2, L3  # noqa: F401  (tour narration)
    from repro.okws import ServiceConfig, launch
    from repro.okws.services import notes_handler, session_cache_handler
    from repro.sim.runner import run_memory_experiment, run_session_sweep
    from repro.sim.workload import HttpClient

    print("asbestos-repro — Labels and Event Processes (SOSP 2005)")
    print("=" * 64)

    print("\n[1/3] the label lattice")
    uT = 0x1001
    tainted, clearance = Label({uT: L3}, L1), Label({uT: L3}, L2)
    print(f"   {{uT 3, 1}} ⊑ {{uT 3, 2}} : {tainted <= clearance}")
    print(
        f"   {{uT 3, 1}} ⊑ {{2}}       : {tainted <= Label({}, L2)}"
        "  (default receive refuses full taint)"
    )

    print("\n[2/3] OKWS: kernel-enforced per-user isolation")
    site = launch(
        services=[
            ServiceConfig("cache", session_cache_handler),
            ServiceConfig("notes", notes_handler),
        ],
        users=[("alice", "pw-a"), ("bob", "pw-b")],
        schema=["CREATE TABLE notes (author TEXT, text TEXT)"],
    )
    client = HttpClient(site)
    client.request("alice", "pw-a", "notes", body="alice's secret", args={"op": "add"})
    client.request("bob", "pw-b", "notes", body="bob's secret", args={"op": "add"})
    a = client.request("alice", "pw-a", "notes", args={"op": "list"}).body
    b = client.request("bob", "pw-b", "notes", args={"op": "list"}).body
    print(f"   alice sees {a}; bob sees {b}")
    print(
        "   flows silently dropped by the kernel so far: "
        f"{site.kernel.drop_log.count('label-check')}"
    )

    print("\n[3/3] the evaluation in one line each")
    mem = run_memory_experiment([0, 200])
    slope = (mem[1].total_pages - mem[0].total_pages) / 200
    print(f"   memory: {slope:.2f} pages per cached session (paper: ~1.5)")
    point = run_session_sweep([1], min_connections=32)[0]
    print(
        f"   throughput: {point.throughput:.0f} conn/s at 1 session "
        "(paper regime: OKWS ≈ half of Mod-Apache, above Apache)"
    )
    print("\nSee examples/ for full walkthroughs and benchmarks/ for the figures.")
    return 0


def _emit(text: str, out: Optional[str]) -> None:
    """Print *text*, or write it to *out* when given (the unified
    ``--out`` behaviour for report-producing commands)."""
    if out:
        with open(out, "w") as fh:
            fh.write(text)
            if not text.endswith("\n"):
                fh.write("\n")
        print(f"wrote {out}")
    else:
        print(text)


def _reject_sarif(command: str, args: argparse.Namespace) -> bool:
    """SARIF only makes sense for the code-scanning commands; everywhere
    else it is a usage error (exit 2), not a silent fallback."""
    if getattr(args, "format", "text") == "sarif":
        print(
            f"repro {command}: --format sarif is only supported by "
            "analyze/check/explore/crashcheck",
            file=sys.stderr,
        )
        return True
    return False


def _parse_select(spec: Optional[str]) -> Optional[Set[str]]:
    if not spec:
        return None
    from repro.analysis import rules as R

    selected: Set[str] = set()
    for key in spec.split(","):
        key = key.strip()
        if not key:
            continue
        rule = R.resolve_rule(key)
        if rule is None:
            print(f"repro analyze: unknown rule {key!r}", file=sys.stderr)
            raise SystemExit(2)
        selected.add(rule.id)
    return selected


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis import asblint
    from repro.analysis import rules as R

    if args.list_rules:
        for rule in R.RULES:
            print(f"{rule.id}  {rule.name:<20} {rule.summary}")
        return 0
    if not args.paths:
        print("repro analyze: no paths given", file=sys.stderr)
        return 2
    try:
        reports = asblint.analyze_paths(args.paths, _parse_select(args.select))
    except FileNotFoundError as err:
        print(f"repro analyze: {err}", file=sys.stderr)
        return 2
    if args.topology:
        from repro.analysis import check as C
        from repro.analysis import model as M

        try:
            reports = C.link_lint_findings(reports, M.load(args.topology))
        except (OSError, ValueError, KeyError) as err:
            print(f"repro analyze: --topology: {err}", file=sys.stderr)
            return 2
    fmt = "json" if args.json else args.format
    if fmt == "json":
        _emit(asblint.render_json(reports), args.out)
    elif fmt == "sarif":
        from repro.analysis import sarif

        _emit(sarif.render(sarif.asblint_sarif(reports)), args.out)
    else:
        _emit(asblint.format_reports(reports, verbose=args.verbose), args.out)
    return 1 if asblint.findings(reports) else 0


def _cmd_check(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.analysis import check as C
    from repro.analysis import model as M
    from repro.policies.assertions import policies_from_json

    if bool(args.topology) == bool(args.okws):
        print(
            "repro check: give exactly one of --topology FILE or --okws",
            file=sys.stderr,
        )
        return 2
    if args.okws:
        from repro.okws.topology import record_okws_topology

        topology = record_okws_topology()
    else:
        try:
            topology = M.load(args.topology)
        except (OSError, ValueError, KeyError) as err:
            print(f"repro check: {err}", file=sys.stderr)
            return 2
    if args.dump_topology:
        Path(args.dump_topology).write_text(topology.dumps(), encoding="utf-8")

    policies = None
    if args.policy:
        try:
            doc = json.loads(Path(args.policy).read_text(encoding="utf-8"))
            items = doc.get("policies", []) if isinstance(doc, dict) else doc
            policies = policies_from_json(items)
        except (OSError, ValueError, KeyError) as err:
            print(f"repro check: --policy: {err}", file=sys.stderr)
            return 2

    try:
        report = C.run_check(
            topology, policies, exact=args.exact, max_states=args.max_states
        )
    except ValueError as err:
        print(f"repro check: {err}", file=sys.stderr)
        return 2

    if getattr(args, "emit_proofs", None):
        from repro.analysis import proofs as P

        if not report.ok:
            # A failing check means some edge is *not* always-allowed;
            # shipping proofs for the rest would mask the finding.
            print(
                "repro check: --emit-proofs: check failed, no proofs written",
                file=sys.stderr,
            )
        else:
            try:
                doc = P.compile_proofs(topology, max_states=args.max_states)
            except P.ProofError as err:
                print(f"repro check: --emit-proofs: {err}", file=sys.stderr)
                return 2
            P.write_proofs(doc, args.emit_proofs)
            stats = doc["stats"]
            print(
                f"repro check: wrote {args.emit_proofs}: "
                f"{stats['deliver_stubs']} deliver + {stats['send_stubs']} "
                f"send stubs from {stats['proven_edges']}/{stats['edges']} "
                f"proven edges",
                file=sys.stderr,
            )

    fmt = "json" if args.json else args.format
    if fmt == "json":
        _emit(json.dumps(report.to_json(), indent=2), args.out)
    elif fmt == "sarif":
        from repro.analysis import sarif

        _emit(sarif.render(sarif.check_sarif(report)), args.out)
    else:
        _emit(report.format(), args.out)
    return 0 if report.ok else 1


def _cmd_explore(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.analysis import model as M
    from repro.analysis import sched as S
    from repro.faults.plan import PlanError, load_plan
    from repro.policies.assertions import policies_from_json

    if bool(args.topology) == bool(args.okws):
        print(
            "repro explore: give exactly one of --topology FILE or --okws",
            file=sys.stderr,
        )
        return 2

    plan = None
    if args.plan:
        try:
            plan = load_plan(args.plan)
        except (OSError, PlanError, ValueError) as err:
            print(f"repro explore: --plan: {err}", file=sys.stderr)
            return 2
    policies = None
    if args.policy:
        try:
            doc = json.loads(Path(args.policy).read_text(encoding="utf-8"))
            items = doc.get("policies", []) if isinstance(doc, dict) else doc
            policies = policies_from_json(items)
        except (OSError, ValueError, KeyError) as err:
            print(f"repro explore: --policy: {err}", file=sys.stderr)
            return 2

    try:
        if args.okws:
            scenario = S.okws_scenario(
                plan=plan,
                fault_seed=args.seed,
                max_steps=args.max_steps,
                policies=policies,
            )
        else:
            scenario = S.scenario_from_topology(
                M.load(args.topology),
                plan=plan,
                fault_seed=args.seed,
                max_steps=args.max_steps,
                policies=policies,
            )
    except (OSError, ValueError, KeyError, S.SchedError) as err:
        print(f"repro explore: {err}", file=sys.stderr)
        return 2

    if args.replay:
        try:
            decisions = S.load_schedule(args.replay)
        except (OSError, ValueError, S.SchedError) as err:
            print(f"repro explore: --replay: {err}", file=sys.stderr)
            return 2
        run = S.replay_schedule(scenario, decisions)
        print(
            f"repro explore: replayed {len(decisions)} decision(s): "
            f"{len(run.steps)} step(s), "
            f"{'VIOLATING' if run.violating else 'clean'}"
        )
        for breach in run.breaches:
            print(f"  BREACH [{breach.kind}] {breach.message}")
        for violation in run.sanitizer_violations:
            print(f"  SANITIZER {violation}")
        return 1 if run.violating else 0

    report = S.explore(
        scenario,
        mode="exhaustive" if args.exhaustive else "dpor",
        depth=args.depth,
        max_schedules=args.max_schedules,
        time_budget=args.time_budget,
        shrink=args.shrink,
    )

    out_paths = []
    if args.out and not report.ok:
        out_paths = S.write_counterexample(report, scenario, args.out)

    fmt = "json" if args.json else args.format
    if fmt == "json":
        print(json.dumps(report.to_json(), indent=2))
    elif fmt == "sarif":
        from repro.analysis import sarif

        print(sarif.render(sarif.sched_sarif(report)))
    else:
        print(report.format())
        for path in out_paths:
            print(f"repro explore: wrote {path}")
    return 0 if report.ok else 1


def _cmd_run(args: argparse.Namespace) -> int:
    if _reject_sarif("run", args):
        return 2
    # The kernel is constructed deep inside okws.launch; the environment
    # variable is how the sanitizer flag crosses that distance (and how a
    # whole test suite is swept under the sanitizer, cf. CI).
    if args.sanitize:
        os.environ["REPRO_SANITIZE"] = "1"
        os.environ["REPRO_SANITIZE_STRICT"] = "1" if args.strict else "0"

    from repro.analysis.sanitizer import SanitizerViolation
    from repro.okws import ServiceConfig, launch
    from repro.okws.services import notes_handler, session_cache_handler
    from repro.sim.trace import FlowTracer
    from repro.sim.workload import HttpClient

    try:
        site = launch(
            services=[
                ServiceConfig("cache", session_cache_handler),
                ServiceConfig("notes", notes_handler),
            ],
            users=[("alice", "pw-a"), ("bob", "pw-b")],
            schema=["CREATE TABLE notes (author TEXT, text TEXT)"],
        )
        tracer = FlowTracer(site.kernel) if args.trace else None
        client = HttpClient(site)
        client.request("alice", "pw-a", "notes", body="alice note", args={"op": "add"})
        client.request("bob", "pw-b", "notes", body="bob note", args={"op": "add"})
        alice = client.request("alice", "pw-a", "notes", args={"op": "list"})
        bob = client.request("bob", "pw-b", "notes", args={"op": "list"})
    except SanitizerViolation as violation:
        print(f"repro run: {violation}", file=sys.stderr)
        return 1
    sanitizer = site.kernel.sanitizer
    violations = list(sanitizer.violations) if sanitizer is not None else []
    if args.format == "json":
        import json

        doc = {
            "alice": alice.body,
            "bob": bob.body,
            "drops": {"label-check": site.kernel.drop_log.count("label-check")},
            "sanitized": sanitizer is not None,
            "sanitizer_violations": len(violations),
        }
        _emit(json.dumps(doc, indent=2, sort_keys=True), args.out)
        return 1 if violations else 0
    lines = [
        f"alice sees {alice.body}; bob sees {bob.body}",
        "kernel drops so far: "
        f"label-check={site.kernel.drop_log.count('label-check')}",
    ]
    if tracer is not None:
        lines.append(tracer.format(last=args.trace_last))
    if sanitizer is not None:
        lines.append(sanitizer.summary())
        lines.extend(v.format() for v in violations)
    _emit("\n".join(lines), args.out)
    return 1 if violations else 0


def _cmd_crashcheck(args: argparse.Namespace) -> int:
    import json
    import tempfile

    from repro.faults.plan import PlanError
    from repro.store import crashcheck as CC

    with tempfile.TemporaryDirectory(prefix="repro-crashcheck-") as scratch:
        workdir = args.dir or scratch
        os.makedirs(workdir, exist_ok=True)

        if args.replay:
            try:
                doc = CC.load_counterexample(args.replay)
                result = CC.replay_counterexample(doc, workdir)
            except (OSError, PlanError, ValueError, KeyError) as err:
                print(f"repro crashcheck: --replay: {err}", file=sys.stderr)
                return 2
            if args.format == "json":
                _emit(json.dumps(result.to_json(), indent=2, sort_keys=True), args.out)
            elif args.format == "sarif":
                print(
                    "repro crashcheck: --format sarif applies to sweeps, "
                    "not --replay",
                    file=sys.stderr,
                )
                return 2
            else:
                print(result.format_text())
            return 1 if result.reproduced else 0

        if args.wal:
            try:
                data = open(args.wal, "rb").read()
            except OSError as err:
                print(f"repro crashcheck: --wal: {err}", file=sys.stderr)
                return 2
            boot = args.boot_records
        else:
            store_path = os.path.join(workdir, "crashcheck-wal.log")
            try:
                data, boot = CC.record_workload(store_path)
            except ValueError as err:
                print(f"repro crashcheck: {err}", file=sys.stderr)
                return 2
        try:
            report = CC.sweep(
                data, boot_records=boot, label_check=not args.broken_recovery
            )
        except (ValueError, CC.wal.WalError) as err:
            print(f"repro crashcheck: {err}", file=sys.stderr)
            return 2

    if report.plan is not None and args.plan_out:
        with open(args.plan_out, "w", encoding="utf-8") as fh:
            json.dump(report.plan, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"repro crashcheck: wrote minimized plan to {args.plan_out}")
    if args.format == "json":
        _emit(json.dumps(report.to_json(), indent=2, sort_keys=True), args.out)
    elif args.format == "sarif":
        from repro.analysis import sarif

        _emit(sarif.render(sarif.crashcheck_sarif(report)), args.out)
    else:
        _emit(report.format_text(), args.out)
    return 0 if report.ok else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    import json

    from repro.obs import bench

    if _reject_sarif("bench", args):
        return 2
    if args.validate:
        results = bench.validate_files(args.validate)
        bad = False
        for path, problems in results.items():
            if problems:
                bad = True
                for problem in problems:
                    print(f"{path}: {problem}", file=sys.stderr)
            else:
                print(f"{path}: ok")
        return 1 if bad else 0

    only = None
    if args.only:
        only = [f.strip() for f in args.only.split(",") if f.strip()]
    if args.scale:
        # --scale selects the cluster scaling figure; combined with
        # --only it adds "scale" to the selection.
        only = (only or []) + ["scale"] if only else ["scale"]
    out_dir = args.out or "."
    try:
        paths = bench.run_bench(out_dir=out_dir, quick=args.quick, only=only)
    except ValueError as err:
        print(f"repro bench: {err}", file=sys.stderr)
        return 2
    guard_problems: Optional[List[str]] = None
    if args.guard:
        guard_problems = bench.guard_files(
            args.guard, out_dir, tolerance=args.tolerance
        )
    if args.format == "json":
        print(
            json.dumps(
                {"written": paths, "guard_problems": guard_problems},
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(f"repro bench: {len(paths)} document(s) written")
    if guard_problems is not None:
        if guard_problems:
            for problem in guard_problems:
                print(f"repro bench: guard: {problem}", file=sys.stderr)
            print(
                f"repro bench: guard FAILED ({len(guard_problems)} regression(s) "
                f"beyond {args.tolerance:.0%})",
                file=sys.stderr,
            )
            return 1
        if args.format != "json":
            print(
                f"repro bench: guard passed ({len(args.guard)} baseline(s) "
                f"within {args.tolerance:.0%})"
            )
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json

    from repro.faults.campaign import run_campaign
    from repro.faults.plan import PlanError, load_plan

    if _reject_sarif("chaos", args):
        return 2
    try:
        plan = load_plan(args.plan)
    except (OSError, PlanError, ValueError) as err:
        print(f"repro chaos: {err}", file=sys.stderr)
        return 2

    quiet = args.format == "json"
    seeds = args.seeds if args.seeds is not None else [args.seed]

    def _store_for(seed):
        # Each campaign (and each determinism repeat) recovers from an
        # empty store; a reused file would replay the previous run's log.
        if args.store is None:
            return None
        path = f"{args.store}.seed-{seed}"
        for stale in (path, path + ".crash"):
            if os.path.exists(stale):
                os.unlink(stale)
        return path

    results = []
    for seed in seeds:
        result = run_campaign(
            plan,
            seed=seed,
            users=args.users,
            rounds=args.rounds,
            concurrency=args.concurrency,
            min_completion=args.min_completion,
            store_path=_store_for(seed),
        )
        if args.repeat > 1:
            # Determinism audit: the same (plan, seed) must replay the
            # identical fault event log, byte for byte.
            for _ in range(args.repeat - 1):
                again = run_campaign(
                    plan,
                    seed=seed,
                    users=args.users,
                    rounds=args.rounds,
                    concurrency=args.concurrency,
                    min_completion=args.min_completion,
                    store_path=_store_for(seed),
                )
                if again.events_json != result.events_json:
                    print(
                        f"repro chaos: seed {seed} is NOT deterministic "
                        "(fault logs differ between identical runs)",
                        file=sys.stderr,
                    )
                    return 1
            result.checks["deterministic"] = True
        results.append(result)
        if not quiet:
            print(f"== chaos campaign: plan={args.plan} seed={seed} ==")
            for line in result.summary_lines():
                print(f"  {line}")

    if quiet or args.out:
        doc = {
            "schema": "chaos-report/v1",
            "plan_path": args.plan,
            "campaigns": [r.to_json() for r in results],
        }
        _emit(json.dumps(doc, indent=2, sort_keys=True), args.out)

    failed = [r for r in results if not r.passed]
    if failed:
        print(
            f"repro chaos: {len(failed)}/{len(results)} campaign(s) FAILED",
            file=sys.stderr,
        )
        return 1
    if not quiet:
        print(f"repro chaos: {len(results)} campaign(s) passed")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Asbestos labels & event processes reproduction "
        "(exit codes: 0 clean, 1 violation or regression, 2 usage error)",
    )
    sub = parser.add_subparsers(dest="command")

    # The shared option surface: every subcommand accepts the same
    # --format/--out/--seed spellings (see the module docstring for the
    # per-command meaning of --out).
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (sarif: GitHub code-scanning schema; "
        "analyze/check/explore only)",
    )
    common.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="output location: report file (analyze/check/run/chaos) or "
        "directory (bench documents, explore counterexamples)",
    )
    common.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="N",
        help="deterministic seed where one applies (explore fault draws, "
        "chaos campaigns); ignored by fully deterministic commands",
    )

    sub.add_parser(
        "tour", parents=[common], help="the two-minute guided tour (default)"
    )

    analyze = sub.add_parser(
        "analyze",
        parents=[common],
        help="run the asblint static label-flow checker",
    )
    analyze.add_argument("paths", nargs="*", help="files or directories to analyze")
    analyze.add_argument(
        "--json", action="store_true", help=argparse.SUPPRESS
    )  # legacy alias for --format json
    analyze.add_argument(
        "--topology",
        metavar="FILE",
        help="asbcheck topology document; findings cite the edges they feed",
    )
    analyze.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids/names to run (default: all)",
    )
    analyze.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    analyze.add_argument(
        "-v", "--verbose", action="store_true", help="also list analyzed programs"
    )

    check = sub.add_parser(
        "check",
        parents=[common],
        help="run the asbcheck whole-system model checker",
    )
    check.add_argument(
        "--topology", metavar="FILE", help="topology document (topology/v1 JSON)"
    )
    check.add_argument(
        "--okws",
        action="store_true",
        help="extract and check the shipped OKWS topology from a live run",
    )
    check.add_argument(
        "--policy",
        metavar="FILE",
        help="policy JSON (list or {\"policies\": [...]}); default: the "
        "topology's embedded battery",
    )
    check.add_argument(
        "--json", action="store_true", help=argparse.SUPPRESS
    )  # legacy alias for --format json
    check.add_argument(
        "--exact",
        action="store_true",
        help="disable the state-space reduction (small topologies only)",
    )
    check.add_argument(
        "--max-states",
        type=int,
        default=200_000,
        metavar="N",
        help="cap per exploration before truncating (default: 200000)",
    )
    check.add_argument(
        "--dump-topology",
        metavar="FILE",
        help="also write the checked topology document to FILE",
    )
    check.add_argument(
        "--emit-proofs",
        metavar="FILE",
        dest="emit_proofs",
        help="compile the always-allowed edges into a proofs/v1 verified-"
        "flow document at FILE (consumed by REPRO_ELIDE=1, DESIGN.md §15); "
        "only written when the check passes",
    )

    explore = sub.add_parser(
        "explore",
        parents=[common],
        help="run the asbsched schedule-space explorer over a topology",
    )
    explore.add_argument(
        "--topology", metavar="FILE", help="topology document (topology/v1 JSON)"
    )
    explore.add_argument(
        "--okws",
        action="store_true",
        help="animate and explore the shipped OKWS topology",
    )
    explore.add_argument(
        "--plan",
        metavar="FILE",
        help="faultplan/v1 JSON; fractional rules become explored branches",
    )
    explore.add_argument(
        "--policy",
        metavar="FILE",
        help="policy JSON (list or {\"policies\": [...]}); default: the "
        "topology's embedded battery",
    )
    explore.add_argument(
        "--max-steps",
        type=int,
        default=4000,
        metavar="N",
        help="per-schedule kernel step budget (default: 4000)",
    )
    explore.add_argument(
        "--depth",
        type=int,
        default=None,
        metavar="N",
        help="only the first N choice points branch (default: unbounded)",
    )
    explore.add_argument(
        "--exhaustive",
        action="store_true",
        help="branch every option at every choice point instead of DPOR",
    )
    explore.add_argument(
        "--dpor",
        dest="exhaustive",
        action="store_false",
        help="dynamic partial-order reduction (the default)",
    )
    explore.add_argument(
        "--no-shrink",
        dest="shrink",
        action="store_false",
        help="report the first violating schedule without minimizing it",
    )
    explore.add_argument(
        "--max-schedules",
        type=int,
        default=20_000,
        metavar="N",
        help="schedule budget before truncating (default: 20000)",
    )
    explore.add_argument(
        "--time-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget before truncating (default: none)",
    )
    explore.add_argument(
        "--replay",
        metavar="FILE",
        help="re-execute one schedule/v1 file instead of exploring",
    )
    explore.add_argument(
        "--json", action="store_true", help=argparse.SUPPRESS
    )  # legacy alias for --format json
    explore.set_defaults(exhaustive=False, shrink=True)

    run = sub.add_parser(
        "run", parents=[common], help="run the OKWS demo workload"
    )
    run.add_argument(
        "--sanitize",
        action="store_true",
        help="cross-check every IPC against the naive label operators",
    )
    run.add_argument(
        "--no-strict",
        dest="strict",
        action="store_false",
        help="record sanitizer violations instead of raising on the first",
    )
    run.add_argument(
        "--trace", action="store_true", help="print the label-flow transcript"
    )
    run.add_argument(
        "--trace-last",
        type=int,
        default=None,
        metavar="N",
        help="with --trace, only the last N events",
    )
    run.set_defaults(strict=True)

    chaos = sub.add_parser(
        "chaos",
        parents=[common],
        help="run a seeded fault-injection campaign against the OKWS site",
    )
    chaos.add_argument(
        "--plan",
        required=True,
        metavar="FILE",
        help="faultplan/v1 JSON (see examples/faultplans/)",
    )
    chaos.add_argument(
        "--seeds",
        type=lambda s: [int(x) for x in s.split(",") if x.strip()],
        default=None,
        metavar="N[,N...]",
        help="injector seeds, one campaign each (default: the one --seed)",
    )
    chaos.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="back ok-dbproxy with a wal/v1 store (one fresh file per "
        "seed at PATH.seed-N); crashes then exercise log recovery",
    )
    chaos.add_argument(
        "--users", type=int, default=8, metavar="N", help="site users (default: 8)"
    )
    chaos.add_argument(
        "--rounds",
        type=int,
        default=4,
        metavar="N",
        help="requests per user (default: 4)",
    )
    chaos.add_argument(
        "--concurrency",
        type=int,
        default=8,
        metavar="N",
        help="closed-loop wave size (default: 8)",
    )
    chaos.add_argument(
        "--min-completion",
        type=float,
        default=0.9,
        metavar="F",
        help="liveness floor as a fraction (default: 0.9)",
    )
    chaos.add_argument(
        "--repeat",
        type=int,
        default=2,
        metavar="N",
        help="runs per seed for the determinism audit (default: 2; 1 skips it)",
    )
    chaos.add_argument(
        "--json", dest="out", metavar="FILE", help=argparse.SUPPRESS
    )  # legacy alias for --out FILE

    crashcheck = sub.add_parser(
        "crashcheck",
        parents=[common],
        help="enumerate every crash point of the store's write-ahead log "
        "and verify recovery (durability + IFC monotonicity)",
    )
    crashcheck.add_argument(
        "--broken-recovery",
        action="store_true",
        help="check the deliberately broken recovery (naive redo, no "
        "label check) instead — must exit 1 with a minimized plan",
    )
    crashcheck.add_argument(
        "--replay",
        metavar="FILE",
        help="replay one minimized counterexample plan live instead of "
        "sweeping; exits 1 when it reproduces byte-identically",
    )
    crashcheck.add_argument(
        "--dir",
        metavar="DIR",
        help="directory for the recorded/replayed store files "
        "(default: a temporary directory)",
    )
    crashcheck.add_argument(
        "--wal",
        metavar="FILE",
        help="sweep an existing wal/v1 image instead of recording the "
        "board workload",
    )
    crashcheck.add_argument(
        "--boot-records",
        type=int,
        default=0,
        metavar="N",
        help="with --wal, how many leading records are boot-phase "
        "(excluded from plan minimization; default: 0)",
    )
    crashcheck.add_argument(
        "--plan-out",
        metavar="FILE",
        help="write the minimized replayable faultplan/v1 document here "
        "when the sweep fails",
    )

    bench = sub.add_parser(
        "bench",
        parents=[common],
        help="regenerate the paper's figures as BENCH_*.json",
    )
    # NB: no set_defaults(out=...) here — parents=[common] shares the
    # action objects, so a subparser-level default would leak into every
    # other command.  bench resolves None to "." in its handler.
    bench.add_argument(
        "--quick", action="store_true", help="CI-scale grids (tens of seconds)"
    )
    bench.add_argument(
        "--only",
        metavar="FIGS",
        help="comma-separated subset of fig6,fig7,fig8,fig9,labelops,scale",
    )
    bench.add_argument(
        "--scale",
        action="store_true",
        help="run the sharded repro.cluster scaling bench (BENCH_scale.json); "
        "combined with --only, adds it to the selection",
    )
    bench.add_argument(
        "--validate",
        nargs="+",
        metavar="FILE",
        help="validate existing BENCH_*.json files instead of running",
    )
    bench.add_argument(
        "--guard",
        nargs="+",
        metavar="BASELINE",
        help="after running, fail if any series in these committed "
        "baselines regresses beyond --tolerance in the fresh documents",
    )
    bench.add_argument(
        "--tolerance",
        type=float,
        default=0.02,
        metavar="F",
        help="allowed per-point regression for --guard (default: 0.02)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args: List[str] = list(sys.argv[1:] if argv is None else argv)
    parser = build_parser()
    namespace = parser.parse_args(args)
    if namespace.command in (None, "tour"):
        return _cmd_tour()
    if namespace.command == "analyze":
        return _cmd_analyze(namespace)
    if namespace.command == "check":
        return _cmd_check(namespace)
    if namespace.command == "explore":
        return _cmd_explore(namespace)
    if namespace.command == "run":
        return _cmd_run(namespace)
    if namespace.command == "chaos":
        return _cmd_chaos(namespace)
    if namespace.command == "crashcheck":
        return _cmd_crashcheck(namespace)
    if namespace.command == "bench":
        return _cmd_bench(namespace)
    parser.error(f"unknown command {namespace.command!r}")  # pragma: no cover
    return 2  # pragma: no cover
