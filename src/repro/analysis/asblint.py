"""asblint — the file-level driver for the static label-flow pass.

Feeds Python sources through :mod:`repro.analysis.astflow`, applies
inline suppression pragmas, and renders human- and machine-readable
reports.

Pragma syntax (the whole comment, anywhere on the line)::

    yield Send(...)             # asblint: ignore[ASB004]
    # asblint: ignore[never-pass, ASB003]
    yield Send(...)             # asblint: ignore

A pragma suppresses matching diagnostics anchored to its own line, or —
when it is a pure comment line — to the line directly below it.  Rules
may be named by id (``ASB001``) or by name (``never-pass``); a bare
``ignore`` suppresses every rule.  Pragmas that suppress nothing are
reported as stale so suppressions cannot quietly outlive the code they
excused, and a pragma naming a rule that does not exist gets an ASB000
finding (it used to silently suppress nothing — the misspelled
``ignore[ASB04]`` looked identical to a working one).
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis import rules as R
from repro.analysis.astflow import ProgramAnalyzer, discover_programs

#: Pseudo-rule id for tooling problems: parse failures, unknown pragma rules.
PARSE_ERROR = R.TOOLING

PRAGMA_RE = re.compile(r"#\s*asblint:\s*ignore(?:\[([^\]]*)\])?")

#: Directory names never worth analyzing.
SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}


class Pragma:
    """One ``# asblint: ignore[...]`` comment."""

    __slots__ = ("line", "rules", "used", "unknown")

    def __init__(
        self,
        line: int,
        rules: Optional[Set[str]],
        unknown: Optional[List[str]] = None,
    ):
        self.line = line
        #: None means "all rules"; otherwise a set of rule ids.
        self.rules = rules
        self.used = False
        #: Keys in the bracket list that resolve to no rule at all.
        self.unknown: List[str] = unknown or []

    def matches(self, rule_id: str) -> bool:
        return self.rules is None or rule_id in self.rules

    def spec(self) -> str:
        if self.rules is None:
            return ""
        return ",".join(sorted(self.rules))


def scan_pragmas(source: str) -> Dict[int, Pragma]:
    """Map line number → pragma.  Only genuine comment tokens count
    (pragma-shaped text inside strings and docstrings is ignored); a
    pragma on a comment-only line is registered for the following line."""
    pragmas: Dict[int, Pragma] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = PRAGMA_RE.search(tok.string)
            if not match:
                continue
            spec = match.group(1)
            rules: Optional[Set[str]] = None
            unknown: List[str] = []
            if spec is not None:
                rules = set()
                for key in spec.split(","):
                    key = key.strip()
                    if not key:
                        continue
                    rule = R.resolve_rule(key)
                    if rule is None:
                        # An unknown key suppresses nothing; remember it so
                        # the caller can report ASB000 instead of letting the
                        # typo masquerade as a working suppression.
                        unknown.append(key)
                    else:
                        rules.add(rule.id)
            lineno = tok.start[0]
            own_line = tok.line[: tok.start[1]].strip() == ""
            target = lineno + 1 if own_line else lineno
            pragmas[target] = Pragma(lineno, rules, unknown)
    except tokenize.TokenError:  # pragma: no cover - caller reports the parse error
        pass
    return pragmas


def analyze_source(
    source: str, path: str, select: Optional[Set[str]] = None
) -> R.FileReport:
    """Analyze one file's source text."""
    report = R.FileReport(path=path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as err:
        report.diagnostics.append(
            R.Diagnostic(
                path=path,
                line=err.lineno or 1,
                col=(err.offset or 1),
                rule=PARSE_ERROR,
                message=f"file does not parse: {err.msg}",
            )
        )
        return report

    diagnostics: List[R.Diagnostic] = []
    for program in discover_programs(tree):
        report.programs.append(program.qualname)
        diagnostics.extend(ProgramAnalyzer(program, path).run())
    if select:
        diagnostics = [d for d in diagnostics if d.rule in select]

    pragmas = scan_pragmas(source)
    for diag in diagnostics:
        pragma = pragmas.get(diag.line)
        if pragma is not None and pragma.matches(diag.rule):
            pragma.used = True
            report.suppressed.append(diag)
        else:
            report.diagnostics.append(diag)
    for pragma in pragmas.values():
        for key in pragma.unknown:
            diag = R.Diagnostic(
                path=path,
                line=pragma.line,
                col=1,
                rule=PARSE_ERROR,
                message=(
                    f"unknown rule {key!r} in asblint pragma "
                    "(suppresses nothing; see --list-rules)"
                ),
            )
            if not select or diag.rule in select:
                report.diagnostics.append(diag)
        # A pragma with unknown keys already gets ASB000; reporting it as
        # stale too would double-count the same typo.
        if not pragma.used and not pragma.unknown:
            report.unused_pragmas.append((pragma.line, pragma.spec()))
    report.diagnostics.sort(key=lambda d: (d.line, d.col, d.rule))
    report.unused_pragmas.sort()
    return report


def analyze_file(path: Union[str, Path], select: Optional[Set[str]] = None) -> R.FileReport:
    text = Path(path).read_text(encoding="utf-8")
    return analyze_source(text, str(path), select)


def iter_python_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                parts = set(candidate.parts)
                if parts & SKIP_DIRS:
                    continue
                if any(part.endswith(".egg-info") for part in candidate.parts):
                    continue
                files.append(candidate)
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise FileNotFoundError(f"not a Python file or directory: {path}")
    return files


def analyze_paths(
    paths: Sequence[Union[str, Path]], select: Optional[Set[str]] = None
) -> List[R.FileReport]:
    return [analyze_file(path, select) for path in iter_python_files(paths)]


# -- rendering ---------------------------------------------------------------------


def findings(reports: Iterable[R.FileReport]) -> List[R.Diagnostic]:
    out: List[R.Diagnostic] = []
    for report in reports:
        out.extend(report.diagnostics)
    return out


def format_reports(reports: Sequence[R.FileReport], verbose: bool = False) -> str:
    lines: List[str] = []
    total = 0
    suppressed = 0
    programs = 0
    stale: List[Tuple[str, int, str]] = []
    for report in reports:
        programs += len(report.programs)
        suppressed += len(report.suppressed)
        for diag in report.diagnostics:
            total += 1
            lines.append(diag.format())
        for line, spec in report.unused_pragmas:
            stale.append((report.path, line, spec))
    for path, line, spec in stale:
        detail = f"[{spec}]" if spec else ""
        lines.append(f"{path}:{line}:1: stale pragma: asblint: ignore{detail} suppresses nothing")
    if verbose:
        for report in reports:
            for program in report.programs:
                lines.append(f"analyzed {report.path}::{program}")
    noun = "finding" if total == 1 else "findings"
    summary = (
        f"asblint: {total} {noun} in {programs} programs "
        f"across {len(reports)} files"
    )
    if suppressed:
        summary += f" ({suppressed} suppressed by pragma)"
    lines.append(summary)
    return "\n".join(lines)


def reports_to_json(reports: Sequence[R.FileReport]) -> Dict[str, object]:
    return {
        "version": 1,
        "rules": [
            {"id": rule.id, "name": rule.name, "summary": rule.summary}
            for rule in R.RULES
        ],
        "files": [
            {
                "path": report.path,
                "programs": report.programs,
                "diagnostics": [d.to_json() for d in report.diagnostics],
                "suppressed": [d.to_json() for d in report.suppressed],
                "stale_pragmas": [
                    {"line": line, "rules": spec}
                    for line, spec in report.unused_pragmas
                ],
            }
            for report in reports
        ],
        "total_findings": sum(len(r.diagnostics) for r in reports),
    }


def render_json(reports: Sequence[R.FileReport]) -> str:
    return json.dumps(reports_to_json(reports), indent=2, sort_keys=False)
