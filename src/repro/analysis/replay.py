"""Replay asbcheck counterexample traces on the real kernel.

asbcheck proves its violations against the *model* (``repro.analysis.
check``); this module closes the loop by re-executing the offending
message sequence through ``Kernel._sys_send`` / ``Kernel._deliver`` —
the very code the model claims to mirror — and comparing outcome and
labels hop by hop.  A trace that replays identically is evidence the
model's Figure 4 is the kernel's Figure 4; a mismatch is a bug in one
of them and fails loudly.

The initial condition is set up white-box: processes are spawned with
trivial receive-loop bodies, then their label state and the topology's
ports (with their exact handles and labels) are installed directly.
The *interesting* part — send-time privilege checks, delivery checks,
contamination and decontamination effects — all runs through the
kernel's own syscall path, under the differential sanitizer if the
caller enables it.

Fork-port edges are not replayable (the model treats the event-process
base's labels as frozen; the kernel would spawn a fresh EP), and the
extractor's fold-in of mints and label changes means *extracted*
topologies replay only traces that do not depend on those folds.  The
seeded fixtures in ``examples/topologies`` are built to replay exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence

from repro.core.chunks import ChunkedLabel
from repro.core.labels import Label
from repro.kernel import syscalls as sc
from repro.kernel.ports import Port

from repro.analysis.check import TraceStep
from repro.analysis.extract import WIRE
from repro.analysis.model import Topology


class ReplayError(Exception):
    """The trace cannot be replayed at all (unknown edge, fork port)."""


@dataclass
class ReplayStep:
    """What the kernel actually did for one hop."""

    index: int
    edge: str
    delivered: bool
    drop: Optional[str]
    qs_after: Label
    qr_after: Label


@dataclass
class ReplayResult:
    steps: List[ReplayStep] = field(default_factory=list)
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def format(self) -> str:
        if self.ok:
            return f"replay: {len(self.steps)} hops, kernel agrees with the model"
        lines = [f"replay: {len(self.mismatches)} mismatch(es):"]
        lines.extend(f"  {m}" for m in self.mismatches)
        return "\n".join(lines)


def _receive_loop(ctx: Any) -> Any:
    while True:
        yield sc.Recv()


def build_kernel(topology: Topology, kernel: Optional[Any] = None) -> Any:
    """A live kernel in the topology's initial state: one process per
    ProcSpec (with its exact labels) and one Port per PortSpec (with its
    exact handle and label)."""
    if kernel is None:
        from repro.kernel.kernel import Kernel

        kernel = Kernel()
    tasks = {}
    for name, spec in topology.processes.items():
        if name == WIRE:
            continue
        process = kernel.spawn(_receive_loop, name=name)
        process.send_label = ChunkedLabel.from_label(spec.send)
        process.receive_label = ChunkedLabel.from_label(spec.receive)
        tasks[name] = process
    for pname, port in topology.ports.items():
        owner = tasks.get(port.owner)
        if owner is None:
            raise ReplayError(f"port {pname!r} owned by unreplayable {port.owner!r}")
        kernel.ports[port.handle] = Port(
            handle=port.handle,
            label=ChunkedLabel.from_label(port.label),
            owner=owner.key,
        )
        owner.owned_ports.add(port.handle)
    kernel.run()  # park every receive loop on its blocking Recv
    kernel._replay_tasks = tasks  # noqa: SLF001 - replay-only bookkeeping
    return kernel


def replay_trace(
    topology: Topology,
    trace: Sequence[TraceStep],
    kernel: Optional[Any] = None,
) -> ReplayResult:
    """Re-execute *trace* and compare delivery outcome, drop reason, and
    the receiver's post-hop labels against the model's prediction."""
    kernel = build_kernel(topology, kernel)
    tasks = kernel._replay_tasks
    edges = {edge.name: edge for edge in topology.edges}
    result = ReplayResult()
    for step in trace:
        edge = edges.get(step.edge)
        if edge is None:
            raise ReplayError(f"trace step {step.index}: unknown edge {step.edge!r}")
        port = topology.ports[edge.port]
        if port.fork:
            raise ReplayError(
                f"trace step {step.index}: fork-port edge {edge.name!r} is "
                "not replayable (it would spawn a fresh event process)"
            )
        receiver = tasks[port.owner]
        drops_before = len(kernel.drop_log.records)
        if edge.sender == WIRE:
            kernel.inject(port.handle, {"replay": step.index})
        else:
            kernel._sys_send(  # noqa: SLF001 - the exact path under test
                tasks[edge.sender],
                sc.Send(
                    port=port.handle,
                    payload={"replay": step.index},
                    cs=edge.cs,
                    ds=edge.ds,
                    v=edge.v,
                    dr=edge.dr,
                ),
            )
        kernel.run()
        new_drops = kernel.drop_log.records[drops_before:]
        delivered = not new_drops
        drop = new_drops[-1][0] if new_drops else None
        actual = ReplayStep(
            index=step.index,
            edge=step.edge,
            delivered=delivered,
            drop=drop,
            qs_after=receiver.send_label.to_label(),
            qr_after=receiver.receive_label.to_label(),
        )
        result.steps.append(actual)
        where = f"step {step.index} ({step.edge})"
        if delivered != step.delivered:
            result.mismatches.append(
                f"{where}: model says "
                f"{'delivered' if step.delivered else f'dropped ({step.drop})'}, "
                f"kernel says "
                f"{'delivered' if delivered else f'dropped ({drop})'}"
            )
            continue
        if not delivered and drop != step.drop:
            result.mismatches.append(
                f"{where}: drop reason differs: model {step.drop!r}, "
                f"kernel {drop!r}"
            )
        if actual.qs_after != step.qs_after:
            result.mismatches.append(
                f"{where}: receiver QS differs: model "
                f"{topology.format_label(step.qs_after)}, kernel "
                f"{topology.format_label(actual.qs_after)}"
            )
        if actual.qr_after != step.qr_after:
            result.mismatches.append(
                f"{where}: receiver QR differs: model "
                f"{topology.format_label(step.qr_after)}, kernel "
                f"{topology.format_label(actual.qr_after)}"
            )
    return result
