"""Abstract label intervals — the static analyzer's value domain.

``asblint`` reasons about programs *before* they run, so it never knows a
label exactly: the process send label depends on which messages arrived,
a ``verify=`` argument may be computed, handle values are allocated at
runtime.  What it can know is *bounds*.  The domain here abstracts each
label as a function from **symbolic handles** (tokens naming source-level
values: "the port bound to ``session_port``", "the expression
``self._taint``") to **level intervals** ``[lo, hi] ⊆ [⋆, 3]``, plus a
default interval for every handle not named.

The Figure 4 delivery check ``ES ⊑ (QR ⊔ DR) ⊓ V ⊓ pR`` then evaluates
three-valued: comparing the *lower* bound of the left side against the
*upper* bound of the right side proves a send can **never** pass; the
converse bounds prove it **always** passes; anything else is *maybe* and
stays silent (a static analyzer for a dynamic-label system must not cry
wolf).  Soundness direction: widening an interval can only move a verdict
toward *maybe*, never manufacture a must-fire.

Labels whose explicit entries cannot be resolved statically (dict
comprehensions, computed labels) are *blurry*: their entry map is partial
and the default interval is hulled over every level the unresolved
entries might take, so evaluation at an unnamed handle stays sound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional

from repro.core.levels import L1, L2, L3, STAR, Level


@dataclass(frozen=True)
class Interval:
    """A closed range of levels ``[lo, hi]`` with ``⋆ = -1 ≤ lo ≤ hi ≤ 3``."""

    lo: Level
    hi: Level

    def __post_init__(self) -> None:
        if not (STAR <= self.lo <= self.hi <= L3):
            raise ValueError(f"bad level interval [{self.lo}, {self.hi}]")

    @property
    def exact(self) -> bool:
        return self.lo == self.hi

    def hull(self, other: "Interval") -> "Interval":
        """Smallest interval containing both — the state-merge operator."""
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def join(self, other: "Interval") -> "Interval":
        """Interval of ``max(x, y)`` for x ∈ self, y ∈ other (label ⊔)."""
        return Interval(max(self.lo, other.lo), max(self.hi, other.hi))

    def meet(self, other: "Interval") -> "Interval":
        """Interval of ``min(x, y)`` (label ⊓)."""
        return Interval(min(self.lo, other.lo), min(self.hi, other.hi))

    def __repr__(self) -> str:
        def name(lvl: Level) -> str:
            return "*" if lvl == STAR else str(lvl)

        if self.exact:
            return f"[{name(self.lo)}]"
        return f"[{name(self.lo)}..{name(self.hi)}]"


#: The whole level set — the interval of a value we know nothing about.
TOP = Interval(STAR, L3)
#: Exactly ⋆ — a held declassification privilege.
IV_STAR = Interval(STAR, STAR)
IV_L0 = Interval(0, 0)
IV_L1 = Interval(L1, L1)
IV_L2 = Interval(L2, L2)
IV_L3 = Interval(L3, L3)
#: Any level a contaminated entry may have risen to (⊒ nothing certain).
RISEN = Interval(STAR, L3)


def exact(level: Level) -> Interval:
    return Interval(level, level)


class AbstractLabel:
    """A label abstracted to symbolic-handle → :class:`Interval`.

    Immutable.  ``blurry`` records that the label may hold further
    explicit entries we could not resolve; their possible levels are
    already folded into ``default``, so :meth:`at` remains sound.
    """

    __slots__ = ("entries", "default", "blurry")

    def __init__(
        self,
        entries: Optional[Mapping[str, Interval]] = None,
        default: Interval = TOP,
        blurry: bool = False,
    ):
        self.entries: Dict[str, Interval] = dict(entries or {})
        self.default = default
        self.blurry = blurry

    # -- constructors mirroring the concrete Label defaults ----------------------

    @classmethod
    def top(cls) -> "AbstractLabel":
        """The exact constant label {3}."""
        return cls({}, IV_L3)

    @classmethod
    def bottom(cls) -> "AbstractLabel":
        """The exact constant label {⋆}."""
        return cls({}, IV_STAR)

    @classmethod
    def uniform(cls, level: Level) -> "AbstractLabel":
        return cls({}, exact(level))

    @classmethod
    def unknown(cls) -> "AbstractLabel":
        """A label about which nothing is known (every handle in [⋆, 3])."""
        return cls({}, TOP, blurry=True)

    # -- evaluation ------------------------------------------------------------

    def at(self, token: str) -> Interval:
        return self.entries.get(token, self.default)

    def tokens(self) -> Iterable[str]:
        return self.entries.keys()

    # -- pointwise lattice lifts --------------------------------------------------

    def _pointwise(self, other: "AbstractLabel", op) -> "AbstractLabel":
        combined: Dict[str, Interval] = {}
        for token in set(self.entries) | set(other.entries):
            combined[token] = op(self.at(token), other.at(token))
        return AbstractLabel(
            combined, op(self.default, other.default), self.blurry or other.blurry
        )

    def join(self, other: "AbstractLabel") -> "AbstractLabel":
        """Abstraction of the concrete ⊔ (pointwise max)."""
        return self._pointwise(other, Interval.join)

    def meet(self, other: "AbstractLabel") -> "AbstractLabel":
        """Abstraction of the concrete ⊓ (pointwise min)."""
        return self._pointwise(other, Interval.meet)

    def hull(self, other: "AbstractLabel") -> "AbstractLabel":
        """Merge of two control-flow paths (interval union)."""
        return self._pointwise(other, Interval.hull)

    def widened(self) -> "AbstractLabel":
        """The label after effects we cannot track (a receive's
        contamination and decontamination): every entry not certainly ⋆
        may now be anything.  ⋆ entries are fixed points of the Figure 4
        send effect — ``f(⋆, e, d) = ⋆`` — so held privileges survive."""
        entries = {
            token: iv if iv == IV_STAR else iv.hull(RISEN)
            for token, iv in self.entries.items()
        }
        return AbstractLabel(entries, self.default.hull(RISEN), blurry=True)

    def with_entry(self, token: str, interval: Interval) -> "AbstractLabel":
        entries = dict(self.entries)
        entries[token] = interval
        return AbstractLabel(entries, self.default, self.blurry)

    def without(self, token: str) -> "AbstractLabel":
        """Entry dropped back to the default interval."""
        entries = dict(self.entries)
        entries.pop(token, None)
        return AbstractLabel(entries, self.default, self.blurry)

    # -- three-valued queries -------------------------------------------------------

    def definitely_star(self, token: str) -> bool:
        return self.at(token) == IV_STAR

    def definitely_not_star(self, token: str) -> bool:
        return self.at(token).lo > STAR

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AbstractLabel):
            return NotImplemented
        return (
            self.default == other.default
            and self.blurry == other.blurry
            and self._normal() == other._normal()
        )

    def __hash__(self) -> int:  # pragma: no cover - not used in sets today
        return hash((self.default, self.blurry, tuple(sorted(self._normal().items()))))

    def _normal(self) -> Dict[str, Interval]:
        return {t: iv for t, iv in self.entries.items() if iv != self.default}

    def __repr__(self) -> str:
        parts = [f"{token} {iv!r}" for token, iv in sorted(self.entries.items())]
        parts.append(repr(self.default) + ("?" if self.blurry else ""))
        return "{" + ", ".join(parts) + "}"


# -- the abstract Figure 4 delivery check -----------------------------------------


@dataclass(frozen=True)
class CheckVerdict:
    """Outcome of abstractly evaluating ``ES ⊑ (QR ⊔ DR) ⊓ V ⊓ pR``."""

    #: True when the check *cannot* pass on any execution consistent with
    #: the abstraction — the send is dead code plus a silent drop.
    never_passes: bool
    #: The token (or ``"<default>"``) that proves it, for the diagnostic.
    witness: str = ""
    #: lhs.lo > rhs.hi at the witness, for the message.
    lhs_lo: Level = STAR
    rhs_hi: Level = L3


def check_send_interval(
    es: AbstractLabel,
    qr: AbstractLabel,
    dr: AbstractLabel,
    v: AbstractLabel,
    pr: AbstractLabel,
) -> CheckVerdict:
    """Abstract Figure 4 requirement (1).

    The receiver's label QR is usually :meth:`AbstractLabel.unknown`, so
    its upper bound 3 makes ``QR ⊔ DR`` unconstraining and the verdict is
    driven by ``V`` and ``pR`` — exactly the components the *sender*
    writes down and the analyzer can read off the source.
    """
    tokens = set(es.tokens()) | set(dr.tokens()) | set(v.tokens()) | set(pr.tokens())

    def rhs_hi(token: str) -> Level:
        return min(
            max(qr.at(token).hi, dr.at(token).hi), v.at(token).hi, pr.at(token).hi
        )

    for token in sorted(tokens):
        lo = es.at(token).lo
        hi = rhs_hi(token)
        if lo > hi:
            return CheckVerdict(True, token, lo, hi)
    default_hi = min(max(qr.default.hi, dr.default.hi), v.default.hi, pr.default.hi)
    if es.default.lo > default_hi:
        return CheckVerdict(True, "<default>", es.default.lo, default_hi)
    return CheckVerdict(False)


@dataclass
class AbstractState:
    """The per-program-point state the flow analysis propagates.

    - ``ps``/``pr``: interval abstractions of the process send/receive
      labels (fresh-process defaults {1}/{2} unless the program is an
      event body or helper entered with unknown history);
    - ``received``: True once a message may have been received — from
      then on unseen handles may be held at ⋆ (a decontaminating sender
      may have granted them), so "definitely no ⋆" claims are limited to
      tokens the analysis tracks explicitly.
    """

    ps: AbstractLabel = field(default_factory=lambda: AbstractLabel({}, IV_L1))
    pr: AbstractLabel = field(default_factory=lambda: AbstractLabel({}, IV_L2))
    received: bool = False

    @classmethod
    def fresh_process(cls) -> "AbstractState":
        return cls()

    @classmethod
    def unknown_history(cls) -> "AbstractState":
        """Entry state for event bodies, helpers and methods: labels
        unknown, messages may already have been received."""
        return cls(AbstractLabel.unknown(), AbstractLabel.unknown(), received=True)

    def copy(self) -> "AbstractState":
        return AbstractState(self.ps, self.pr, self.received)

    def hull(self, other: "AbstractState") -> "AbstractState":
        return AbstractState(
            self.ps.hull(other.ps), self.pr.hull(other.pr),
            self.received or other.received,
        )

    def after_receive(self) -> "AbstractState":
        """State after a Recv/EpYield: contamination raises PS by an
        unknown ES, DS may lower any non-⋆ entry, DR raises PR."""
        return AbstractState(self.ps.widened(), self.pr.widened(), received=True)

    def may_hold_star(self, token: str) -> bool:
        """Could PS(token) be ⋆ here?  False only when the interval bound
        excludes ⋆ — e.g. a fresh process that never created the handle
        and has not yet received any (potentially granting) message."""
        return not self.ps.definitely_not_star(token)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AbstractState):
            return NotImplemented
        return (
            self.ps == other.ps
            and self.pr == other.pr
            and self.received == other.received
        )


LEVEL_INTERVALS: Dict[Level, Interval] = {
    STAR: IV_STAR,
    0: IV_L0,
    L1: IV_L1,
    L2: IV_L2,
    L3: IV_L3,
}


def interval_for_level(level: Level) -> Interval:
    return LEVEL_INTERVALS[level]
