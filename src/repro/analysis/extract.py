"""Extract asbcheck topologies from a live kernel run.

The ISSUE with hand-transcribed models is that they drift: the checker
verifies the wiring you *wrote down*, not the wiring the launcher
actually built.  :class:`TopologyRecorder` closes the gap — attach it to
a :class:`~repro.kernel.kernel.Kernel` (it registers itself on
``kernel.hooks``), run the system, and :meth:`~TopologyRecorder.build`
returns the observed :class:`~repro.analysis.model.Topology`: every
process and event process with its labels, every port, and every
distinct (sender, port, cs/ds/v/dr) send the code attempted — delivered
*or dropped*, since the model re-derives deliverability itself.

The model has no NewHandle/NewPort/ChangeLabel transitions, so
capabilities a process acquires by its *own* syscalls are folded into
its initial labels:

- handles and ports it mints appear at ⋆ in its initial send label;
- ``ChangeLabel`` raises (send self-contamination, receive raises) are
  joined into the initial labels.

Capabilities that arrive *by message* (⋆ grants via DS) are not folded —
the model reproduces them by firing the recorded edges.  Two documented
approximations: ``ChangeLabel`` lowerings (``drop_send``, receive
lowerings) are ignored, and folded receive raises are present from the
initial state, so the model can deliver some messages earlier than the
live ordering allowed.  Both make the model *more* permissive — it can
report flows the deployed ordering prevents, never hide one.

Event processes are snapshotted at creation time — after their first
delivery, so a CONNECT's contamination and grants are part of their
initial labels — and become model processes named ``base.user`` (the
``user`` tag supplied via :meth:`~TopologyRecorder.tag`, e.g. by
:mod:`repro.okws.topology`'s payload sniffer) or ``base.epN``.  Their
base-owned activation ports are marked ``fork``: deliveries are checked
against the (frozen) base labels and apply no effects, exactly the
kernel's new-EP path.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.core.handles import Handle
from repro.core.labels import (
    DEFAULT_CONTAMINATION,
    DEFAULT_DECONTAMINATE_RECEIVE,
    DEFAULT_DECONTAMINATE_SEND,
    DEFAULT_VERIFY,
    Label,
)
from repro.core.levels import STAR

from repro.analysis.model import Topology

#: The pseudo-process representing kernel.inject (network wire) senders.
WIRE = "<wire>"


class _TaskObs:
    """Labels and capability history observed for one task."""

    __slots__ = (
        "key",
        "name",
        "send0",
        "receive0",
        "mints",
        "send_raises",
        "receive_raises",
        "receive_default",
        "is_ep",
        "base_key",
        "meta",
    )

    def __init__(self, task: Any) -> None:
        self.key: str = task.key
        self.name: str = task.name
        self.send0: Label = task.send_label.to_label()
        self.receive0: Label = task.receive_label.to_label()
        self.mints: List[Handle] = []
        self.send_raises: List[Label] = []
        self.receive_raises: Dict[Handle, int] = {}
        self.receive_default: Optional[int] = None
        self.is_ep = bool(task.is_event_process)
        self.base_key: str = task.base.key if self.is_ep else ""
        self.meta: Dict[str, Any] = {}

    def initial_send(self) -> Label:
        label = self.send0
        for raised in self.send_raises:
            label = label | raised
        for handle in self.mints:
            label = label.with_entry(handle, STAR)
        return label

    def initial_receive(self) -> Label:
        label = self.receive0
        if self.receive_default is not None and self.receive_default > label.default:
            label = Label(dict(label.entries()), self.receive_default)
        for handle, level in self.receive_raises.items():
            if level > label(handle):
                label = label.with_entry(handle, level)
        return label


class _PortObs:
    __slots__ = ("handle", "owner_key", "label", "fork")

    def __init__(self, handle: Handle, owner_key: str, label: Label) -> None:
        self.handle = handle
        self.owner_key = owner_key
        self.label = label
        self.fork = False


class TopologyRecorder:
    """A passive kernel observer that accumulates a checkable model.

    Attach before the system boots (``TopologyRecorder(kernel)`` hooks
    itself) so spawns, mints and label changes are all seen; tasks and
    ports that already exist at attach time are snapshotted immediately.
    """

    def __init__(self, kernel: Any) -> None:
        self.kernel = kernel
        self._tasks: Dict[str, _TaskObs] = {}
        self._ports: Dict[Handle, _PortObs] = {}
        #: (sender key, port, cs, ds, v, dr) → via-qualname, insertion ordered.
        self._edges: Dict[Tuple[Any, ...], str] = {}
        self._handle_names: Dict[Handle, str] = {}
        self._named: Set[str] = set()
        self.skipped: List[str] = []
        self._wire_ports: Set[Handle] = set()
        for task in kernel.tasks.values():
            self._tasks[task.key] = _TaskObs(task)
        for handle, entry in kernel.ports.items():
            self._ports[handle] = _PortObs(handle, entry.owner, entry.label.to_label())
        kernel.hooks.append(self)

    # -- naming / annotation (for domain-specific sniffers) -----------------

    def name_handle(self, handle: Handle, name: str) -> None:
        """Bind a readable name to a concrete handle (first name wins;
        colliding names get a ``~N`` suffix)."""
        if handle in self._handle_names:
            return
        candidate, n = name, 2
        while candidate in self._named:
            candidate = f"{name}~{n}"
            n += 1
        self._handle_names[handle] = candidate
        self._named.add(candidate)

    def tag(self, task_key: str, **meta: Any) -> None:
        obs = self._tasks.get(task_key)
        if obs is not None:
            obs.meta.update(meta)

    # -- kernel hooks --------------------------------------------------------

    def on_spawn(self, process: Any) -> None:
        self._tasks[process.key] = _TaskObs(process)

    def on_ep_create(self, ep: Any, entry: Any, qmsg: Any) -> None:
        self._tasks[ep.key] = _TaskObs(ep)
        self._port_obs(entry).fork = True

    def on_new_handle(self, task: Any, handle: Handle) -> None:
        obs = self._tasks.get(task.key)
        if obs is not None:
            obs.mints.append(handle)

    def on_new_port(self, task: Any, handle: Handle) -> None:
        obs = self._tasks.get(task.key)
        if obs is not None:
            obs.mints.append(handle)
        entry = self.kernel.ports.get(handle)
        if entry is not None:
            self._ports[handle] = _PortObs(handle, task.key, entry.label.to_label())

    def on_change_label(self, task: Any, request: Any) -> None:
        obs = self._tasks.get(task.key)
        if obs is None:
            return
        if request.raise_receive:
            for handle, level in request.raise_receive.items():
                if level > obs.receive_raises.get(handle, STAR):
                    obs.receive_raises[handle] = level
        if request.send is not None:
            obs.send_raises.append(request.send)
        if request.receive is not None:
            # Only the raising component folds; lowerings are dropped (the
            # model stays more permissive than the live ordering).
            for handle, level in request.receive.entries():
                if level > obs.receive_raises.get(handle, STAR):
                    obs.receive_raises[handle] = level
            default = request.receive.default
            if obs.receive_default is None or default > obs.receive_default:
                obs.receive_default = default

    def on_send(self, task: Any, request: Any) -> None:
        entry = self.kernel.ports.get(request.port)
        if entry is not None:
            self._port_obs(entry)
        via = self._via(task)
        key = (
            task.key,
            request.port,
            request.cs if request.cs is not None else DEFAULT_CONTAMINATION,
            request.ds if request.ds is not None else DEFAULT_DECONTAMINATE_SEND,
            request.v if request.v is not None else DEFAULT_VERIFY,
            request.dr if request.dr is not None else DEFAULT_DECONTAMINATE_RECEIVE,
        )
        self._edges.setdefault(key, via)

    def on_inject(self, port: Handle, payload: Any) -> None:
        self._wire_ports.add(port)
        # kernel.inject: ES is the untainted send default, DS/V top, DR
        # bottom — exactly the EdgeSpec defaults from a default-label
        # pseudo-process.
        key = (
            WIRE,
            port,
            DEFAULT_CONTAMINATION,
            DEFAULT_DECONTAMINATE_SEND,
            DEFAULT_VERIFY,
            DEFAULT_DECONTAMINATE_RECEIVE,
        )
        self._edges.setdefault(key, WIRE)

    # -- internals -----------------------------------------------------------

    def _port_obs(self, entry: Any) -> _PortObs:
        obs = self._ports.get(entry.handle)
        if obs is None:
            obs = _PortObs(entry.handle, entry.owner, entry.label.to_label())
            self._ports[entry.handle] = obs
        else:
            obs.label = entry.label.to_label()
            if entry.owner in self._tasks:
                obs.owner_key = entry.owner
        return obs

    @staticmethod
    def _via(task: Any) -> str:
        fn = task.base.event_body if task.is_event_process else getattr(task, "body", None)
        return getattr(fn, "__qualname__", "") or ""

    # -- building the topology ----------------------------------------------

    def build(self, name: str = "recorded") -> Topology:
        topo = Topology(name=name)
        model_name = self._model_names()

        # Ports may have been relabelled (SetPortLabel) since we last saw
        # traffic; the steady-state label is the one to check against.
        for handle, pobs in self._ports.items():
            entry = self.kernel.ports.get(handle)
            if entry is not None and entry.alive:
                pobs.label = entry.label.to_label()
                if entry.owner in self._tasks:
                    pobs.owner_key = entry.owner

        # Bind every observed handle before any label is registered, so
        # the symbolic document uses the sniffed names throughout.
        labels: List[Label] = []
        for obs in self._tasks.values():
            labels.append(obs.initial_send())
            labels.append(obs.initial_receive())
        for pobs in self._ports.values():
            labels.append(pobs.label)
        for key in self._edges:
            labels.extend(key[2:6])
        seen: Set[Handle] = set()
        for label in labels:
            for handle in label.handles():
                seen.add(handle)
        seen.update(self._ports)
        for handle in sorted(seen):
            topo.handle(self._handle_name(handle), value=handle)

        for key, obs in self._tasks.items():
            meta = dict(obs.meta)
            if obs.is_ep:
                meta.setdefault("base", self._tasks[obs.base_key].name)
            topo.add_process(
                model_name[key],
                send=obs.initial_send(),
                receive=obs.initial_receive(),
                meta=meta,
            )
        if any(key[0] == WIRE for key in self._edges):
            topo.add_process(WIRE)
            model_name[WIRE] = WIRE

        for handle, pobs in self._ports.items():
            owner = model_name.get(pobs.owner_key)
            if owner is None:
                self.skipped.append(
                    f"port {self._handle_name(handle)}: unknown owner "
                    f"{pobs.owner_key!r}"
                )
                continue
            topo.add_port(
                self._handle_name(handle),
                owner=owner,
                label=pobs.label,
                fork=pobs.fork,
            )

        counts: Dict[Tuple[str, str], int] = {}
        for key, via in self._edges.items():
            sender_key, port = key[0], key[1]
            sender = model_name.get(sender_key)
            port_name = self._handle_name(port)
            if sender is None or port_name not in topo.ports:
                self.skipped.append(
                    f"edge {sender_key!r} -> {port_name}: "
                    + ("unknown sender" if sender is None else "unmapped port")
                )
                continue
            n = counts[(sender, port_name)] = counts.get((sender, port_name), 0) + 1
            suffix = f"#{n}" if n > 1 else ""
            topo.add_edge(
                sender,
                port_name,
                cs=key[2],
                ds=key[3],
                v=key[4],
                dr=key[5],
                name=f"{sender}->{port_name}{suffix}",
                via=via,
            )
        return topo

    def _handle_name(self, handle: Handle) -> str:
        return self._handle_names.get(handle, f"h{handle:x}")

    def _model_names(self) -> Dict[str, str]:
        """Task key → model process name.  Event processes are renamed to
        the fnmatch-friendly ``base.user`` / ``base.epN`` (the kernel's
        ``base[N]`` would collide with glob character classes)."""
        out: Dict[str, str] = {}
        used: Set[str] = set()
        for key, obs in self._tasks.items():
            if obs.is_ep:
                base = self._tasks[obs.base_key].name
                user = obs.meta.get("user")
                stem = f"{base}.{user}" if user else f"{base}.ep"
            else:
                stem = obs.name
            candidate, n = stem, 2
            while candidate in used:
                candidate = f"{stem}~{n}"
                n += 1
            used.add(candidate)
            out[key] = candidate
        return out


def mark_declassifier_edges(topology: Topology, *sender_patterns: str) -> int:
    """Flag every edge whose sender matches one of the patterns as a
    declassifier edge (removed for mandatory-declassifier checks)."""
    from repro.policies.assertions import matches

    count = 0
    for edge in topology.edges:
        if any(matches(p, edge.sender) for p in sender_patterns):
            if not edge.declassifier:
                edge.declassifier = True
                count += 1
    return count
