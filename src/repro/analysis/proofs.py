"""proofs/v1 — compiling asbcheck explorations into verified flow stubs.

asbcheck (:mod:`repro.analysis.check`) already decides, offline, whether
an edge can ever be dropped: the fully-eager exploration fires every
send edge in every reachable label state.  An edge that *delivers in
every reachable state* is a proven flow — at runtime the Figure 4 checks
on it are pure re-computation of a result the exploration has already
established.  This module compiles those edges into a ``proofs/v1``
document the kernel's :class:`~repro.kernel.elide.VerifiedFlowTable`
loads, so a proven, still-valid edge skips the full check and applies
the precomputed QS/QR effect deltas instead (DESIGN.md §15).

**What one stub claims.**  A deliver stub is keyed on the concatenation
of the three ⋆-factored :mod:`repro.core.interning` plan keys — the
:func:`~repro.core.interning.check_plan` verdict key on
``(ES, QR, DR, V, pR)``, the :func:`~repro.core.interning.effects_plan`
key on ``(QS°, ES, DS)`` and the :func:`~repro.core.interning.raise_plan`
key on ``(QR°, DR)`` — plus the receiving port handle.  Its value is the
pair of ⋆-free result cores the Figure 4 effects produce on those
operands.  The claim is purely algebraic: *on these exact (factored)
operand values, requirement (4) and requirement (1) pass and the effects
yield these cores*.  The exploration only selects **which** operand
tuples are worth compiling (the ones reachable on proven edges); the
result cores themselves are recomputed here with the reference
:mod:`repro.core.labelops` operators at emit time, and the factoring
side conditions are re-walked by the kernel on the *live* operands at
probe time.  A live operand mismatch — different label value, different
port, a side condition that no longer holds — simply misses and falls
back to the PR 5 interned path, so a stale or foreign proof can cost
performance but never soundness.  T4 pin-abstracted keys are never
emitted: they name fresh per-connection handles only through their
levels and are a per-cache artifact, not a portable proof.

**Why the emitter is trusted and the loader is not.**  The emitter runs
in the analysis toolchain and computes every effect delta itself; the
loader (and the kernel behind it) treats the document as untrusted
input: every label body is re-interned through
:meth:`~repro.core.interning.InternTable.from_wire`, which verifies the
content fingerprint, but the claimed result cores are *not* recomputed
at load time — they flow into the applied labels, where the sampled
sanitizer re-derives every elided decision from reference semantics and
quarantines the table on the first mismatch.  That split is what the
adversarial battery (``tests/test_elision_adversarial.py``) pins down:
a corrupted label body fails the load, a corrupted effect delta is
flagged on its first elided use, and a proof for a different topology
never matches a key at all.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple, Union

from repro.core import labelops
from repro.core.chunks import ChunkedLabel
from repro.core.interning import (
    InternTable,
    apply_effects_tail,
    apply_raise_tail,
    check_plan,
    effects_plan,
    global_intern_table,
    raise_plan,
)

from repro.analysis.check import Engine, Exploration
from repro.analysis.model import Topology

__all__ = [
    "ProofError",
    "compile_proofs",
    "load_proofs",
    "topology_fingerprint",
    "write_proofs",
    "LoadedProofs",
    "DeliverStub",
    "SendStub",
]

SCHEMA = "proofs/v1"


class ProofError(ValueError):
    """A malformed, corrupt, or unusable proofs document."""


def topology_fingerprint(topology: Topology) -> str:
    """Stable content id of a topology (hash of its canonical JSON)."""
    canonical = json.dumps(topology.to_json(), sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(canonical.encode("utf-8"), digest_size=16).hexdigest()


# -- emitting ----------------------------------------------------------------------


class _Pool:
    """Fingerprint-keyed label pool for the document body."""

    def __init__(self, table: InternTable) -> None:
        self.table = table
        self.labels: Dict[str, ChunkedLabel] = {}

    def ref(self, label: ChunkedLabel) -> str:
        fp = f"{self.table.fingerprint(label):016x}"
        self.labels.setdefault(fp, label)
        return fp

    def to_json(self) -> Dict[str, Any]:
        return {
            fp: {
                "default": label.default,
                "entries": [[h, lvl] for h, lvl in label.iter_entries()],
            }
            for fp, label in sorted(self.labels.items())
        }


def compile_proofs(
    topology: Topology,
    max_states: int = 200_000,
    table: Optional[InternTable] = None,
) -> Dict[str, Any]:
    """Explore *topology* and compile its always-allowed edges.

    Returns the ``proofs/v1`` document (a JSON-ready dict).  Raises
    :class:`ProofError` if the exploration truncates — a truncated state
    space cannot support an "always allowed" claim.
    """
    if table is None:
        table = global_intern_table()
    engine = Engine(topology)
    live = Exploration(engine, set(), exact=False, max_states=max_states)
    if live.truncated:
        raise ProofError(
            "state space truncated at the max-states cap; "
            "refusing to emit proofs from a partial exploration"
        )
    store = engine.store
    pool = _Pool(table)
    delivers: List[Dict[str, Any]] = []
    sends: List[Dict[str, Any]] = []
    send_seen: Set[Tuple[int, int]] = set()
    covered_ports: Set[int] = set()
    covered_tasks: Set[str] = set()
    realms: Set[str] = set()
    port_labels: Dict[int, Set[str]] = {}
    proven_edges = 0
    skipped_abstract = 0

    def chunk(ident: int) -> ChunkedLabel:
        return table.intern(store.chunked(ident))

    for edge in engine.edges:
        firings = [engine.fire(state, edge) for state in live.order]
        if not all(f.delivered for f in firings):
            continue
        proven_edges += 1
        port_handle = topology.ports[edge.port].handle
        covered_ports.add(port_handle)
        covered_tasks.add(edge.sender)
        covered_tasks.add(edge.receiver)
        if edge.fork:
            realms.add(edge.receiver)
        pl = chunk(edge.pr)
        # Every pR the proofs assume for this port, recorded whether or
        # not any stub survives T4 skipping below: the kernel's
        # set_port_label invalidation tests membership in this set.
        port_labels.setdefault(port_handle, set()).add(pool.ref(pl))
        cs = chunk(edge.cs)
        ds = chunk(edge.ds)
        v = chunk(edge.v)
        dr = chunk(edge.dr)
        seen: Set[Tuple[int, int, int]] = set()
        for state in live.order:
            ps_id = state[2 * edge.s_idx]
            qs_id = state[2 * edge.r_idx]
            qr_id = state[2 * edge.r_idx + 1]
            if (ps_id, qs_id, qr_id) in seen:
                continue
            seen.add((ps_id, qs_id, qr_id))
            ps, qs, qr = chunk(ps_id), chunk(qs_id), chunk(qr_id)
            # ES = PS ⊔ CS, exactly as the kernel's send path computes it.
            es = table.intern(labelops.raise_receive(ps, cs, None))
            # The exploration proved this instance delivers; re-derive the
            # verdicts with the reference operators so the emitted claim
            # never rests on the model alone.
            if not dr.leq(pl, None) or not labelops.check_send(es, qr, dr, v, pl, None):
                raise ProofError(
                    f"edge {edge.name!r}: exploration and reference "
                    "semantics disagree on a proven delivery"
                )
            cplan = check_plan(table, es, qr, dr, v, pl)
            if cplan.abstracted:
                skipped_abstract += 1
                continue
            eplan = effects_plan(table, qs, es, ds)
            rplan = raise_plan(table, qr, dr)
            new_qs_core = table.intern(
                labelops.apply_send_effects(*eplan.exec_ops, None)
            )
            new_qr_core = table.intern(labelops.raise_receive(*rplan.exec_ops, None))
            # Emit-time soundness sanity: overlaying the cores must
            # reproduce the full-operand reference results bit for bit.
            full_qs = table.intern(labelops.apply_send_effects(qs, es, ds, None))
            full_qr = table.intern(labelops.raise_receive(qr, dr, None))
            if (
                apply_effects_tail(table, eplan, new_qs_core) is not full_qs
                or apply_raise_tail(table, rplan, new_qr_core) is not full_qr
            ):
                raise ProofError(
                    f"edge {edge.name!r}: ⋆-factored result does not "
                    "reproduce the reference result"
                )
            delivers.append(
                {
                    "edge": edge.name,
                    "port": port_handle,
                    "sender": edge.sender,
                    "receiver": edge.receiver,
                    "es": pool.ref(es),
                    "pl": pool.ref(pl),
                    "qr": pool.ref(qr),
                    "v": pool.ref(v),
                    "dr": pool.ref(dr),
                    "qs": pool.ref(qs),
                    "ds": pool.ref(ds),
                    "new_qs_core": pool.ref(new_qs_core),
                    "new_qr_core": pool.ref(new_qr_core),
                }
            )
            # One send stub per distinct (PS, CS): the ES = PS ⊔ CS join
            # at send time is the same proven math.
            splan = raise_plan(table, ps, cs)
            skey = (ps.intern_id, cs.intern_id)
            if skey not in send_seen:
                send_seen.add(skey)
                es_core = table.intern(labelops.raise_receive(*splan.exec_ops, None))
                sends.append(
                    {
                        "edge": edge.name,
                        "sender": edge.sender,
                        "ps": pool.ref(ps),
                        "cs": pool.ref(cs),
                        "es_core": pool.ref(es_core),
                    }
                )
    return {
        "schema": SCHEMA,
        "tool": "asbcheck",
        "topology": {
            "name": topology.name,
            "fingerprint": topology_fingerprint(topology),
        },
        "stats": {
            "states": len(live.order),
            "edges": len(engine.edges),
            "proven_edges": proven_edges,
            "deliver_stubs": len(delivers),
            "send_stubs": len(sends),
            "skipped_abstract_keys": skipped_abstract,
        },
        "labels": pool.to_json(),
        "delivers": delivers,
        "sends": sends,
        "covered": {
            "ports": sorted(covered_ports),
            "tasks": sorted(covered_tasks),
            "realms": sorted(realms),
            "port_labels": {
                str(handle): sorted(fps) for handle, fps in sorted(port_labels.items())
            },
        },
    }


def write_proofs(doc: Dict[str, Any], path: Union[str, Path]) -> None:
    Path(path).write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


# -- loading -----------------------------------------------------------------------


class DeliverStub:
    """One loaded deliver stub: the document's claimed result cores."""

    __slots__ = ("edge", "sender", "receiver", "port", "new_qs_core", "new_qr_core")

    def __init__(
        self,
        edge: str,
        sender: str,
        receiver: str,
        port: int,
        new_qs_core: ChunkedLabel,
        new_qr_core: ChunkedLabel,
    ) -> None:
        self.edge = edge
        self.sender = sender
        self.receiver = receiver
        self.port = port
        self.new_qs_core = new_qs_core
        self.new_qr_core = new_qr_core


class SendStub:
    """One loaded send stub: the claimed ``ES = PS ⊔ CS`` core."""

    __slots__ = ("edge", "sender", "es_core")

    def __init__(self, edge: str, sender: str, es_core: ChunkedLabel) -> None:
        self.edge = edge
        self.sender = sender
        self.es_core = es_core


class LoadedProofs:
    """A verified-and-indexed ``proofs/v1`` document.

    ``deliver`` maps ``(port, check key, effects key, raise key)`` —
    the keys recomputed *here* from the assumed full labels with the
    same plan helpers the kernel uses — to :class:`DeliverStub`;
    ``send`` maps a :func:`raise_plan` key to :class:`SendStub`.  The
    claimed result cores are stored verbatim from the document (never
    recomputed), which is what lets the sanitizer catch a corrupted
    delta on its first elided use instead of silently repairing it.
    """

    def __init__(self) -> None:
        self.deliver: Dict[Tuple[Any, ...], DeliverStub] = {}
        self.send: Dict[Tuple[Any, ...], SendStub] = {}
        #: Strong references to every label the document names, plus the
        #: load-time plans.  The intern table holds canonical labels
        #: *weakly* — a value nobody references is collected and a later
        #: intern of it issues a fresh id — so the proofs must pin every
        #: assumed label and every derived plan operand (⋆-stripped
        #: cores) for their intern ids to stay canonical, or the stub
        #: keys would silently stop matching live labels.
        self.pool: Dict[str, ChunkedLabel] = {}
        self.pinned: List[Any] = []
        self.covered_ports: Set[int] = set()
        self.covered_tasks: Set[str] = set()
        self.expected_realms: Set[str] = set()
        #: Per covered task: the ⋆-free core ids of every QS/QR value the
        #: proofs assumed *for that task* — the membership set behind the
        #: "label write outside the proof's assumed set" invalidation.
        #: Per-task is load-bearing: a task ramping up through boot-time
        #: label states is outside its own assumed set on both sides of
        #: every write (content addressing already keeps its stubs from
        #: hitting), and only a task *leaving* its assumed set — warm
        #: state diverging from the proven world — invalidates.
        self.assumed_cores: Dict[str, Set[int]] = {}
        #: Per covered port: the intern ids of every pR value the proofs
        #: assumed for it.  ``set_port_label`` writing one of these is
        #: the recorded world replaying itself; anything else invalidates.
        self.port_labels: Dict[int, Set[int]] = {}
        self.topology_name: str = ""
        self.topology_fp: str = ""
        self.stats: Dict[str, Any] = {}


def _pool_from_json(doc: Dict[str, Any], table: InternTable) -> Dict[str, ChunkedLabel]:
    pool: Dict[str, ChunkedLabel] = {}
    labels = doc.get("labels")
    if not isinstance(labels, dict):
        raise ProofError("proofs document has no label pool")
    for fp_hex, body in labels.items():
        try:
            fp = int(fp_hex, 16)
            entries = [(int(h), int(lvl)) for h, lvl in body["entries"]]
            default = int(body["default"])
        except (KeyError, TypeError, ValueError) as err:
            raise ProofError(f"malformed label {fp_hex!r}: {err}") from err
        try:
            pool[fp_hex] = table.from_wire(fp, default, entries)
        except (KeyError, ValueError) as err:
            raise ProofError(str(err)) from err
    return pool


def load_proofs(
    source: Union[str, Path, Dict[str, Any]],
    table: Optional[InternTable] = None,
) -> LoadedProofs:
    """Load and index a ``proofs/v1`` document.

    Every label body is verified against its content fingerprint via
    :meth:`InternTable.from_wire`; stub keys are recomputed from the
    assumed labels with the shared plan helpers.  The claimed result
    cores are resolved from the (verified) pool but deliberately not
    re-derived — see the class docstring.
    """
    if table is None:
        table = global_intern_table()
    if isinstance(source, (str, Path)):
        try:
            doc = json.loads(Path(source).read_text(encoding="utf-8"))
        except (OSError, ValueError) as err:
            raise ProofError(f"cannot read proofs from {source}: {err}") from err
    else:
        doc = source
    if not isinstance(doc, dict) or doc.get("schema") != SCHEMA:
        raise ProofError(
            f"not a {SCHEMA} document: schema={doc.get('schema')!r}"
            if isinstance(doc, dict)
            else "proofs document must be a JSON object"
        )
    pool = _pool_from_json(doc, table)

    def label(record: Dict[str, Any], field: str) -> ChunkedLabel:
        ref = record.get(field)
        got = pool.get(ref)
        if got is None:
            raise ProofError(f"record references unknown label {ref!r} ({field})")
        return got

    loaded = LoadedProofs()
    loaded.pool = pool
    topo = doc.get("topology") or {}
    loaded.topology_name = str(topo.get("name", ""))
    loaded.topology_fp = str(topo.get("fingerprint", ""))
    loaded.stats = dict(doc.get("stats") or {})
    covered = doc.get("covered") or {}
    loaded.covered_ports = {int(p) for p in covered.get("ports", ())}
    loaded.covered_tasks = {str(t) for t in covered.get("tasks", ())}
    loaded.expected_realms = {str(t) for t in covered.get("realms", ())}
    for handle_str, fps in (covered.get("port_labels") or {}).items():
        ids = loaded.port_labels.setdefault(int(handle_str), set())
        for fp in fps:
            got = pool.get(fp)
            if got is None:
                raise ProofError(f"port_labels references unknown label {fp!r}")
            ids.add(got.intern_id)
    for record in doc.get("delivers", ()):
        es, pl, qr = label(record, "es"), label(record, "pl"), label(record, "qr")
        v, dr = label(record, "v"), label(record, "dr")
        qs, ds = label(record, "qs"), label(record, "ds")
        cplan = check_plan(table, es, qr, dr, v, pl)
        if cplan.abstracted:  # pragma: no cover - emitter never writes these
            continue
        eplan = effects_plan(table, qs, es, ds)
        rplan = raise_plan(table, qr, dr)
        try:
            port = int(record["port"])
        except (KeyError, TypeError, ValueError) as err:
            raise ProofError(f"malformed deliver record: {err}") from err
        key = (port, cplan.key, eplan.key, rplan.key)
        loaded.pinned.append((cplan, eplan, rplan))
        loaded.deliver[key] = DeliverStub(
            edge=str(record.get("edge", "")),
            sender=str(record.get("sender", "")),
            receiver=str(record.get("receiver", "")),
            port=port,
            new_qs_core=label(record, "new_qs_core"),
            new_qr_core=label(record, "new_qr_core"),
        )
        receiver_cores = loaded.assumed_cores.setdefault(
            str(record.get("receiver", "")), set()
        )
        receiver_cores.add(table.star_core(qs).intern_id)
        receiver_cores.add(table.star_core(qr).intern_id)
        loaded.port_labels.setdefault(port, set()).add(pl.intern_id)
    for record in doc.get("sends", ()):
        ps, cs = label(record, "ps"), label(record, "cs")
        splan = raise_plan(table, ps, cs)
        loaded.pinned.append(splan)
        loaded.send[splan.key] = SendStub(
            edge=str(record.get("edge", "")),
            sender=str(record.get("sender", "")),
            es_core=label(record, "es_core"),
        )
        loaded.assumed_cores.setdefault(
            str(record.get("sender", "")), set()
        ).add(table.star_core(ps).intern_id)
    return loaded
