"""The asblint rule catalogue.

Each rule has a stable id (used in ``# asblint: ignore[<id>]`` pragmas and
the JSON report), a short name, and a one-line description.  All rules are
*must*-rules: they fire only when the abstract-interval evaluation proves
the bad outcome on every execution consistent with the abstraction —
a dynamic-label system has too many legitimate maybe-flows for a linter
to warn on possibilities.

- **ASB001 never-pass**: the Figure 4 delivery check
  ``ES ⊑ (QR ⊔ DR) ⊓ V ⊓ pR`` cannot pass: the lower bound of the
  effective send label exceeds the upper bound of the right-hand side at
  some handle (usually because ``verify=`` pins V below taint the sender
  provably carries, or the target port's label is still the closed
  ``{p 0}``).  The kernel will drop the message silently, forever.

- **ASB002 taint-creep**: a send provably carries taint above the
  default send level (the program raised its own label with
  ``ChangeLabel(send=...)``) but passes no ``contaminate=``: every
  receiver is contaminated implicitly.  The paper's discipline is that
  contamination crossing a trust boundary is spelled out as CS (or
  excluded with ``verify=``); implicit creep is how one mislabeled
  worker quietly taints a whole service.

- **ASB003 declassify-no-star**: a decontaminating label —
  ``decontaminate_send`` below 3, ``decontaminate_receive`` above ⋆, or
  a ``ChangeLabel(raise_receive=...)`` — at a handle for which the
  process provably does *not* hold ⋆.  Figure 4's requirements (2)/(3)
  make the kernel drop the send (or fault the change_label); since the
  drop is silent, this is the classic "why does my grant never arrive"
  bug.

- **ASB004 handle-leak**: a port created by this program is embedded in
  a message payload while its port label is still the closed ``{p 0}``
  minted by ``new_port`` and no send has granted ``p ⋆``/``p 0`` to
  anyone: the receiver learns the handle but can never send to it.
  Every reply routed there is silently dropped — a dead drop that looks
  exactly like packet loss.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

TOOLING = "ASB000"
NEVER_PASS = "ASB001"
TAINT_CREEP = "ASB002"
DECLASSIFY_NO_STAR = "ASB003"
HANDLE_LEAK = "ASB004"


@dataclass(frozen=True)
class Rule:
    id: str
    name: str
    summary: str


RULES: Tuple[Rule, ...] = (
    Rule(
        NEVER_PASS,
        "never-pass",
        "send can never pass the Figure 4 delivery check; the kernel will "
        "drop it silently on every execution",
    ),
    Rule(
        TAINT_CREEP,
        "taint-creep",
        "send provably carries self-raised taint but no explicit "
        "contaminate=; the receiver is contaminated implicitly",
    ),
    Rule(
        DECLASSIFY_NO_STAR,
        "declassify-no-star",
        "decontamination (DS < 3 / DR > * / raise_receive) at a handle the "
        "process provably holds no * for; dropped or faulted at runtime",
    ),
    Rule(
        HANDLE_LEAK,
        "handle-leak",
        "port handle embedded in a payload while its label is still the "
        "closed {p 0} and no * grant accompanies it; receivers can never "
        "send to it",
    ),
)

RULES_BY_ID: Dict[str, Rule] = {rule.id: rule for rule in RULES}
RULES_BY_NAME: Dict[str, Rule] = {rule.name: rule for rule in RULES}

#: ASB000 is the tooling pseudo-rule: the file does not parse, or a pragma
#: names a rule that does not exist.  It is resolvable (so it can itself be
#: suppressed or selected) but not part of the label-flow catalogue above.
TOOLING_RULE = Rule(
    TOOLING,
    "tooling",
    "file does not parse, or an asblint pragma names an unknown rule",
)
RULES_BY_ID[TOOLING] = TOOLING_RULE
RULES_BY_NAME[TOOLING_RULE.name] = TOOLING_RULE


def resolve_rule(key: str) -> Optional[Rule]:
    """Look a rule up by id (``ASB003``) or name (``declassify-no-star``)."""
    return RULES_BY_ID.get(key.upper()) or RULES_BY_NAME.get(key.lower())


@dataclass(frozen=True)
class Diagnostic:
    """One finding, anchored to a source location."""

    path: str
    line: int
    col: int
    rule: str          # rule id, e.g. "ASB001"
    message: str
    function: str = ""  # qualified name of the program generator
    #: asbcheck topology edges this program's sends become (filled in by
    #: ``repro.analysis.check.link_lint_findings``).
    related_edges: Tuple[str, ...] = ()

    @property
    def rule_name(self) -> str:
        rule = RULES_BY_ID.get(self.rule)
        return rule.name if rule else self.rule

    def format(self) -> str:
        text = (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule}[{self.rule_name}] {self.message}"
        )
        if self.related_edges:
            text += f"  [feeds edge {', '.join(self.related_edges)}]"
        return text

    def to_json(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "rule_name": self.rule_name,
            "function": self.function,
            "message": self.message,
        }
        if self.related_edges:
            out["related_edges"] = list(self.related_edges)
        return out


@dataclass
class FileReport:
    """Diagnostics for one analyzed file, plus suppression bookkeeping."""

    path: str
    diagnostics: List[Diagnostic] = field(default_factory=list)
    suppressed: List[Diagnostic] = field(default_factory=list)
    programs: List[str] = field(default_factory=list)
    #: Pragmas that suppressed nothing (likely stale), (line, rule-or-"").
    unused_pragmas: List[Tuple[int, str]] = field(default_factory=list)
