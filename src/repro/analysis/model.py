"""Declarative system topologies for the asbcheck model checker.

A :class:`Topology` is the whole-system counterpart of a single program's
syscall stream: the processes (and event processes) with their initial
send/receive labels, the ports with their port labels, and the *send
edges* — every (sender, port, cs/ds/v/dr) combination the system's code
can emit.  asbcheck (:mod:`repro.analysis.check`) explores the label
states reachable by firing these edges under the verbatim Figure 4 rules.

Handles are symbolic: a topology names its compartments (``uT:alice``,
``admin``, ``verify:notes``) and the JSON encoding uses those names
everywhere, so fixture files read like the paper's examples.  Internally
every name is bound to a concrete 61-bit handle value and labels are
ordinary :class:`~repro.core.labels.Label` objects.

JSON encoding (``topology/v1``)::

    {
      "version": 1,
      "name": "leaky-site",
      "processes": {"worker_u": {"send": {"entries": {"uT:u": "3"}, "default": "1"},
                                 "receive": {"default": "2"}}},
      "ports":     {"inbox": {"owner": "relay",
                              "label": {"entries": {"inbox": "0"}, "default": "3"}}},
      "edges":     [{"name": "w->relay", "sender": "worker_u", "port": "inbox",
                     "cs": {...}, "ds": {...}, "v": {...}, "dr": {...},
                     "declassifier": false}],
      "policies":  [ ... see repro.policies.assertions ... ]
    }

Level spellings are the paper's: ``"*"``, ``"0"`` … ``"3"`` (integers are
accepted too, with ``-1`` for ⋆).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.core.handles import Handle
from repro.core.labels import (
    DEFAULT_CONTAMINATION,
    DEFAULT_DECONTAMINATE_RECEIVE,
    DEFAULT_DECONTAMINATE_SEND,
    DEFAULT_VERIFY,
    Label,
)
from repro.core.levels import L0, L3, STAR, Level, level_name, parse_level

__all__ = [  # parse_level re-exported: it lived here before moving to core.levels
    "EdgeSpec",
    "LabelStore",
    "PortSpec",
    "ProcSpec",
    "Topology",
    "TopologyError",
    "from_json",
    "load",
    "loads",
    "parse_level",
]

#: Where auto-minted symbolic handles start; far above the tiny literals
#: examples use, far below the 61-bit ceiling.
_AUTO_HANDLE_BASE = 0x1000


@dataclass
class ProcSpec:
    """One model process (or event process) and its initial labels."""

    name: str
    send: Label
    receive: Label
    #: Free-form annotations (e.g. ``{"user": "alice"}`` on OKWS event
    #: processes) used when choosing policies, never by the checker core.
    meta: Dict[str, Any] = field(default_factory=dict)


@dataclass
class PortSpec:
    """One port: its owner process, its port label, its own handle."""

    name: str
    owner: str
    label: Label
    handle: Handle
    #: A *forking* port (an event-process base port, Section 6): each
    #: delivery lands on a fresh event process, so the check runs against
    #: the owner's labels but the effects never touch them.
    fork: bool = False


@dataclass
class EdgeSpec:
    """One send the system's code can emit: sender → port, with the
    discretionary labels the ``Send`` carries."""

    name: str
    sender: str
    port: str
    cs: Label = DEFAULT_CONTAMINATION
    ds: Label = DEFAULT_DECONTAMINATE_SEND
    v: Label = DEFAULT_VERIFY
    dr: Label = DEFAULT_DECONTAMINATE_RECEIVE
    #: Marked declassifier edges are removed when checking
    #: mandatory-declassifier policies (Section 7.6).
    declassifier: bool = False
    #: Qualified name of the program that emits this send, when known —
    #: the join point with asblint's per-program findings.
    via: str = ""


class TopologyError(ValueError):
    """A malformed topology (unknown process/port, bad level, ...)."""


class Topology:
    """The declarative model asbcheck explores.  Build programmatically
    with :meth:`add_process` / :meth:`add_port` / :meth:`add_edge`, or
    load from JSON with :func:`loads`."""

    def __init__(self, name: str = "system"):
        self.name = name
        self.processes: Dict[str, ProcSpec] = {}
        self.ports: Dict[str, PortSpec] = {}
        self.edges: List[EdgeSpec] = []
        self.handles: Dict[str, Handle] = {}
        self._names: Dict[Handle, str] = {}
        #: Policy documents carried alongside the model (JSON objects as
        #: understood by :mod:`repro.policies.assertions`).
        self.policies: List[Dict[str, Any]] = []
        self._next_handle = _AUTO_HANDLE_BASE

    # -- symbolic handles ---------------------------------------------------

    def handle(self, name: str, value: Optional[Handle] = None) -> Handle:
        """The handle bound to *name*, minting a fresh one on first use."""
        existing = self.handles.get(name)
        if existing is not None:
            if value is not None and value != existing:
                raise TopologyError(f"handle {name!r} already bound to {existing:#x}")
            return existing
        if value is None:
            value = self._next_handle
            self._next_handle += 1
        self.handles[name] = value
        self._names[value] = name
        return value

    def handle_name(self, handle: Handle) -> str:
        return self._names.get(handle, f"h{handle:x}")

    def label(
        self,
        entries: Optional[Mapping[Union[str, Handle], Union[str, int]]] = None,
        default: Union[str, int] = 1,
    ) -> Label:
        """Build a label from symbolic entries: ``{"uT:u": "3"}``."""
        resolved: Dict[Handle, Level] = {}
        for key, level in (entries or {}).items():
            handle = self.handle(key) if isinstance(key, str) else key
            resolved[handle] = parse_level(level)
        return Label(resolved, parse_level(default))

    # -- construction -------------------------------------------------------

    def add_process(
        self,
        name: str,
        send: Optional[Label] = None,
        receive: Optional[Label] = None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> ProcSpec:
        if name in self.processes:
            raise TopologyError(f"duplicate process {name!r}")
        spec = ProcSpec(
            name=name,
            send=send if send is not None else Label.send_default(),
            receive=receive if receive is not None else Label.receive_default(),
            meta=dict(meta or {}),
        )
        self.processes[name] = spec
        return spec

    def add_port(
        self,
        name: str,
        owner: str,
        label: Optional[Label] = None,
        fork: bool = False,
    ) -> PortSpec:
        if name in self.ports:
            raise TopologyError(f"duplicate port {name!r}")
        handle = self.handle(name)
        if label is None:
            # new_port's default: pR ← {3}, then pR(p) ← 0 (Figure 4).
            label = Label({handle: L0}, L3)
        spec = PortSpec(name=name, owner=owner, label=label, handle=handle, fork=fork)
        self.ports[name] = spec
        return spec

    def add_edge(
        self,
        sender: str,
        port: str,
        cs: Optional[Label] = None,
        ds: Optional[Label] = None,
        v: Optional[Label] = None,
        dr: Optional[Label] = None,
        declassifier: bool = False,
        name: Optional[str] = None,
        via: str = "",
    ) -> EdgeSpec:
        if name is None:
            name = f"{sender}->{port}#{len(self.edges)}"
        edge = EdgeSpec(
            name=name,
            sender=sender,
            port=port,
            cs=cs if cs is not None else DEFAULT_CONTAMINATION,
            ds=ds if ds is not None else DEFAULT_DECONTAMINATE_SEND,
            v=v if v is not None else DEFAULT_VERIFY,
            dr=dr if dr is not None else DEFAULT_DECONTAMINATE_RECEIVE,
            declassifier=declassifier,
            via=via,
        )
        self.edges.append(edge)
        return edge

    # -- validation ---------------------------------------------------------

    def validate(self) -> List[str]:
        """Structural problems, empty when the topology is well-formed."""
        problems: List[str] = []
        names = set()
        for port in self.ports.values():
            if port.owner not in self.processes:
                problems.append(f"port {port.name!r}: unknown owner {port.owner!r}")
        for edge in self.edges:
            if edge.name in names:
                problems.append(f"duplicate edge name {edge.name!r}")
            names.add(edge.name)
            if edge.sender not in self.processes:
                problems.append(f"edge {edge.name!r}: unknown sender {edge.sender!r}")
            if edge.port not in self.ports:
                problems.append(f"edge {edge.name!r}: unknown port {edge.port!r}")
        return problems

    def format_label(self, label: Label) -> str:
        return label.format(self._names)

    # -- JSON ---------------------------------------------------------------

    def _label_to_json(self, label: Label) -> Dict[str, Any]:
        return {
            "entries": {
                self.handle_name(h): level_name(lvl) for h, lvl in label.entries()
            },
            "default": level_name(label.default),
        }

    def to_json(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "version": 1,
            "name": self.name,
            "processes": {},
            "ports": {},
            "edges": [],
        }
        for proc in self.processes.values():
            entry: Dict[str, Any] = {
                "send": self._label_to_json(proc.send),
                "receive": self._label_to_json(proc.receive),
            }
            if proc.meta:
                entry["meta"] = proc.meta
            doc["processes"][proc.name] = entry
        for port in self.ports.values():
            entry = {"owner": port.owner, "label": self._label_to_json(port.label)}
            if port.fork:
                entry["fork"] = True
            doc["ports"][port.name] = entry
        for edge in self.edges:
            item: Dict[str, Any] = {
                "name": edge.name,
                "sender": edge.sender,
                "port": edge.port,
            }
            for key, label, default in (
                ("cs", edge.cs, DEFAULT_CONTAMINATION),
                ("ds", edge.ds, DEFAULT_DECONTAMINATE_SEND),
                ("v", edge.v, DEFAULT_VERIFY),
                ("dr", edge.dr, DEFAULT_DECONTAMINATE_RECEIVE),
            ):
                if label != default:
                    item[key] = self._label_to_json(label)
            if edge.declassifier:
                item["declassifier"] = True
            if edge.via:
                item["via"] = edge.via
            doc["edges"].append(item)
        if self.policies:
            doc["policies"] = list(self.policies)
        return doc

    def dumps(self) -> str:
        return json.dumps(self.to_json(), indent=2)


def _label_from_json(topo: Topology, obj: Optional[Mapping[str, Any]], fallback: Label) -> Label:
    if obj is None:
        return fallback
    if not isinstance(obj, Mapping):
        raise TopologyError(f"not a label object: {obj!r}")
    return topo.label(obj.get("entries") or {}, obj.get("default", 1))


def from_json(doc: Mapping[str, Any]) -> Topology:
    """Parse a ``topology/v1`` JSON document."""
    if not isinstance(doc, Mapping):
        raise TopologyError("topology document must be a JSON object")
    topo = Topology(name=str(doc.get("name", "system")))
    for name, entry in (doc.get("processes") or {}).items():
        entry = entry or {}
        topo.add_process(
            name,
            send=_label_from_json(topo, entry.get("send"), Label.send_default()),
            receive=_label_from_json(topo, entry.get("receive"), Label.receive_default()),
            meta=entry.get("meta"),
        )
    for name, entry in (doc.get("ports") or {}).items():
        entry = entry or {}
        handle = topo.handle(name)
        label = entry.get("label")
        topo.add_port(
            name,
            owner=str(entry.get("owner", "")),
            label=(
                _label_from_json(topo, label, Label({handle: L0}, L3))
                if label is not None
                else None
            ),
            fork=bool(entry.get("fork", False)),
        )
    for entry in doc.get("edges") or []:
        topo.add_edge(
            sender=str(entry["sender"]),
            port=str(entry["port"]),
            cs=_label_from_json(topo, entry.get("cs"), DEFAULT_CONTAMINATION),
            ds=_label_from_json(topo, entry.get("ds"), DEFAULT_DECONTAMINATE_SEND),
            v=_label_from_json(topo, entry.get("v"), DEFAULT_VERIFY),
            dr=_label_from_json(topo, entry.get("dr"), DEFAULT_DECONTAMINATE_RECEIVE),
            declassifier=bool(entry.get("declassifier", False)),
            name=entry.get("name"),
            via=str(entry.get("via", "")),
        )
    topo.policies = list(doc.get("policies") or [])
    problems = topo.validate()
    if problems:
        raise TopologyError("; ".join(problems))
    return topo


def loads(text: str) -> Topology:
    return from_json(json.loads(text))


def load(path: Union[str, Path]) -> Topology:
    return loads(Path(path).read_text(encoding="utf-8"))


# -- the canonical label-state encoding ------------------------------------------------


class LabelStore:
    """Interns labels to small integer ids and memoizes the Figure 4
    operations over those ids.

    The model checker's state is a tuple of ids (QS, QR per process);
    every transition is a handful of dictionary probes here.  The actual
    label algebra is :mod:`repro.core.labelops` over
    :class:`~repro.core.chunks.ChunkedLabel` — the same fused operations
    the kernel runs — so the model cannot drift from the implementation's
    semantics without the cross-validation tests noticing.
    """

    def __init__(self) -> None:
        from repro.core.chunks import ChunkedLabel, OpStats

        self._chunked_cls = ChunkedLabel
        self.stats = OpStats()
        self._labels: List[Label] = []
        self._chunked: List[Any] = []
        self._ids: Dict[Label, int] = {}
        self._lub: Dict[Tuple[int, int], int] = {}
        self._effects: Dict[Tuple[int, int, int], int] = {}
        self._leq: Dict[Tuple[int, int], bool] = {}
        self._check: Dict[Tuple[int, int, int, int, int], bool] = {}
        self._privilege: Dict[Tuple[int, int, int], bool] = {}
        self.memo_hits = 0
        self.memo_misses = 0

    def intern(self, label: Label) -> int:
        ident = self._ids.get(label)
        if ident is None:
            ident = len(self._labels)
            self._ids[label] = ident
            self._labels.append(label)
            self._chunked.append(self._chunked_cls.from_label(label))
        return ident

    def label(self, ident: int) -> Label:
        return self._labels[ident]

    def chunked(self, ident: int):
        return self._chunked[ident]

    def __len__(self) -> int:
        return len(self._labels)

    # Each operation consults its memo first; misses run the fused
    # labelops implementation and intern the result.

    def lub(self, a: int, b: int) -> int:
        """``a ⊔ b`` — both ES = PS ⊔ CS and QR ← QR ⊔ DR."""
        key = (a, b)
        got = self._lub.get(key)
        if got is not None:
            self.memo_hits += 1
            return got
        self.memo_misses += 1
        from repro.core import labelops

        result = labelops.raise_receive(self._chunked[a], self._chunked[b], self.stats)
        ident = self.intern(result.to_label())
        self._lub[key] = ident
        return ident

    def effects(self, qs: int, es: int, ds: int) -> int:
        """``QS ← (QS ⊓ DS) ⊔ (ES ⊓ QS*)`` — the delivery effect."""
        key = (qs, es, ds)
        got = self._effects.get(key)
        if got is not None:
            self.memo_hits += 1
            return got
        self.memo_misses += 1
        from repro.core import labelops

        result = labelops.apply_send_effects(
            self._chunked[qs], self._chunked[es], self._chunked[ds], self.stats
        )
        ident = self.intern(result.to_label())
        self._effects[key] = ident
        return ident

    def leq(self, a: int, b: int) -> bool:
        """``a ⊑ b`` — requirement (4), DR ⊑ pR."""
        key = (a, b)
        got = self._leq.get(key)
        if got is not None:
            self.memo_hits += 1
            return got
        self.memo_misses += 1
        result = self._chunked[a].leq(self._chunked[b], self.stats)
        self._leq[key] = result
        return result

    def check(self, es: int, qr: int, dr: int, v: int, pr: int) -> bool:
        """Requirement (1): ``ES ⊑ (QR ⊔ DR) ⊓ V ⊓ pR``."""
        key = (es, qr, dr, v, pr)
        got = self._check.get(key)
        if got is not None:
            self.memo_hits += 1
            return got
        self.memo_misses += 1
        from repro.core import labelops

        result = labelops.check_send(
            self._chunked[es],
            self._chunked[qr],
            self._chunked[dr],
            self._chunked[v],
            self._chunked[pr],
            self.stats,
        )
        self._check[key] = result
        return result

    def privilege_ok(self, ps: int, ds: int, dr: int) -> bool:
        """Requirements (2) and (3): ``DS(h) < 3 ⇒ PS(h) = ⋆`` and
        ``DR(h) > ⋆ ⇒ PS(h) = ⋆`` — the send-time privilege checks."""
        key = (ps, ds, dr)
        got = self._privilege.get(key)
        if got is not None:
            self.memo_hits += 1
            return got
        self.memo_misses += 1
        cps, cds, cdr = self._chunked[ps], self._chunked[ds], self._chunked[dr]
        ok = True
        if cds.default < L3 and cps.max_level != STAR:
            ok = False
        if ok:
            for handle, level in cds.iter_entries():
                if level < L3 and cps(handle) != STAR:
                    ok = False
                    break
        if ok and cdr.default > STAR and cps.max_level != STAR:
            ok = False
        if ok:
            for handle, level in cdr.iter_entries():
                if level > STAR and cps(handle) != STAR:
                    ok = False
                    break
        self._privilege[key] = ok
        return ok
