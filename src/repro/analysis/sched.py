"""asbsched — systematic interleaving exploration over the real kernel.

asbcheck (:mod:`repro.analysis.check`) exhausts *label* state over an
abstract model; this module exhausts *schedules* over the real kernel.
Every nondeterministic decision — which runnable task steps next, whether
a due timer fires before or after a runnable task, whether a fractional
fault rule fires — flows through one
:class:`~repro.kernel.nondet.ScriptedSource`, so a run is a pure function
of ``(scenario, fault plan, seed, decision vector)``.  The explorer
re-executes the scenario from scratch with growing decision prefixes
(stateless model checking, in the CHESS style), checking the
:mod:`repro.policies.assertions` battery and the differential sanitizer
in every schedule.

Schedule pruning is dynamic partial-order reduction (Flanagan–Godefroid):
each step records a *footprint* — the ports it enqueued to or delivered
from, the inboxes (receiver run-queues) it touched, the tasks it
created — and only steps with intersecting footprints race.  After each
terminated run, for every step *j* the latest earlier step *i* of a
different task with an intersecting footprint adds *j*'s task to the
backtrack set of the choice point that scheduled *i*; independent steps
commute and fork no branches.  ``--exhaustive`` instead backtracks every
enabled option at every choice point (within the same depth bound), which
is the ground truth DPOR must agree with.

On a violation the offending decision vector is *shrunk* — prefix
truncation, then greedily restoring each decision to the FIFO default
while the violation persists — to a 1-minimal schedule, emitted as a
byte-identically replayable ``schedule/v1`` + ``faultplan/v1`` pair and
as SARIF via :mod:`repro.analysis.sarif`.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.core.chunks import ChunkedLabel
from repro.kernel import syscalls as sc
from repro.kernel.config import KernelConfig
from repro.kernel.errors import SimulationError
from repro.kernel.event_process import EventProcess
from repro.kernel.kernel import Kernel
from repro.kernel.nondet import ChoicePoint, ScriptedSource
from repro.kernel.ports import Port
from repro.kernel.process import Task

from repro.analysis.extract import WIRE
from repro.analysis.model import Topology
from repro.policies.assertions import Policy, policies_from_json
from repro.policies.runtime import PolicyBreach, RuntimeMonitor

SCHEDULE_SCHEMA = "schedule/v1"


class SchedError(Exception):
    """The scenario cannot be explored (unknown owner, bad schedule file)."""


# -- one run --------------------------------------------------------------------------


@dataclass
class StepRecord:
    """One scheduler step of one run, with its DPOR footprint."""

    index: int
    key: str                       # base-process scheduler key
    name: str                      # task name (EP name when an EP ran)
    choice: Optional[int]          # seq of the "pick" point that chose it
    footprint: Set[Tuple[str, Any]] = field(default_factory=set)


@dataclass
class RunResult:
    """Everything observable about one terminated schedule."""

    scenario: str
    decisions: List[ChoicePoint]
    steps: List[StepRecord]
    breaches: List[PolicyBreach]
    sanitizer_violations: List[str]
    delivered_edges: Set[str]
    quiescent: bool
    steps_executed: int
    fault_events: bytes            # faultlog/v1, b"" without a plan
    digest: bytes                  # canonical byte-comparable run record

    @property
    def violating(self) -> bool:
        return bool(self.breaches or self.sanitizer_violations)

    def decision_vector(self) -> List[int]:
        return [point.chosen for point in self.decisions]

    def to_json(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "decisions": [point.to_json() for point in self.decisions],
            "steps": [step.key for step in self.steps],
            "breaches": [b.to_json() for b in self.breaches],
            "sanitizer_violations": list(self.sanitizer_violations),
            "quiescent": self.quiescent,
            "steps_executed": self.steps_executed,
        }


class _Observer:
    """Kernel hook: per-step footprints, pick alignment, live policy checks."""

    def __init__(self, source: ScriptedSource):
        self.source = source
        self.kernel: Optional[Kernel] = None
        self.monitor: Optional[RuntimeMonitor] = None
        self.steps: List[StepRecord] = []
        #: Fork-port owners reset to these labels after each delivery —
        #: the kernel-side emulation of "each delivery lands on a fresh
        #: event process" (PortSpec.fork), keeping the live semantics
        #: aligned with the model's frozen-base reading.
        self.fresh_labels: Dict[str, Tuple[ChunkedLabel, ChunkedLabel]] = {}

    @staticmethod
    def _base_key(task: Task) -> str:
        return task.base.key if isinstance(task, EventProcess) else task.key

    def _touch(self, *tokens: Tuple[str, Any]) -> None:
        if self.steps:
            self.steps[-1].footprint.update(tokens)

    def _step_index(self) -> int:
        return len(self.steps) - 1

    # -- kernel events ------------------------------------------------------

    def on_step(self, task: Task) -> None:
        choice = None
        log = self.source.log
        if log and log[-1].kind == "pick":
            choice = log[-1].seq
        key = self._base_key(task)
        self.steps.append(
            StepRecord(
                index=len(self.steps),
                key=key,
                name=task.name,
                choice=choice,
                footprint={("task", key)},
            )
        )

    def on_spawn(self, process: Task) -> None:
        self._touch(("task", process.key))

    def on_send(self, task: Task, request: sc.Send) -> None:
        self._touch(("port", request.port))
        kernel = self.kernel
        if kernel is not None:
            entry = kernel.ports.get(request.port)
            owner = kernel.tasks.get(entry.owner) if entry is not None else None
            if owner is not None:
                self._touch(("inbox", self._base_key(owner)))

    def on_recv(self, task: Task, request: sc.Recv) -> None:
        # A receive attempt depends on every enqueue to this task's
        # inbox — including the ones that *didn't* happen yet, which is
        # why the token is the inbox, not the (possibly empty) ports.
        self._touch(("inbox", self._base_key(task)))
        if request.port is not None:
            self._touch(("port", request.port))

    def on_deliver(self, task: Task, entry: Port, qmsg: Any, delivered: bool) -> None:
        self._touch(("port", entry.handle), ("inbox", self._base_key(task)))
        if delivered and self.monitor is not None:
            payload = qmsg.payload
            edge = payload.get("edge") if isinstance(payload, dict) else None
            self.monitor.check_delivery(
                edge,
                qmsg.sender_name,
                task.name,
                qmsg.effective_send,
                step=self._step_index(),
            )
            self.monitor.check_process(task.name, task.send_label, self._step_index())
        if delivered:
            fresh = self.fresh_labels.get(task.key)
            if fresh is not None:
                task.send_label, task.receive_label = fresh

    def on_change_label(self, task: Task, request: Any) -> None:
        if self.monitor is not None:
            self.monitor.check_process(task.name, task.send_label, self._step_index())

    def on_port_touch(self, task: Task, handle: Any) -> None:
        self._touch(("port", handle))


class Scenario:
    """A reproducible kernel setup the explorer re-executes at will.

    *factory(kernel, observer)* spawns the processes, installs ports and
    labels, injects wire traffic, and returns a
    :class:`~repro.policies.runtime.RuntimeMonitor` (or None).  The
    explorer calls :meth:`execute` once per schedule with a fresh kernel
    every time, so the factory must be deterministic.  *invariant*, when
    given, runs against the terminal kernel and returns an error string
    (or None) — scenario-specific assertions the policy battery cannot
    express.
    """

    def __init__(
        self,
        name: str,
        factory: Callable[[Kernel, _Observer], Optional[RuntimeMonitor]],
        plan: Optional[Any] = None,
        fault_seed: int = 0,
        max_steps: int = 4000,
        invariant: Optional[Callable[[Kernel], Optional[str]]] = None,
    ):
        self.name = name
        self.factory = factory
        self.plan = plan
        self.fault_seed = fault_seed
        self.max_steps = max_steps
        self.invariant = invariant
        #: Edge names for dead-edge liveness (topology scenarios).
        self.edge_names: List[str] = []
        self.policies: List[Policy] = []

    def execute(self, source: Optional[ScriptedSource] = None) -> RunResult:
        """One complete run under *source* (default: the all-FIFO script)."""
        if source is None:
            source = ScriptedSource((), seed=self.fault_seed)
        kernel = Kernel(config=KernelConfig(sanitize=True, sanitize_strict=False))
        # Every syscall is a scheduling point: interleavings the paper's
        # cooperative round-robin would fuse become visible to the
        # explorer.
        kernel.INLINE_SYSCALL_BUDGET = 1
        kernel.nondet = source
        if self.plan is not None:
            from repro.faults.injector import FaultInjector

            kernel.faults = FaultInjector(
                self.plan, seed=self.fault_seed, kernel=kernel, source=source
            )
        observer = _Observer(source)
        observer.kernel = kernel
        kernel.hooks.append(observer)
        monitor = self.factory(kernel, observer)
        observer.monitor = monitor
        quiescent = True
        try:
            executed = kernel.run(max_steps=self.max_steps)
        except SimulationError:
            quiescent = False
            executed = self.max_steps
        breaches: List[PolicyBreach] = []
        if monitor is not None:
            for process in kernel.processes.values():
                monitor.check_process(process.name, process.send_label, -1)
            breaches = list(monitor.breaches)
        if self.invariant is not None:
            problem = self.invariant(kernel)
            if problem:
                breaches.append(
                    PolicyBreach(
                        kind="invariant",
                        policy="scenario invariant",
                        process="",
                        handle="",
                        edge="",
                        step=-1,
                        message=problem,
                    )
                )
        sanitizer_violations = (
            [v.format() for v in kernel.sanitizer.violations]
            if kernel.sanitizer is not None
            else []
        )
        fault_events = (
            kernel.faults.events_json() if kernel.faults is not None else b""
        )
        delivered = set(monitor.delivered_edges) if monitor is not None else set()
        digest_doc = {
            "scenario": self.name,
            "decisions": [point.to_json() for point in source.log],
            "steps": [step.key for step in observer.steps],
            "drops": [list(record) for record in kernel.drop_log.records],
            "breaches": [b.to_json() for b in breaches],
            "sanitizer": sanitizer_violations,
            "faultlog": fault_events.decode(),
            "labels": sorted(
                (
                    process.name,
                    sorted(process.send_label.to_label().entries()),
                    process.send_label.to_label().default,
                    sorted(process.receive_label.to_label().entries()),
                    process.receive_label.to_label().default,
                )
                for process in kernel.processes.values()
            ),
        }
        digest = json.dumps(
            digest_doc, sort_keys=True, separators=(",", ":")
        ).encode()
        return RunResult(
            scenario=self.name,
            decisions=list(source.log),
            steps=observer.steps,
            breaches=breaches,
            sanitizer_violations=sanitizer_violations,
            delivered_edges=delivered,
            quiescent=quiescent,
            steps_executed=executed,
            fault_events=fault_events,
            digest=digest,
        )


# -- scenarios from topologies --------------------------------------------------------


def _edge_body(edges: Sequence[Tuple[Any, Any]]) -> Callable[[Any], Any]:
    """A process body firing *edges* in order: poll the inbox (so queued
    traffic can contaminate the sender first — the racy part), then send;
    finally drain forever."""

    def body(ctx: Any) -> Any:
        for handle, edge in edges:
            yield sc.Recv(block=False)
            yield sc.Send(
                handle,
                {"edge": edge.name},
                cs=edge.cs,
                ds=edge.ds,
                v=edge.v,
                dr=edge.dr,
            )
        while True:
            yield sc.Recv()

    return body


def scenario_from_topology(
    topology: Topology,
    plan: Optional[Any] = None,
    fault_seed: int = 0,
    max_steps: int = 4000,
    policies: Optional[Sequence[Policy]] = None,
    name: Optional[str] = None,
) -> Scenario:
    """Animate *topology* as live kernel processes.

    Each process owns its PortSpec ports (exact handles and labels,
    installed white-box exactly as :mod:`repro.analysis.replay` does) and
    runs a body that fires its EdgeSpec sends in order, polling its inbox
    before each send so delivery-before-send interleavings contaminate it
    exactly as the model predicts.  ``<wire>`` edges are injected once at
    boot.  Fork ports get the model's fresh-EP semantics via the
    observer's label reset (see :class:`_Observer`).
    """
    battery = (
        list(policies)
        if policies is not None
        else policies_from_json(topology.policies)
    )
    problems = topology.validate()
    if problems:
        raise SchedError("; ".join(problems))

    def factory(kernel: Kernel, observer: _Observer) -> RuntimeMonitor:
        edges_by_sender: Dict[str, List[Any]] = {}
        for edge in topology.edges:
            edges_by_sender.setdefault(edge.sender, []).append(edge)
        tasks: Dict[str, Any] = {}
        for pname, spec in topology.processes.items():
            if pname == WIRE:
                continue
            pairs = [
                (topology.ports[edge.port].handle, edge)
                for edge in edges_by_sender.get(pname, [])
            ]
            process = kernel.spawn(_edge_body(pairs), name=pname)
            process.send_label = ChunkedLabel.from_label(spec.send)
            process.receive_label = ChunkedLabel.from_label(spec.receive)
            tasks[pname] = process
        for port in topology.ports.values():
            owner = tasks.get(port.owner)
            if owner is None:
                raise SchedError(
                    f"port {port.name!r} owned by unexplorable {port.owner!r}"
                )
            kernel.ports[port.handle] = Port(
                handle=port.handle,
                label=ChunkedLabel.from_label(port.label),
                owner=owner.key,
            )
            owner.owned_ports.add(port.handle)
        for port in topology.ports.values():
            if port.fork:
                owner = tasks[port.owner]
                observer.fresh_labels[owner.key] = (
                    owner.send_label,
                    owner.receive_label,
                )
        for edge in edges_by_sender.get(WIRE, []):
            kernel.inject(topology.ports[edge.port].handle, {"edge": edge.name})
        return RuntimeMonitor(
            battery,
            handles=topology.handles,
            declassifier_edges=[e.name for e in topology.edges if e.declassifier],
        )

    scenario = Scenario(
        name or topology.name,
        factory,
        plan=plan,
        fault_seed=fault_seed,
        max_steps=max_steps,
    )
    scenario.edge_names = [edge.name for edge in topology.edges]
    scenario.policies = battery
    return scenario


def okws_scenario(
    policies: Optional[Sequence[Policy]] = None, **kwargs: Any
) -> Scenario:
    """The shipped OKWS topology, extracted from a live run, as a scenario.

    The animation replays every edge against the extraction's *final*
    label snapshot, so deliveries the real run made before its labels
    finished evolving can bounce on the Figure 4 checks — harmless drops,
    but they make liveness over the animation meaningless.  The dead-edge
    policy is therefore filtered out; the safety battery (isolation,
    confinement, mandatory declassification) is checked in full.
    """
    from repro.okws.topology import record_okws_topology
    from repro.policies.assertions import DeadEdges

    topology = record_okws_topology()
    battery = (
        list(policies)
        if policies is not None
        else [
            p
            for p in policies_from_json(topology.policies)
            if not isinstance(p, DeadEdges)
        ]
    )
    return scenario_from_topology(topology, policies=battery, **kwargs)


# -- the explorer ---------------------------------------------------------------------


@dataclass
class _Node:
    """One choice point on the current DFS prefix."""

    kind: str
    options: Tuple[str, ...]
    chosen: int
    done: Set[int]
    backtrack: Set[int]
    step_index: Optional[int] = None   # pick nodes: the step it scheduled


@dataclass
class ExploreReport:
    """The outcome of one exploration."""

    scenario: str
    mode: str                          # "dpor" | "exhaustive"
    schedules: int
    transitions: int
    depth: Optional[int]
    complete: bool                     # schedule space exhausted in budget
    violation: Optional[RunResult]
    minimized: Optional[List[int]]     # shrunk decision vector
    minimized_run: Optional[RunResult]
    shrink_trials: int
    dead_edges: List[PolicyBreach]
    elapsed: float
    max_choice_points: int

    @property
    def ok(self) -> bool:
        return self.violation is None and not self.dead_edges

    def counterexample_run(self) -> Optional[RunResult]:
        return self.minimized_run or self.violation

    def format(self) -> str:
        lines = [
            f"asbsched: {self.scenario} [{self.mode}"
            + (f", depth {self.depth}" if self.depth is not None else "")
            + f"]: {self.schedules} schedule(s), {self.transitions} "
            f"transition(s), {self.elapsed:.2f}s"
            + ("" if self.complete else " (budget exhausted, space truncated)")
        ]
        if self.ok:
            lines.append("  no policy or sanitizer violation in any explored schedule")
            return "\n".join(lines)
        run = self.counterexample_run()
        if run is not None:
            what = "minimized" if self.minimized is not None else "violating"
            vector = (
                self.minimized
                if self.minimized is not None
                else run.decision_vector()
            )
            lines.append(
                f"  {what} schedule ({len(vector)} decision(s), "
                f"{self.shrink_trials} shrink trial(s)): {vector}"
            )
            for point in run.decisions:
                if point.forced or point.chosen == 0:
                    continue
                lines.append(
                    f"    @{point.seq} {point.kind}: "
                    f"{point.options[point.chosen]}  (of {list(point.options)})"
                )
            for breach in run.breaches:
                lines.append(f"  BREACH [{breach.kind}] {breach.message}")
            for violation in run.sanitizer_violations:
                lines.append(f"  SANITIZER {violation}")
        for breach in self.dead_edges:
            lines.append(f"  BREACH [{breach.kind}] {breach.message}")
        return "\n".join(lines)

    def to_json(self) -> Dict[str, Any]:
        run = self.counterexample_run()
        return {
            "schema": "sched-report/v1",
            "scenario": self.scenario,
            "mode": self.mode,
            "schedules": self.schedules,
            "transitions": self.transitions,
            "depth": self.depth,
            "complete": self.complete,
            "ok": self.ok,
            "max_choice_points": self.max_choice_points,
            "elapsed": round(self.elapsed, 3),
            "shrink_trials": self.shrink_trials,
            "minimized": self.minimized,
            "counterexample": run.to_json() if run is not None else None,
            "dead_edges": [b.to_json() for b in self.dead_edges],
        }


def _analyze(
    nodes: List[_Node], result: RunResult, mode: str, depth: Optional[int]
) -> None:
    """Populate backtrack sets from one terminated run."""
    bound = len(nodes) if depth is None else min(depth, len(nodes))
    if mode == "exhaustive":
        for node in nodes[:bound]:
            node.backtrack = set(range(len(node.options)))
        return
    # DPOR.  Non-pick points (wake order, fault chance) are always both
    # ways: they gate timer/fault behaviour whose dependencies the
    # footprints do not model.
    for node in nodes[:bound]:
        if node.kind != "pick":
            node.backtrack = set(range(len(node.options)))
    steps = result.steps
    for j, sj in enumerate(steps):
        if sj.choice is None:
            continue
        for i in range(j - 1, -1, -1):
            si = steps[i]
            if si.key == sj.key:
                continue  # program order; scan on for earlier cross-task races
            if not (si.footprint & sj.footprint):
                continue
            # Racing pair: at the point that scheduled i, also try j's
            # task (if it was enabled there; a forced point has no
            # alternative and the race surfaces elsewhere).
            if si.choice is not None and si.choice < bound:
                node = nodes[si.choice]
                if sj.key in node.options:
                    node.backtrack.add(node.options.index(sj.key))
                else:
                    node.backtrack = set(range(len(node.options)))
            break  # only the latest racing predecessor (Flanagan–Godefroid)


def explore(
    scenario: Scenario,
    mode: str = "dpor",
    depth: Optional[int] = None,
    max_schedules: int = 20_000,
    time_budget: Optional[float] = None,
    shrink: bool = True,
    stop_on_violation: bool = True,
) -> ExploreReport:
    """Enumerate *scenario*'s schedule space.

    *depth* bounds the number of choice points that may deviate from the
    FIFO default (the usual bounded-DFS guard for unbounded spaces);
    *max_schedules* and *time_budget* (seconds) cap the whole run.  With
    *stop_on_violation* (the default) the DFS stops at the first
    violating schedule and — with *shrink* — minimizes it.
    """
    if mode not in ("dpor", "exhaustive"):
        raise SchedError(f"unknown mode {mode!r} (expected dpor or exhaustive)")
    started = time.monotonic()
    nodes: List[_Node] = []
    script: List[int] = []
    schedules = 0
    transitions = 0
    max_points = 0
    delivered_union: Set[str] = set()
    violation: Optional[RunResult] = None
    complete = True
    while True:
        result = scenario.execute(ScriptedSource(script, seed=scenario.fault_seed))
        schedules += 1
        transitions += len(result.steps)
        max_points = max(max_points, len(result.decisions))
        delivered_union |= result.delivered_edges
        for seq in range(len(nodes), len(result.decisions)):
            point = result.decisions[seq]
            nodes.append(
                _Node(
                    kind=point.kind,
                    options=point.options,
                    chosen=point.chosen,
                    done={point.chosen},
                    backtrack={point.chosen},
                )
            )
        for step in result.steps:
            if step.choice is not None and step.choice < len(nodes):
                nodes[step.choice].step_index = step.index
        _analyze(nodes, result, mode, depth)
        if result.violating and violation is None:
            violation = result
            if stop_on_violation:
                break
        next_seq = None
        for seq in range(len(nodes) - 1, -1, -1):
            if nodes[seq].backtrack - nodes[seq].done:
                next_seq = seq
                break
        if next_seq is None:
            break
        if schedules >= max_schedules or (
            time_budget is not None and time.monotonic() - started > time_budget
        ):
            complete = False
            break
        node = nodes[next_seq]
        choice = min(node.backtrack - node.done)
        node.done.add(choice)
        node.chosen = choice
        script = [nodes[seq].chosen for seq in range(next_seq)] + [choice]
        del nodes[next_seq + 1 :]

    minimized: Optional[List[int]] = None
    minimized_run: Optional[RunResult] = None
    trials = 0
    if violation is not None and shrink:
        minimized, trials = shrink_schedule(scenario, violation.decision_vector())
        minimized_run = scenario.execute(
            ScriptedSource(minimized, seed=scenario.fault_seed)
        )
    dead: List[PolicyBreach] = []
    if violation is None and complete and scenario.edge_names and scenario.policies:
        monitor = RuntimeMonitor(scenario.policies, handles={})
        dead = monitor.dead_edge_breaches(scenario.edge_names, delivered_union)
    return ExploreReport(
        scenario=scenario.name,
        mode=mode,
        schedules=schedules,
        transitions=transitions,
        depth=depth,
        complete=complete,
        violation=violation,
        minimized=minimized,
        minimized_run=minimized_run,
        shrink_trials=trials,
        dead_edges=dead,
        elapsed=time.monotonic() - started,
        max_choice_points=max_points,
    )


def shrink_schedule(
    scenario: Scenario, decisions: Sequence[int]
) -> Tuple[List[int], int]:
    """Minimize a violating decision vector.

    Two phases to a 1-minimal fixpoint: (1) the shortest prefix that
    still violates (everything beyond a script falls back to the FIFO
    default anyway), then (2) greedily restore each remaining non-default
    decision to 0 while the violation persists.  Returns (vector, trials).
    """
    trials = 0

    def violates(script: Sequence[int]) -> bool:
        nonlocal trials
        trials += 1
        return scenario.execute(
            ScriptedSource(script, seed=scenario.fault_seed)
        ).violating

    best = list(decisions)
    while best and best[-1] == 0:
        best.pop()
    for cut in range(len(best)):
        if violates(best[:cut]):
            best = best[:cut]
            break
    changed = True
    while changed:
        changed = False
        for index in range(len(best)):
            if best[index] == 0:
                continue
            trial = list(best)
            trial[index] = 0
            if violates(trial):
                best = trial
                changed = True
        while best and best[-1] == 0:
            best.pop()
    return best, trials


# -- schedule files -------------------------------------------------------------------


def schedule_to_json(
    scenario: Scenario,
    decisions: Sequence[int],
    annotated: Optional[Sequence[ChoicePoint]] = None,
) -> Dict[str, Any]:
    """A ``schedule/v1`` document: everything needed to byte-identically
    re-execute one schedule of *scenario*."""
    doc: Dict[str, Any] = {
        "schema": SCHEDULE_SCHEMA,
        "scenario": scenario.name,
        "fault_seed": scenario.fault_seed,
        "max_steps": scenario.max_steps,
        "decisions": list(decisions),
    }
    if annotated:
        doc["annotated"] = [point.to_json() for point in annotated]
    return doc


def schedule_from_json(doc: Dict[str, Any]) -> List[int]:
    if not isinstance(doc, dict) or doc.get("schema") != SCHEDULE_SCHEMA:
        raise SchedError(f"not a {SCHEDULE_SCHEMA} document")
    decisions = doc.get("decisions")
    if not isinstance(decisions, list) or not all(
        isinstance(d, int) and d >= 0 for d in decisions
    ):
        raise SchedError("decisions must be a list of non-negative indices")
    return list(decisions)


def load_schedule(path: Union[str, Path]) -> List[int]:
    return schedule_from_json(json.loads(Path(path).read_text(encoding="utf-8")))


def replay_schedule(scenario: Scenario, decisions: Sequence[int]) -> RunResult:
    """Re-execute one schedule.  Replaying the same (scenario, plan,
    seed, decisions) always yields the identical ``RunResult.digest``."""
    return scenario.execute(ScriptedSource(decisions, seed=scenario.fault_seed))


def write_counterexample(
    report: ExploreReport, scenario: Scenario, out_dir: Union[str, Path]
) -> List[Path]:
    """Emit the minimized schedule + fault plan for a violating report."""
    run = report.counterexample_run()
    if run is None:
        return []
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    vector = (
        report.minimized if report.minimized is not None else run.decision_vector()
    )
    schedule_path = out / f"{scenario.name}.schedule.json"
    schedule_path.write_text(
        json.dumps(
            schedule_to_json(scenario, vector, annotated=run.decisions), indent=2
        )
        + "\n",
        encoding="utf-8",
    )
    if scenario.plan is not None:
        plan_doc = scenario.plan.to_json()
    else:
        from repro.faults.plan import SCHEMA as PLAN_SCHEMA

        plan_doc = {"schema": PLAN_SCHEMA, "rules": []}
    plan_path = out / f"{scenario.name}.faultplan.json"
    plan_path.write_text(json.dumps(plan_doc, indent=2) + "\n", encoding="utf-8")
    return [schedule_path, plan_path]
