"""Static and dynamic correctness tooling for the label system.

Three cooperating layers:

- :mod:`repro.analysis.asblint` + :mod:`repro.analysis.astflow`: the
  **asblint** static pass — abstract interpretation of simulated-program
  generators over label intervals, reporting provable Figure 4 violations
  before any code runs;
- :mod:`repro.analysis.check` + :mod:`repro.analysis.model` +
  :mod:`repro.analysis.extract`: the **asbcheck** whole-system model
  checker — exhaustive exploration of a declarative topology (written by
  hand or extracted from a live kernel) under the verbatim Figure 4
  rules, verifying :mod:`repro.policies.assertions` policies and
  returning shortest counterexample traces, replayable on the real
  kernel via :mod:`repro.analysis.replay`;
- :mod:`repro.analysis.sanitizer`: the **runtime sanitizer** — an opt-in
  kernel mode differentially checking the fused label fast paths against
  the naive operators on every IPC;
- :mod:`repro.analysis.sched`: the **asbsched** schedule-space explorer —
  it animates a topology on the real kernel and systematically drives it
  through alternative interleavings (scheduler picks, timer-vs-task wake
  order, fault branches) via one pluggable
  :class:`~repro.kernel.nondet.NondetSource`, checking the policy battery
  and the sanitizer on every schedule, with dynamic partial-order
  reduction and counterexample shrinking to a byte-identically
  replayable ``schedule/v1`` file.

All are exposed through ``python -m repro`` (see
:mod:`repro.analysis.cli`); ``--format sarif`` on the static commands
emits GitHub code-scanning documents (:mod:`repro.analysis.sarif`).
"""

from repro.analysis.asblint import (
    analyze_file,
    analyze_paths,
    analyze_source,
    findings,
    format_reports,
    render_json,
)
from repro.analysis.check import CheckReport, link_lint_findings, run_check
from repro.analysis.extract import TopologyRecorder
from repro.analysis.intervals import AbstractLabel, AbstractState, Interval
from repro.analysis.model import Topology
from repro.analysis.rules import (
    DECLASSIFY_NO_STAR,
    Diagnostic,
    FileReport,
    HANDLE_LEAK,
    NEVER_PASS,
    RULES,
    Rule,
    TAINT_CREEP,
    resolve_rule,
)
from repro.analysis.sanitizer import LabelSanitizer, SanitizerViolation, Violation
from repro.analysis.sched import (
    ExploreReport,
    RunResult,
    Scenario,
    explore,
    okws_scenario,
    replay_schedule,
    scenario_from_topology,
    shrink_schedule,
)

__all__ = [
    "AbstractLabel",
    "AbstractState",
    "CheckReport",
    "DECLASSIFY_NO_STAR",
    "Diagnostic",
    "ExploreReport",
    "FileReport",
    "HANDLE_LEAK",
    "Interval",
    "LabelSanitizer",
    "NEVER_PASS",
    "RULES",
    "Rule",
    "RunResult",
    "SanitizerViolation",
    "Scenario",
    "TAINT_CREEP",
    "Topology",
    "TopologyRecorder",
    "Violation",
    "analyze_file",
    "analyze_paths",
    "analyze_source",
    "explore",
    "findings",
    "format_reports",
    "link_lint_findings",
    "okws_scenario",
    "render_json",
    "replay_schedule",
    "resolve_rule",
    "run_check",
    "scenario_from_topology",
    "shrink_schedule",
]
