"""Static and dynamic correctness tooling for the label system.

Two cooperating layers:

- :mod:`repro.analysis.asblint` + :mod:`repro.analysis.astflow`: the
  **asblint** static pass — abstract interpretation of simulated-program
  generators over label intervals, reporting provable Figure 4 violations
  before any code runs;
- :mod:`repro.analysis.sanitizer`: the **runtime sanitizer** — an opt-in
  kernel mode differentially checking the fused label fast paths against
  the naive operators on every IPC.

Both are exposed through ``python -m repro`` (see
:mod:`repro.analysis.cli`).
"""

from repro.analysis.asblint import (
    analyze_file,
    analyze_paths,
    analyze_source,
    findings,
    format_reports,
    render_json,
)
from repro.analysis.intervals import AbstractLabel, AbstractState, Interval
from repro.analysis.rules import (
    DECLASSIFY_NO_STAR,
    Diagnostic,
    FileReport,
    HANDLE_LEAK,
    NEVER_PASS,
    RULES,
    Rule,
    TAINT_CREEP,
    resolve_rule,
)
from repro.analysis.sanitizer import LabelSanitizer, SanitizerViolation, Violation

__all__ = [
    "AbstractLabel",
    "AbstractState",
    "DECLASSIFY_NO_STAR",
    "Diagnostic",
    "FileReport",
    "HANDLE_LEAK",
    "Interval",
    "LabelSanitizer",
    "NEVER_PASS",
    "RULES",
    "Rule",
    "SanitizerViolation",
    "TAINT_CREEP",
    "Violation",
    "analyze_file",
    "analyze_paths",
    "analyze_source",
    "findings",
    "format_reports",
    "render_json",
    "resolve_rule",
]
