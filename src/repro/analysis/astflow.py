"""AST-level label-flow analysis of simulated programs.

Simulated programs are Python generators that ``yield`` syscall objects
from :mod:`repro.kernel.syscalls`.  That convention is a gift to static
analysis: every kernel interaction is a syntactically recognizable
``yield <Syscall>(...)`` expression, so the complete syscall behaviour of
a program is visible in its AST — no call-graph reconstruction through an
FFI, no pointer analysis.

:class:`ProgramAnalyzer` abstract-interprets one generator function:

- it walks the function body in control-flow order (branch states are
  hulled at joins, loop bodies are iterated to an interval fixpoint —
  the syscall-flow graph of a structured Python function *is* its AST);
- it tracks an :class:`~repro.analysis.intervals.AbstractState` — interval
  abstractions of the process send/receive labels — plus a small symbolic
  environment mapping local names to the ports, handles, channels and
  labels they hold;
- at every ``yield Send(...)`` (and ``ChangeLabel``) site it evaluates
  the rule catalogue of :mod:`repro.analysis.rules` against the abstract
  Figure 4 check.

Entry states: a module-level (or closure) generator taking a single
``ctx`` parameter is a *process body* and starts from the fresh-process
labels PS = {1}, PR = {2}; everything else — event bodies ``(ectx, msg)``,
RPC helpers, methods — starts from
:meth:`~repro.analysis.intervals.AbstractState.unknown_history`, because
an event process inherits whatever its base accumulated and a helper can
be called from anywhere.  The fresh state is what lets the analyzer prove
"definitely holds no ⋆" before the first receive; after a receive,
anything may have been granted and must-claims narrow to tracked tokens.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis import rules as R
from repro.analysis.intervals import (
    AbstractLabel,
    AbstractState,
    Interval,
    IV_L0,
    IV_L1,
    IV_STAR,
    TOP,
    check_send_interval,
    exact,
)
from repro.core.levels import L1, L2, L3, STAR

#: Names of the syscall dataclasses a program may yield.
SYSCALL_NAMES = frozenset(
    {
        "NewHandle",
        "NewPort",
        "DissociatePort",
        "SetPortLabel",
        "Send",
        "Recv",
        "Spawn",
        "Exit",
        "ChangeLabel",
        "GetLabels",
        "GetEnv",
        "Compute",
        "EpCheckpoint",
        "EpYield",
        "EpClean",
        "EpExit",
    }
)

#: Level constants resolvable in label literals.
LEVEL_CONSTS = {"STAR": STAR, "L0": 0, "L1": L1, "L2": L2, "L3": L3}

#: Positional argument order of the Send dataclass (short Figure 4 names;
#: the long spellings are accepted as keyword aliases below).
SEND_FIELDS = (
    "port",
    "payload",
    "cs",
    "ds",
    "v",
    "dr",
    "transfer",
)

MAX_LOOP_ITERATIONS = 8


# -- symbolic values --------------------------------------------------------------


@dataclass(frozen=True)
class Unknown:
    """A value the analysis cannot track."""


UNKNOWN = Unknown()


@dataclass(frozen=True)
class PortVal:
    """A port handle created by this program (``yield NewPort()``)."""

    token: str


@dataclass(frozen=True)
class HandleVal:
    """A compartment handle created by this program (``yield NewHandle()``)."""

    token: str


@dataclass(frozen=True)
class ChannelVal:
    """An ``ipc.rpc.Channel`` whose reply port we may know."""

    port: Union[PortVal, Unknown]


@dataclass(frozen=True)
class MsgVal:
    """A received Message (payload contents unknown)."""


@dataclass(frozen=True)
class LabelVal:
    """A Label expression resolved to its interval abstraction."""

    label: AbstractLabel


Value = Union[Unknown, PortVal, HandleVal, ChannelVal, MsgVal, LabelVal]


@dataclass(frozen=True)
class PortStatus:
    """What the analysis knows about a created port's label ``pR``."""

    label: AbstractLabel

    def hull(self, other: "PortStatus") -> "PortStatus":
        return PortStatus(self.label.hull(other.label))


class FlowState:
    """Mutable per-path analysis state: abstract labels + environment."""

    __slots__ = ("abstract", "env", "ports", "terminated")

    def __init__(
        self,
        abstract: AbstractState,
        env: Optional[Dict[str, Value]] = None,
        ports: Optional[Dict[str, PortStatus]] = None,
        terminated: bool = False,
    ):
        self.abstract = abstract
        self.env: Dict[str, Value] = dict(env or {})
        self.ports: Dict[str, PortStatus] = dict(ports or {})
        self.terminated = terminated

    def copy(self) -> "FlowState":
        return FlowState(self.abstract.copy(), self.env, self.ports, self.terminated)

    def hull(self, other: "FlowState") -> "FlowState":
        if self.terminated and not other.terminated:
            return other.copy()
        if other.terminated and not self.terminated:
            return self.copy()
        env: Dict[str, Value] = {}
        for name in set(self.env) & set(other.env):
            if self.env[name] == other.env[name]:
                env[name] = self.env[name]
        ports: Dict[str, PortStatus] = {}
        for token in set(self.ports) | set(other.ports):
            a, b = self.ports.get(token), other.ports.get(token)
            if a is None:
                ports[token] = b  # type: ignore[assignment]
            elif b is None:
                ports[token] = a
            else:
                ports[token] = a.hull(b)
        return FlowState(
            self.abstract.hull(other.abstract),
            env,
            ports,
            self.terminated and other.terminated,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FlowState):
            return NotImplemented
        return (
            self.abstract == other.abstract
            and self.env == other.env
            and self.ports == other.ports
            and self.terminated == other.terminated
        )


# -- program discovery -------------------------------------------------------------


@dataclass
class Program:
    """One discovered simulated-program generator."""

    node: ast.FunctionDef
    qualname: str
    fresh: bool  # fresh-process entry state vs unknown history


def _callee_name(call: ast.Call) -> Optional[str]:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _own_nodes(fn: ast.FunctionDef):
    """Walk *fn*'s body without descending into nested function scopes."""
    stack: List[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _yields_syscalls(fn: ast.FunctionDef) -> bool:
    for node in _own_nodes(fn):
        if isinstance(node, ast.Yield) and isinstance(node.value, ast.Call):
            name = _callee_name(node.value)
            if name in SYSCALL_NAMES:
                return True
    return False


def _is_fresh_entry(fn: ast.FunctionDef) -> bool:
    """A process body: exactly one parameter, canonically ``ctx``.

    Event bodies take ``(ectx, msg)``, handlers ``(ectx, request)``, RPC
    helpers arbitrary signatures — all get the unknown-history state.
    """
    args = fn.args
    if args.vararg or args.kwarg or args.kwonlyargs or args.posonlyargs:
        return False
    if len(args.args) != 1:
        return False
    return args.args[0].arg in ("ctx", "ectx")


def discover_programs(tree: ast.Module) -> List[Program]:
    """Find every simulated-program generator in a parsed module."""
    programs: List[Program] = []

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.FunctionDef):
                qual = f"{prefix}{child.name}"
                if _yields_syscalls(child):
                    programs.append(Program(child, qual, _is_fresh_entry(child)))
                visit(child, qual + ".")
            elif isinstance(child, ast.AsyncFunctionDef):
                continue
            else:
                visit(child, prefix)

    visit(tree, "")
    return programs


# -- the analyzer ------------------------------------------------------------------


class ProgramAnalyzer:
    """Abstract interpretation of one program generator."""

    def __init__(self, program: Program, path: str):
        self.program = program
        self.path = path
        self.diagnostics: List[R.Diagnostic] = []
        #: token -> pretty source-level name, for messages.
        self.names: Dict[str, str] = {}
        #: Port tokens granted/opened/transferred anywhere in the program
        #: (flow-insensitive: a grant in a later message still counts).
        self.ever_reachable: Set[str] = set()
        #: Deferred ASB004 candidates: (token, line, col).
        self.leak_candidates: List[Tuple[str, int, int]] = []
        self._reported: Set[Tuple[int, int, str, str]] = set()
        self._report = True

    # -- public ------------------------------------------------------------------

    def run(self) -> List[R.Diagnostic]:
        entry = (
            AbstractState.fresh_process()
            if self.program.fresh
            else AbstractState.unknown_history()
        )
        state = FlowState(entry)
        self.exec_block(self.program.node.body, state)
        self._flush_leaks()
        self.diagnostics.sort(key=lambda d: (d.line, d.col, d.rule))
        return self.diagnostics

    # -- reporting ------------------------------------------------------------------

    def emit(self, node: ast.AST, rule: str, message: str) -> None:
        if not self._report:
            return
        line = getattr(node, "lineno", self.program.node.lineno)
        col = getattr(node, "col_offset", 0) + 1
        key = (line, col, rule, message)
        if key in self._reported:
            return
        self._reported.add(key)
        self.diagnostics.append(
            R.Diagnostic(
                path=self.path,
                line=line,
                col=col,
                rule=rule,
                message=message,
                function=self.program.qualname,
            )
        )

    def describe(self, token: str) -> str:
        if token in self.names:
            return self.names[token]
        if token.startswith("expr:"):
            return token[len("expr:"):]
        return token

    # -- statement walking ----------------------------------------------------------

    def exec_block(self, stmts: Sequence[ast.stmt], state: FlowState) -> FlowState:
        for stmt in stmts:
            if state.terminated:
                break
            state = self.exec_stmt(stmt, state)
        return state

    def exec_stmt(self, stmt: ast.stmt, state: FlowState) -> FlowState:
        if isinstance(stmt, ast.Expr):
            self.eval_expr(stmt.value, state)
            return state
        if isinstance(stmt, ast.Assign):
            value = self.eval_expr(stmt.value, state)
            for target in stmt.targets:
                self.bind(target, value, state)
            return state
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                value = self.eval_expr(stmt.value, state)
                self.bind(stmt.target, value, state)
            return state
        if isinstance(stmt, ast.AugAssign):
            self.eval_expr(stmt.value, state)
            if isinstance(stmt.target, ast.Name):
                state.env.pop(stmt.target.id, None)
            return state
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.eval_expr(stmt.value, state)
            state.terminated = True
            return state
        if isinstance(stmt, ast.Raise):
            state.terminated = True
            return state
        if isinstance(stmt, ast.If):
            self.eval_expr(stmt.test, state)
            then = self.exec_block(stmt.body, state.copy())
            other = self.exec_block(stmt.orelse, state.copy())
            return then.hull(other)
        if isinstance(stmt, (ast.While, ast.For)):
            return self.exec_loop(stmt, state)
        if isinstance(stmt, ast.Try):
            body = self.exec_block(stmt.body, state.copy())
            merged = state.hull(body)  # handlers may run from any point
            for handler in stmt.handlers:
                handled = self.exec_block(handler.body, merged.copy())
                merged = merged.hull(handled)
            if stmt.orelse:
                merged = merged.hull(self.exec_block(stmt.orelse, body.copy()))
            if stmt.finalbody:
                merged = self.exec_block(stmt.finalbody, merged)
            return merged
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                self.eval_expr(item.context_expr, state)
            return self.exec_block(stmt.body, state)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return state  # analyzed as its own program if it yields syscalls
        if isinstance(stmt, (ast.Break, ast.Continue, ast.Pass)):
            return state
        if isinstance(stmt, (ast.Import, ast.ImportFrom, ast.Global, ast.Nonlocal)):
            return state
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    state.env.pop(target.id, None)
            return state
        if isinstance(stmt, ast.Assert):
            self.eval_expr(stmt.test, state)
            return state
        # Anything else: evaluate child expressions for their yields.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self.eval_expr(child, state)
        return state

    def exec_loop(self, stmt: Union[ast.While, ast.For], state: FlowState) -> FlowState:
        if isinstance(stmt, ast.While):
            self.eval_expr(stmt.test, state)
        else:
            self.eval_expr(stmt.iter, state)
            if isinstance(stmt.target, ast.Name):
                state.env.pop(stmt.target.id, None)
        # Phase 1: silent fixpoint of the loop-entry state (the body may
        # receive messages, create ports, raise labels — its effects must
        # be folded into the state its own start sees).
        self._report = False
        entry = state.copy()
        for _ in range(MAX_LOOP_ITERATIONS):
            after = self.exec_block(stmt.body, entry.copy())
            merged = entry.hull(after)
            if merged == entry:
                break
            entry = merged
        self._report = True
        # Phase 2: one reporting pass from the stabilized entry state.
        exit_state = self.exec_block(stmt.body, entry.copy())
        out = state.hull(entry.hull(exit_state))
        if stmt.orelse:
            out = self.exec_block(stmt.orelse, out)
        return out

    def bind(self, target: ast.expr, value: Value, state: FlowState) -> None:
        if isinstance(target, ast.Name):
            state.env[target.id] = value
            token = getattr(value, "token", None)
            if token is None and isinstance(value, ChannelVal) and isinstance(
                value.port, PortVal
            ):
                self.names.setdefault(value.port.token, f"{target.id}.port")
            if isinstance(token, str):
                self.names.setdefault(token, target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self.bind(element, UNKNOWN, state)
        # Attribute/Subscript targets: untracked.

    # -- expression evaluation ---------------------------------------------------------

    def eval_expr(self, node: ast.expr, state: FlowState) -> Value:
        if isinstance(node, ast.Yield):
            if isinstance(node.value, ast.Call):
                name = _callee_name(node.value)
                if name in SYSCALL_NAMES:
                    return self.apply_syscall(name, node.value, state)
            if node.value is not None:
                self.eval_expr(node.value, state)
            return UNKNOWN
        if isinstance(node, ast.YieldFrom):
            return self.apply_yield_from(node, state)
        if isinstance(node, ast.Name):
            return state.env.get(node.id, UNKNOWN)
        if isinstance(node, ast.Attribute):
            base = self.eval_expr(node.value, state)
            if isinstance(base, ChannelVal) and node.attr == "port":
                return base.port
            return UNKNOWN
        if isinstance(node, ast.Call):
            return self.eval_call(node, state)
        if isinstance(node, ast.IfExp):
            self.eval_expr(node.test, state)
            a = self.eval_expr(node.body, state)
            b = self.eval_expr(node.orelse, state)
            return a if a == b else UNKNOWN
        # Generic: evaluate children (to execute any nested yields).
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.eval_expr(child, state)
        return UNKNOWN

    def eval_call(self, node: ast.Call, state: FlowState) -> Value:
        name = _callee_name(node)
        if name in SYSCALL_NAMES:
            # A bare (non-yielded) syscall construction: no kernel effect,
            # but Send(...) objects built and yielded elsewhere are rare
            # enough that we treat construction as the site of record.
            return UNKNOWN
        # Channel(port): remember the wrapped port.
        if name == "Channel" and node.args and not node.keywords:
            inner = self.eval_expr(node.args[0], state)
            if isinstance(inner, PortVal):
                return ChannelVal(inner)
            return ChannelVal(UNKNOWN)
        for arg in node.args:
            self.eval_expr(arg, state)
        for kw in node.keywords:
            self.eval_expr(kw.value, state)
        label = self.eval_label(node, state)
        if label is not None:
            return LabelVal(label)
        return UNKNOWN

    def apply_yield_from(self, node: ast.YieldFrom, state: FlowState) -> Value:
        """``yield from`` a sub-generator.  ``Channel.open`` is modelled
        exactly (new port, opened, ⋆ held); everything else may receive
        messages on our behalf, so the state is widened."""
        call = node.value
        if isinstance(call, ast.Call) and isinstance(call.func, ast.Attribute):
            if (
                call.func.attr == "open"
                and isinstance(call.func.value, ast.Name)
                and call.func.value.id == "Channel"
            ):
                token = f"port@L{node.lineno}"
                state.abstract.ps = state.abstract.ps.with_entry(token, IV_STAR)
                port_label: Optional[AbstractLabel] = None
                if call.args:
                    port_label = self.eval_label(call.args[0], state)
                if port_label is None:
                    port_label = AbstractLabel.top()  # Channel.open default
                state.ports[token] = PortStatus(port_label)
                if not self._definitely_closed(port_label, token):
                    self.ever_reachable.add(token)
                return ChannelVal(PortVal(token))
        if isinstance(call, ast.expr):
            self.eval_expr(call, state)
        state.abstract = state.abstract.after_receive()
        return UNKNOWN

    # -- syscall effects -----------------------------------------------------------------

    def apply_syscall(self, name: str, call: ast.Call, state: FlowState) -> Value:
        if name == "NewPort":
            token = f"port@L{call.lineno}"
            state.abstract.ps = state.abstract.ps.with_entry(token, IV_STAR)
            base: Optional[AbstractLabel] = None
            if call.args:
                base = self.eval_label(call.args[0], state)
            for kw in call.keywords:
                if kw.arg == "label":
                    base = self.eval_label(kw.value, state)
            if base is None and (call.args or call.keywords):
                base = AbstractLabel.unknown()
            if base is None:
                base = AbstractLabel.top()
            # Figure 4: pR ← L, then pR(p) ← 0.
            state.ports[token] = PortStatus(base.with_entry(token, IV_L0))
            return PortVal(token)
        if name == "NewHandle":
            token = f"handle@L{call.lineno}"
            state.abstract.ps = state.abstract.ps.with_entry(token, IV_STAR)
            return HandleVal(token)
        if name in ("Recv", "EpYield"):
            state.abstract = state.abstract.after_receive()
            return MsgVal()
        if name == "Send":
            return self.apply_send(call, state)
        if name == "ChangeLabel":
            return self.apply_change_label(call, state)
        if name == "SetPortLabel":
            args = self._bind_args(call, ("port", "label"))
            port = self.resolve(args.get("port"), state)
            if isinstance(port, PortVal):
                label = (
                    self.eval_label(args["label"], state)
                    if args.get("label") is not None
                    else None
                )
                if label is None:
                    label = AbstractLabel.unknown()
                state.ports[port.token] = PortStatus(label)
                if not self._definitely_closed(label, port.token):
                    self.ever_reachable.add(port.token)
            return UNKNOWN
        if name == "DissociatePort":
            return UNKNOWN
        if name in ("Exit", "EpExit"):
            state.terminated = True
            return UNKNOWN
        if name == "Spawn":
            # The child is its own program; inherit_labels only copies
            # labels *to* the child, the parent is unaffected.
            return UNKNOWN
        # GetLabels, GetEnv, Compute, EpCheckpoint, EpClean: no label effect.
        return UNKNOWN

    def apply_change_label(self, call: ast.Call, state: FlowState) -> Value:
        args = self._bind_args(call, ("send", "receive", "raise_receive", "drop_send"))
        abstract = state.abstract
        if args.get("drop_send") is not None:
            node = args["drop_send"]
            for element in getattr(node, "elts", []):
                token = self.token_for(element, state)
                if token is not None:
                    abstract.ps = abstract.ps.without(token)
        if args.get("raise_receive") is not None:
            node = args["raise_receive"]
            if isinstance(node, ast.Dict):
                for key, value in zip(node.keys, node.values):
                    if key is None:
                        continue
                    token = self.token_for(key, state)
                    if token is None:
                        continue
                    level = self.eval_level(value)
                    current = abstract.pr.at(token)
                    if level.lo > current.hi and not state.abstract.may_hold_star(token):
                        self.emit(
                            call,
                            R.DECLASSIFY_NO_STAR,
                            f"raise_receive of {self.describe(token)} to "
                            f"{level!r} needs PS({self.describe(token)}) = *, "
                            "which this process provably does not hold; the "
                            "kernel will raise InvalidArgument",
                        )
                    abstract.pr = abstract.pr.with_entry(token, current.hull(level))
            else:
                abstract.pr = abstract.pr.widened()
        if args.get("send") is not None:
            label = self.eval_label(args["send"], state)
            abstract.ps = label if label is not None else AbstractLabel.unknown()
        if args.get("receive") is not None:
            label = self.eval_label(args["receive"], state)
            abstract.pr = label if label is not None else AbstractLabel.unknown()
        return UNKNOWN

    def apply_send(self, call: ast.Call, state: FlowState) -> Value:
        args = self._bind_args(call, SEND_FIELDS)
        port_val = self.resolve(args.get("port"), state)

        cs = self._label_arg(args.get("cs", args.get("contaminate")), state)
        ds = self._label_arg(args.get("ds", args.get("decontaminate_send")), state)
        v = self._label_arg(args.get("v", args.get("verify")), state)
        dr = self._label_arg(args.get("dr", args.get("decontaminate_receive")), state)

        ps = state.abstract.ps
        es = ps.join(cs) if cs is not None else ps
        qr = AbstractLabel.unknown()
        pr = AbstractLabel.unknown()
        if isinstance(port_val, PortVal) and port_val.token in state.ports:
            pr = state.ports[port_val.token].label

        verdict = check_send_interval(
            es,
            qr,
            dr if dr is not None else AbstractLabel.bottom(),
            v if v is not None else AbstractLabel.top(),
            pr,
        )

        # ASB001: the delivery check cannot pass.
        if verdict.never_passes:
            where = (
                "for every handle outside the explicit entries"
                if verdict.witness == "<default>"
                else f"at handle {self.describe(verdict.witness)}"
            )
            self.emit(
                call,
                R.NEVER_PASS,
                f"this send can never pass the delivery check: "
                f"ES ≥ {verdict.lhs_lo} exceeds (QR ⊔ DR) ⊓ V ⊓ pR ≤ "
                f"{verdict.rhs_hi} {where}; the kernel will drop it "
                "silently on every execution",
            )

        # ASB002: provable implicit contamination.
        if cs is None and not verdict.never_passes:
            creep = [
                token
                for token, iv in ps.entries.items()
                if iv.lo > L1
                and (v is None or v.at(token).hi >= iv.lo)
            ]
            if ps.default.lo > L1:
                creep.append("<default>")
            if creep:
                pretty = ", ".join(self.describe(t) for t in creep)
                self.emit(
                    call,
                    R.TAINT_CREEP,
                    f"send label provably carries taint above the default "
                    f"({pretty}) but the send states no contaminate=; the "
                    "receiver is contaminated implicitly (taint creep) — "
                    "declare the contamination or exclude it with verify=",
                )

        # ASB003: decontamination without ⋆.
        self._check_decontaminate(call, state, ds, dr)

        # DS grants make ports reachable; transfer moves receive rights.
        if ds is not None:
            for token, iv in ds.entries.items():
                if iv.hi <= IV_L0.hi:
                    self.ever_reachable.add(token)
        transfer = args.get("transfer")
        if transfer is not None:
            for element in getattr(transfer, "elts", []):
                token = self.token_for(element, state)
                if token is not None:
                    self.ever_reachable.add(token)

        # ASB004: closed ports embedded in the payload (deferred —
        # a grant later in the program still redeems the reference).
        payload = args.get("payload")
        if payload is not None:
            for leaked in self._ports_in_payload(payload, state):
                status = state.ports.get(leaked.token)
                if status is None:
                    continue
                if self._definitely_closed(status.label, leaked.token):
                    self.leak_candidates.append(
                        (leaked.token, call.lineno, call.col_offset + 1)
                    )
        return UNKNOWN

    def _check_decontaminate(
        self,
        call: ast.Call,
        state: FlowState,
        ds: Optional[AbstractLabel],
        dr: Optional[AbstractLabel],
    ) -> None:
        abstract = state.abstract
        if ds is not None:
            for token, iv in ds.entries.items():
                if iv.hi < L3 and not abstract.may_hold_star(token):
                    self.emit(
                        call,
                        R.DECLASSIFY_NO_STAR,
                        f"decontaminate_send grants {self.describe(token)} "
                        f"below 3, which requires PS({self.describe(token)}) "
                        "= *; this process provably holds no * for it — the "
                        "kernel will silently drop the send",
                    )
            if ds.default.hi < L3 and abstract.ps.default.lo > STAR:
                self.emit(
                    call,
                    R.DECLASSIFY_NO_STAR,
                    "decontaminate_send lowers its default below 3, which "
                    "requires * at every handle; this process provably "
                    "cannot hold that — the kernel will silently drop the "
                    "send",
                )
        if dr is not None:
            for token, iv in dr.entries.items():
                if iv.lo > STAR and not abstract.may_hold_star(token):
                    self.emit(
                        call,
                        R.DECLASSIFY_NO_STAR,
                        f"decontaminate_receive raises {self.describe(token)} "
                        f"above *, which requires PS({self.describe(token)}) "
                        "= *; this process provably holds no * for it — the "
                        "kernel will silently drop the send",
                    )
            if dr.default.lo > STAR and abstract.ps.default.lo > STAR:
                self.emit(
                    call,
                    R.DECLASSIFY_NO_STAR,
                    "decontaminate_receive raises its default above *, which "
                    "requires * at every handle; this process provably "
                    "cannot hold that — the kernel will silently drop the "
                    "send",
                )

    # -- deferred ASB004 ----------------------------------------------------------------

    def _flush_leaks(self) -> None:
        seen: Set[Tuple[str, int]] = set()
        for token, line, col in self.leak_candidates:
            if token in self.ever_reachable:
                continue
            if (token, line) in seen:
                continue
            seen.add((token, line))
            pretty = self.describe(token)
            self.diagnostics.append(
                R.Diagnostic(
                    path=self.path,
                    line=line,
                    col=col,
                    rule=R.HANDLE_LEAK,
                    message=(
                        f"port {pretty} is embedded in a message payload while "
                        f"its port label is still the closed {{{pretty} 0}} and "
                        "no send ever grants it; receivers can never send to "
                        "it, so every reply routed there is silently dropped"
                    ),
                    function=self.program.qualname,
                )
            )

    def _ports_in_payload(self, node: ast.expr, state: FlowState) -> List[PortVal]:
        found: List[PortVal] = []
        for sub in ast.walk(node):
            if isinstance(sub, (ast.Name, ast.Attribute)):
                value = self.resolve(sub, state)
                if isinstance(value, PortVal):
                    found.append(value)
        return found

    def _definitely_closed(self, label: AbstractLabel, token: str) -> bool:
        """True when pR provably blocks every sender without ``p ⋆``:
        the port's own entry is ≤ 0 — the ``{p 0}`` minted by new_port."""
        return label.at(token).hi <= IV_L0.hi and not label.blurry

    # -- argument plumbing -----------------------------------------------------------

    def _bind_args(
        self, call: ast.Call, fields: Sequence[str]
    ) -> Dict[str, ast.expr]:
        bound: Dict[str, ast.expr] = {}
        for i, arg in enumerate(call.args):
            if i < len(fields):
                bound[fields[i]] = arg
        for kw in call.keywords:
            if kw.arg is not None:
                bound[kw.arg] = kw.value
        # Explicit None means "use the default", i.e. not given.
        return {
            name: node
            for name, node in bound.items()
            if not (isinstance(node, ast.Constant) and node.value is None)
        }

    def _label_arg(
        self, node: Optional[ast.expr], state: FlowState
    ) -> Optional[AbstractLabel]:
        if node is None:
            return None
        label = self.eval_label(node, state)
        return label if label is not None else AbstractLabel.unknown()

    # -- pure resolution (no kernel effects) ----------------------------------------

    def resolve(self, node: Optional[ast.expr], state: FlowState) -> Value:
        if node is None:
            return UNKNOWN
        if isinstance(node, ast.Name):
            return state.env.get(node.id, UNKNOWN)
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value, state)
            if isinstance(base, ChannelVal) and node.attr == "port":
                return base.port
            return UNKNOWN
        return UNKNOWN

    def token_for(self, node: ast.expr, state: FlowState) -> Optional[str]:
        """A stable symbolic-handle token for an expression used as a
        label key (or drop/transfer element)."""
        value = self.resolve(node, state)
        token = getattr(value, "token", None)
        if isinstance(token, str):
            return token
        try:
            text = ast.unparse(node)
        except Exception:  # pragma: no cover - unparse is total on 3.9+
            return None
        return f"expr:{text}"

    # -- label expression evaluation --------------------------------------------------

    def eval_level(self, node: Optional[ast.expr]) -> Interval:
        if node is None:
            return TOP
        if isinstance(node, ast.Name) and node.id in LEVEL_CONSTS:
            return exact(LEVEL_CONSTS[node.id])
        if isinstance(node, ast.Attribute) and node.attr in LEVEL_CONSTS:
            return exact(LEVEL_CONSTS[node.attr])
        if isinstance(node, ast.Constant) and isinstance(node.value, int) and not isinstance(node.value, bool):
            if STAR <= node.value <= L3:
                return exact(node.value)
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            if (
                isinstance(node.operand, ast.Constant)
                and node.operand.value == 1
            ):
                return IV_STAR
        return TOP

    def eval_label(
        self, node: Optional[ast.expr], state: FlowState
    ) -> Optional[AbstractLabel]:
        """Abstract a Label-valued expression; None when unrecognized."""
        if node is None:
            return None
        if isinstance(node, ast.Name):
            value = state.env.get(node.id)
            if isinstance(value, LabelVal):
                return value.label
            return None
        if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd)):
            left = self.eval_label(node.left, state)
            right = self.eval_label(node.right, state)
            if left is not None and right is not None:
                return (
                    left.join(right)
                    if isinstance(node.op, ast.BitOr)
                    else left.meet(right)
                )
            return None
        if not isinstance(node, ast.Call):
            return None
        func = node.func
        # Label.top() / Label.bottom() / Label.uniform(l) / defaults.
        if isinstance(func, ast.Attribute):
            base_name = func.value.id if isinstance(func.value, ast.Name) else None
            if base_name == "Label":
                if func.attr == "top":
                    return AbstractLabel.top()
                if func.attr == "bottom":
                    return AbstractLabel.bottom()
                if func.attr == "uniform" and node.args:
                    return AbstractLabel({}, self.eval_level(node.args[0]))
                if func.attr == "send_default":
                    return AbstractLabel({}, IV_L1)
                if func.attr == "receive_default":
                    return AbstractLabel({}, exact(L2))
                return None
            if func.attr == "with_entry" and len(node.args) == 2:
                base = self.eval_label(func.value, state)
                if base is not None:
                    token = self.token_for(node.args[0], state)
                    iv = self.eval_level(node.args[1])
                    if token is not None:
                        return base.with_entry(token, iv)
                    return AbstractLabel(
                        base.entries, base.default.hull(iv), blurry=True
                    )
                return None
            if func.attr == "stars":
                base = self.eval_label(func.value, state)
                if base is not None:
                    entries = {
                        t: (IV_STAR if iv == IV_STAR else exact(L3))
                        if iv.exact
                        else Interval(STAR, L3)
                        for t, iv in base.entries.items()
                    }
                    default = (
                        IV_STAR if base.default == IV_STAR else exact(L3)
                    ) if base.default.exact else Interval(STAR, L3)
                    return AbstractLabel(entries, default, base.blurry)
                return None
            return None
        if not (isinstance(func, ast.Name) and func.id == "Label"):
            return None
        # Label(entries?, default?)
        entries_node: Optional[ast.expr] = None
        default_node: Optional[ast.expr] = None
        if len(node.args) >= 1:
            entries_node = node.args[0]
        if len(node.args) >= 2:
            default_node = node.args[1]
        for kw in node.keywords:
            if kw.arg == "entries":
                entries_node = kw.value
            elif kw.arg == "default":
                default_node = kw.value
        default_iv = self.eval_level(default_node) if default_node is not None else IV_L1
        entries: Dict[str, Interval] = {}
        blurry = False
        if entries_node is None or (
            isinstance(entries_node, ast.Constant) and entries_node.value is None
        ):
            pass
        elif isinstance(entries_node, ast.Dict):
            for key, value in zip(entries_node.keys, entries_node.values):
                iv = self.eval_level(value)
                if key is None:  # **expansion
                    blurry = True
                    default_iv = default_iv.hull(iv)
                    continue
                token = self.token_for(key, state)
                if token is None:
                    blurry = True
                    default_iv = default_iv.hull(iv)
                else:
                    entries[token] = iv
        elif isinstance(entries_node, ast.DictComp):
            blurry = True
            default_iv = default_iv.hull(self.eval_level(entries_node.value))
        else:
            blurry = True
            default_iv = TOP
        return AbstractLabel(entries, default_iv, blurry)
