"""SARIF 2.1.0 emission, shared by ``repro analyze``/``check``/
``explore``/``crashcheck``.

One emitter, four producers: asblint findings carry *physical*
locations (file/line/col); asbcheck violations, asbsched breaches and
crashcheck recovery defects carry *logical* locations (the process,
edge, or write-ahead log, which has no source file).  GitHub code scanning ingests any of them via
``upload-sarif``; the CI workflow wires the analyze and explore jobs'
output through it.

Only the slice of the schema the tools need is produced — a single
run per document, ``tool.driver`` rule metadata, results with either a
``physicalLocation`` or ``logicalLocations``, and a ``properties`` bag
for payloads that have no SARIF shape (counterexample traces, minimized
schedules, related topology edges).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
    "master/Schemata/sarif-schema-2.1.0.json"
)
VERSION = "2.1.0"

#: (id, name, summary) triples for rule metadata.
RuleInfo = Tuple[str, str, str]


def make_rule(rule_id: str, name: str, summary: str) -> Dict[str, Any]:
    return {
        "id": rule_id,
        "name": name,
        "shortDescription": {"text": summary},
    }


def make_result(
    rule_id: str,
    message: str,
    level: str = "error",
    path: Optional[str] = None,
    line: Optional[int] = None,
    col: Optional[int] = None,
    logical: Sequence[Tuple[str, str]] = (),
    properties: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """One SARIF result.  *path*/*line*/*col* give a physical location;
    *logical* gives ``(fullyQualifiedName, kind)`` pairs instead."""
    result: Dict[str, Any] = {
        "ruleId": rule_id,
        "level": level,
        "message": {"text": message},
    }
    locations: List[Dict[str, Any]] = []
    if path is not None:
        region: Dict[str, Any] = {}
        if line is not None:
            region["startLine"] = line
        if col is not None:
            region["startColumn"] = col
        location: Dict[str, Any] = {
            "physicalLocation": {"artifactLocation": {"uri": path}}
        }
        if region:
            location["physicalLocation"]["region"] = region
        locations.append(location)
    if logical:
        locations.append(
            {
                "logicalLocations": [
                    {"fullyQualifiedName": fqn, "kind": kind}
                    for fqn, kind in logical
                ]
            }
        )
    if locations:
        result["locations"] = locations
    if properties:
        result["properties"] = properties
    return result


def make_sarif(
    tool_name: str,
    rules: Iterable[RuleInfo],
    results: Sequence[Dict[str, Any]],
    information_uri: str = "https://github.com/asbestos-repro",
) -> Dict[str, Any]:
    """A complete single-run SARIF document."""
    return {
        "$schema": SCHEMA,
        "version": VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "informationUri": information_uri,
                        "rules": [make_rule(*info) for info in rules],
                    }
                },
                "results": list(results),
            }
        ],
    }


def render(document: Dict[str, Any]) -> str:
    return json.dumps(document, indent=2, sort_keys=False)


# -- asblint ------------------------------------------------------------------------


def asblint_sarif(reports: Sequence[Any]) -> Dict[str, Any]:
    """SARIF for a list of :class:`repro.analysis.rules.FileReport`."""
    from repro.analysis import rules as R

    rule_infos = [(r.id, r.name, r.summary) for r in R.RULES]
    rule_infos.append(
        (R.TOOLING_RULE.id, R.TOOLING_RULE.name, R.TOOLING_RULE.summary)
    )
    results: List[Dict[str, Any]] = []
    for report in reports:
        for diag in report.diagnostics:
            properties: Dict[str, Any] = {}
            if diag.function:
                properties["function"] = diag.function
            if diag.related_edges:
                properties["related_edges"] = list(diag.related_edges)
            results.append(
                make_result(
                    diag.rule,
                    diag.message,
                    level="warning" if diag.rule == R.TOOLING else "error",
                    path=report.path,
                    line=diag.line,
                    col=diag.col,
                    properties=properties or None,
                )
            )
        for line, spec in report.unused_pragmas:
            detail = f"[{spec}]" if spec else ""
            results.append(
                make_result(
                    R.TOOLING,
                    f"stale pragma: asblint: ignore{detail} suppresses nothing",
                    level="note",
                    path=report.path,
                    line=line,
                    col=1,
                )
            )
    return make_sarif("asblint", rule_infos, results)


# -- asbcheck -----------------------------------------------------------------------

_POLICY_RULES: Tuple[RuleInfo, ...] = (
    (
        "isolation",
        "isolation",
        "a watched handle never appears above its bound in the process's "
        "send label or any effective send label it can produce",
    ),
    (
        "mandatory-declassifier",
        "mandatory-declassifier",
        "with declassifier edges removed, nothing delivers the handle "
        "above its bound into the sink",
    ),
    (
        "capability-confinement",
        "capability-confinement",
        "only the allowed processes ever hold * for the handle",
    ),
    (
        "dead-edge",
        "dead-edge",
        "the listed edges must deliver in some reachable state",
    ),
)


# -- asbsched -----------------------------------------------------------------------


def sched_sarif(report: Any) -> Dict[str, Any]:
    """SARIF for a :class:`repro.analysis.sched.ExploreReport`.

    The schedule-space explorer reuses asbcheck's policy rule catalogue
    (it checks the same battery, live) plus rules for sanitizer
    divergence and scenario invariants.  The minimized decision vector
    and the violating run's annotated choice points ride in the
    properties bag, so a code-scanning alert carries everything needed
    to replay the counterexample."""
    rules: List[RuleInfo] = list(_POLICY_RULES)
    rules.append(
        (
            "sanitizer",
            "sanitizer",
            "the differential label sanitizer found a divergence between "
            "the kernel and the naive operators on this schedule",
        )
    )
    rules.append(
        (
            "invariant",
            "invariant",
            "a scenario-specific terminal-state invariant failed on this "
            "schedule",
        )
    )
    results: List[Dict[str, Any]] = []
    run = report.counterexample_run()
    base_properties: Dict[str, Any] = {
        "scenario": report.scenario,
        "mode": report.mode,
        "schedules": report.schedules,
    }
    if run is not None:
        schedule = (
            report.minimized
            if report.minimized is not None
            else run.decision_vector()
        )
        trace = {
            **base_properties,
            "schedule": schedule,
            "decisions": [point.to_json() for point in run.decisions],
            "steps": [step.key for step in run.steps],
        }
        for breach in run.breaches:
            logical: List[Tuple[str, str]] = []
            if breach.process:
                logical.append(
                    (f"{report.scenario}/{breach.process}", "module")
                )
            if breach.edge:
                logical.append((f"{report.scenario}/{breach.edge}", "function"))
            results.append(
                make_result(
                    breach.kind,
                    f"{breach.policy}: {breach.message}",
                    level="error",
                    logical=logical or [(report.scenario, "module")],
                    properties=trace,
                )
            )
        for violation in run.sanitizer_violations:
            results.append(
                make_result(
                    "sanitizer",
                    violation,
                    level="error",
                    logical=[(report.scenario, "module")],
                    properties=trace,
                )
            )
    for breach in report.dead_edges:
        results.append(
            make_result(
                breach.kind,
                f"{breach.policy}: {breach.message}",
                level="error",
                logical=[(f"{report.scenario}/{breach.edge}", "function")],
                properties=base_properties,
            )
        )
    return make_sarif("asbsched", rules, results)


def crashcheck_sarif(report: Any) -> Dict[str, Any]:
    """SARIF for a :class:`repro.store.crashcheck.CrashcheckReport`.

    One result per failing crash point (capped per kind below), located
    logically at ``<workload>/wal`` — the store has no source file.  The
    minimized counterexample's replayable ``faultplan/v1`` document rides
    in every result's properties bag, so a code-scanning alert carries
    the exact crash to reproduce."""
    rules: Tuple[RuleInfo, ...] = (
        (
            "durability",
            "durability",
            "a committed row did not survive crash recovery",
        ),
        (
            "atomicity",
            "atomicity",
            "recovery resurrected a row the committed state never held",
        ),
        (
            "ifc-weakening",
            "ifc-weakening",
            "recovery applied a taint-weakening (declassifying) write the "
            "committed, label-checked log never authorized",
        ),
    )
    base: Dict[str, Any] = {
        "workload": report.workload,
        "records": report.records,
        "points": report.points,
        "label_check": report.label_check,
    }
    if report.minimized is not None:
        base["minimized"] = report.minimized.to_json()
    if report.plan is not None:
        base["plan"] = report.plan
    results: List[Dict[str, Any]] = []
    per_kind_cap = 25  # thousands of points can fail; alerts need a sample
    emitted: Dict[str, int] = {}
    for failure in report.failures:
        point = failure.point
        for violation in failure.violations:
            if emitted.get(violation.kind, 0) >= per_kind_cap:
                continue
            emitted[violation.kind] = emitted.get(violation.kind, 0) + 1
            results.append(
                make_result(
                    violation.kind,
                    f"crash at append #{point.at_io} "
                    f"({point.torn_bytes} torn byte(s)): "
                    f"{violation.table}: {violation.detail}",
                    level="error",
                    logical=[(f"{report.workload}/wal", "module")],
                    properties={**base, "point": point.to_json()},
                )
            )
    return make_sarif("crashcheck", rules, results)


def check_sarif(report: Any) -> Dict[str, Any]:
    """SARIF for a :class:`repro.analysis.check.CheckReport`.

    Violations become error-level results located by logical name
    (``topology/process`` and ``topology/edge``); the counterexample
    trace rides in the result's properties bag."""
    topo = report.topology
    results: List[Dict[str, Any]] = []
    for result in report.results:
        violation = result.violation
        if violation is None:
            continue
        logical: List[Tuple[str, str]] = []
        if violation.process:
            logical.append((f"{topo.name}/{violation.process}", "module"))
        if violation.edge:
            logical.append((f"{topo.name}/{violation.edge}", "function"))
        message = f"{result.policy.describe()}: {violation.message}"
        properties: Dict[str, Any] = {
            "topology": topo.name,
            "trace": [step.to_json(topo) for step in violation.trace],
        }
        results.append(
            make_result(
                result.policy.kind,
                message,
                level="error",
                logical=logical or [(topo.name, "module")],
                properties=properties,
            )
        )
    return make_sarif("asbcheck", _POLICY_RULES, results)
