"""The metrics registry — counters, gauges and histograms for the kernel
and the OKWS components.

Design constraints, in order:

1. **Near-zero overhead when disabled.**  A disabled registry hands out a
   single shared :data:`NULL` instrument whose mutators are no-ops, and
   the kernel additionally guards its hot-path increments behind one
   boolean attribute check, so a kernel with ``metrics=False`` pays
   nothing measurable (the Figure 7 acceptance bound is < 3%).
2. **Out-of-band.**  Like the drop log, nothing inside the simulation can
   observe a metric — programs have no syscall for it.  Metrics are for
   the harness, the bench runner and the tests.
3. **Plain data out.**  :meth:`MetricsRegistry.snapshot` returns nested
   dicts of numbers, ready for JSON (the ``BENCH_*.json`` metrics block).

Names are dotted paths (``kernel.ipc.sends``, ``netd.connections``);
:meth:`MetricsRegistry.scope` gives a component a named prefix so netd,
ok-demux, idd, ok-dbproxy and the workers each own a subtree.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsScope",
    "NullInstrument",
    "NULL",
    "kernel_snapshot",
]


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """A point-in-time value (set, not accumulated)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """Streaming summary of observations: count / sum / min / max / mean.

    Deliberately bucket-free: the simulator is deterministic, so tests
    want exact moments rather than bucketed approximations, and the bench
    JSON stays compact.
    """

    __slots__ = ("count", "total", "min", "max")
    kind = "histogram"

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def snapshot(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.min is not None else 0,
            "max": self.max if self.max is not None else 0,
            "mean": (self.total / self.count) if self.count else 0,
        }


class NullInstrument:
    """The shared no-op instrument a disabled registry hands out."""

    __slots__ = ()
    kind = "null"

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def snapshot(self) -> int:
        return 0


#: The singleton null instrument.
NULL = NullInstrument()

Instrument = Union[Counter, Gauge, Histogram, NullInstrument]


class MetricsRegistry:
    """A flat namespace of named instruments.

    ``counter``/``gauge``/``histogram`` get-or-create; asking for an
    existing name with a different kind is an error (it would silently
    fork the series).  When the registry is disabled every accessor
    returns :data:`NULL`, so call sites can bind instruments once at
    setup and use them unconditionally.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._instruments: Dict[str, Instrument] = {}

    # -- instrument access -------------------------------------------------------

    def _get(self, name: str, factory) -> Instrument:
        if not self.enabled:
            return NULL
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument
        elif not isinstance(instrument, factory):
            raise ValueError(
                f"metric {name!r} already registered as {instrument.kind}, "
                f"requested {factory.kind}"
            )
        return instrument

    def counter(self, name: str) -> Instrument:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Instrument:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Instrument:
        return self._get(name, Histogram)

    def scope(self, prefix: str) -> "MetricsScope":
        """A view that prefixes every name with ``prefix.`` — how each
        OKWS component gets its own metric subtree."""
        return MetricsScope(self, prefix)

    # -- reading -----------------------------------------------------------------

    def get(self, name: str) -> Any:
        """The snapshot value of one metric (0 / empty if never touched)."""
        instrument = self._instruments.get(name)
        return instrument.snapshot() if instrument is not None else 0

    def snapshot(self) -> Dict[str, Any]:
        """All metrics as a flat ``{dotted.name: value}`` dict."""
        return {
            name: instrument.snapshot()
            for name, instrument in sorted(self._instruments.items())
        }

    def __len__(self) -> int:
        return len(self._instruments)


class MetricsScope:
    """A registry view with a fixed name prefix."""

    __slots__ = ("_registry", "prefix")

    def __init__(self, registry: MetricsRegistry, prefix: str):
        self._registry = registry
        self.prefix = prefix

    def counter(self, name: str) -> Instrument:
        return self._registry.counter(f"{self.prefix}.{name}")

    def gauge(self, name: str) -> Instrument:
        return self._registry.gauge(f"{self.prefix}.{name}")

    def histogram(self, name: str) -> Instrument:
        return self._registry.histogram(f"{self.prefix}.{name}")

    def scope(self, prefix: str) -> "MetricsScope":
        return MetricsScope(self._registry, f"{self.prefix}.{prefix}")


def kernel_snapshot(kernel) -> Dict[str, Any]:
    """One machine-readable snapshot of everything observable on *kernel*.

    Combines the live registry with the accounting the kernel already
    keeps — cycle clock, drop log, label-op stats, memory report — so a
    ``BENCH_*.json`` metrics block is complete even for sub-experiments
    run with metrics disabled.
    """
    stats = kernel.label_stats
    cache = kernel.labelop_cache
    return {
        "config": {
            "intern_labels": kernel.config.intern_labels,
            "labelop_cache_size": kernel.config.labelop_cache_size,
            "label_cost_mode": kernel.config.label_cost_mode,
            "elide_checks": kernel.config.elide_checks,
            "proof_path": kernel.config.proof_path,
        },
        "labelop_cache": cache.counters() if cache is not None else None,
        "elide": (
            kernel.flow_table.counters() if kernel.flow_table is not None else None
        ),
        "metrics": kernel.metrics.snapshot(),
        "clock": {
            "now_cycles": kernel.clock.now,
            "by_category": dict(kernel.clock.by_category),
        },
        "drops": {
            reason: kernel.drop_log.count(reason)
            for reason in sorted({r for r, _, _ in kernel.drop_log.records})
        },
        "label_ops": {
            "operations": stats.operations,
            "entries_scanned": stats.entries_scanned,
            "chunks_skipped": stats.chunks_skipped,
            "chunks_allocated": stats.chunks_allocated,
            "chunks_shared": stats.chunks_shared,
            "labels_allocated": stats.labels_allocated,
            "fast_path": stats.fast_path,
            "full_merges": stats.full_merges,
        },
        "memory": kernel.memory_report(),
        "scheduler": {"queue_depth": len(kernel.scheduler)},
        "steps": kernel.steps_executed,
    }
