"""repro.obs — the observability layer.

Three pieces, all out-of-band with respect to the simulated label system
(nothing a simulated program can observe — cf. the drop log):

- :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges and histograms wired through the kernel hot paths and the OKWS
  components, with near-zero overhead when disabled;
- :mod:`repro.obs.spans` — a :class:`SpanRecorder` for the
  syscall→enqueue→delivery chains, exportable as Chrome ``trace_event``
  JSON;
- :mod:`repro.obs.bench` — the ``python -m repro bench`` harness that
  regenerates the paper's figures headlessly and writes the
  ``BENCH_*.json`` perf-trajectory files.

Enable per kernel with ``Kernel(config=KernelConfig(metrics=True,
spans=True))`` or globally with ``REPRO_METRICS=1`` / ``REPRO_SPANS=1``.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsScope,
    kernel_snapshot,
)
from repro.obs.spans import SpanRecorder

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsScope",
    "SpanRecorder",
    "kernel_snapshot",
]
