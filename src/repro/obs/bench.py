"""The machine-readable benchmark harness: ``python -m repro bench``.

Regenerates the paper's evaluation figures headlessly and writes one JSON
document per figure at the repository root (or ``--out``):

    BENCH_fig6.json       memory per cached/active session      (Figure 6)
    BENCH_fig7.json       throughput vs cached sessions         (Figure 7)
    BENCH_fig8.json       latency at concurrency 4              (Figure 8)
    BENCH_fig9.json       component Kcycles/connection          (Figure 9)
    BENCH_labelops.json   paper-mode vs fused label-op ablation  (§5.6/9.3)
    BENCH_scale.json      sharded-cluster scaling (``--scale``)  (DESIGN.md §13)

The scale figure is not part of the default run (it forks shard worker
processes); ``python -m repro bench --scale`` selects it.

Every document follows the ``repro-bench/v1`` schema (see
:data:`SCHEMA` and DESIGN.md §8): paper value, measured value and their
ratio for each headline quantity, the raw series, and a full
:func:`~repro.obs.metrics.kernel_snapshot` of an instrumented run so the
perf trajectory of the *kernel internals* (label fast-path rate, drop
counts, queue depths) is tracked alongside the headline numbers.

``--quick`` shrinks the grids to CI scale (tens of seconds); the document
records which grid produced it, so consumers never compare quick and full
runs against each other.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.kernel.config import KernelConfig
from repro.obs.metrics import kernel_snapshot

#: Schema identifier stamped into (and required of) every document.
SCHEMA = "repro-bench/v1"

#: Every figure this harness knows how to regenerate.
FIGURES = ("fig6", "fig7", "fig8", "fig9", "labelops", "scale")

#: The default ``run_bench`` selection: the paper figures.  ``scale``
#: (the multi-process cluster bench) runs only when asked for.
DEFAULT_FIGURES = ("fig6", "fig7", "fig8", "fig9", "labelops")

#: Keys every document must carry; see :func:`validate`.
REQUIRED_KEYS = ("schema", "figure", "title", "quick", "series", "comparisons")

#: Keys every comparison row must carry.
COMPARISON_KEYS = ("name", "paper", "measured", "ratio", "unit")


# -- document assembly ---------------------------------------------------------------


def _ratio(paper: Any, measured: Any) -> Optional[float]:
    if isinstance(paper, (int, float)) and isinstance(measured, (int, float)) and paper:
        return round(measured / paper, 4)
    return None


def comparison(name: str, paper: Any, measured: Any, unit: str = "") -> Dict[str, Any]:
    """One paper-vs-measured row; ``ratio`` is measured/paper when both
    are numeric (the number the perf trajectory tracks over time)."""
    if isinstance(measured, float):
        measured = round(measured, 4)
    return {
        "name": name,
        "paper": paper,
        "measured": measured,
        "ratio": _ratio(paper, measured),
        "unit": unit,
    }


def _document(
    figure: str,
    title: str,
    quick: bool,
    series: Dict[str, Any],
    comparisons: List[Dict[str, Any]],
    metrics: Optional[Dict[str, Any]],
    meta: Dict[str, Any],
) -> Dict[str, Any]:
    return {
        "schema": SCHEMA,
        "figure": figure,
        "title": title,
        "quick": quick,
        "series": series,
        "comparisons": comparisons,
        "metrics": metrics,
        "meta": meta,
    }


def validate(doc: Dict[str, Any]) -> List[str]:
    """Check *doc* against the ``repro-bench/v1`` schema; returns the list
    of problems (empty = valid)."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return [f"document is {type(doc).__name__}, not an object"]
    for key in REQUIRED_KEYS:
        if key not in doc:
            problems.append(f"missing required key {key!r}")
    if problems:
        return problems
    if doc["schema"] != SCHEMA:
        problems.append(f"schema is {doc['schema']!r}, expected {SCHEMA!r}")
    if doc["figure"] not in FIGURES:
        problems.append(f"unknown figure {doc['figure']!r}")
    if not isinstance(doc["title"], str) or not doc["title"]:
        problems.append("title must be a non-empty string")
    if not isinstance(doc["quick"], bool):
        problems.append("quick must be a boolean")
    if not isinstance(doc["series"], dict):
        problems.append("series must be an object")
    else:
        for name, ser in doc["series"].items():
            if not isinstance(ser, dict) or "x" not in ser or "y" not in ser:
                problems.append(f"series {name!r} must have x and y arrays")
            elif len(ser["x"]) != len(ser["y"]):
                problems.append(f"series {name!r}: len(x) != len(y)")
    if not isinstance(doc["comparisons"], list) or not doc["comparisons"]:
        problems.append("comparisons must be a non-empty array")
    else:
        for i, row in enumerate(doc["comparisons"]):
            for key in COMPARISON_KEYS:
                if not isinstance(row, dict) or key not in row:
                    problems.append(f"comparisons[{i}] missing key {key!r}")
    metrics = doc.get("metrics")
    if metrics is not None and not isinstance(metrics, dict):
        problems.append("metrics must be an object or null")
    return problems


def _series(xs: Iterable[Any], ys: Iterable[Any], unit: str = "") -> Dict[str, Any]:
    return {"x": list(xs), "y": [round(y, 4) if isinstance(y, float) else y for y in ys], "unit": unit}


# -- instrumented snapshot runs -------------------------------------------------------

_OBS_CONFIG = KernelConfig(metrics=True, spans=True, span_limit=50_000)


def _instrumented_echo_snapshot(n_users: int, rounds: int = 2) -> Dict[str, Any]:
    """A small fully-instrumented echo-site run; returns its kernel
    snapshot (metric counters, drop counts, label-op stats, memory)."""
    from repro.sim.runner import build_echo_site
    from repro.sim.workload import HttpClient

    site = build_echo_site(n_users, config=_OBS_CONFIG)
    client = HttpClient(site)
    client.run_batch(
        [
            (f"u{i}", f"pw{i}", "echo", None, {"length": 11})
            for _ in range(rounds)
            for i in range(n_users)
        ],
        concurrency=16,
    )
    snap = kernel_snapshot(site.kernel)
    snap["spans_recorded"] = len(site.kernel.spans)
    return snap


def _instrumented_cache_snapshot(n_users: int) -> Dict[str, Any]:
    from repro.sim.runner import build_cache_site
    from repro.sim.workload import HttpClient

    site = build_cache_site(n_users, config=_OBS_CONFIG)
    client = HttpClient(site)
    client.run_batch(
        [(f"u{i}", f"pw{i}", "cache", b"s" * 900, None) for i in range(n_users)],
        concurrency=16,
    )
    snap = kernel_snapshot(site.kernel)
    snap["spans_recorded"] = len(site.kernel.spans)
    return snap


# -- the figures ---------------------------------------------------------------------


def _slope(points) -> float:
    first, last = points[0], points[-1]
    return (last.total_pages - first.total_pages) / (last.sessions - first.sessions)


def run_fig6(quick: bool) -> Dict[str, Any]:
    """Figure 6: memory used by cached and active web sessions."""
    from repro.sim.runner import run_memory_experiment

    grid = [0, 200, 400] if quick else [0, 1000, 3000]
    grid_active = [100, 300] if quick else [500, 1500]
    cached = run_memory_experiment(grid)
    active = run_memory_experiment(grid_active, active=True)
    cached_slope = _slope(cached)
    active_slope = _slope(active)
    return _document(
        "fig6",
        "Memory used by cached and active web sessions",
        quick,
        {
            "cached_pages": _series(
                [p.sessions for p in cached], [p.total_pages for p in cached], "pages"
            ),
            "active_pages": _series(
                [p.sessions for p in active], [p.total_pages for p in active], "pages"
            ),
        },
        [
            comparison("pages per cached session", 1.5, cached_slope, "pages"),
            comparison("pages per active session", 9.5, active_slope, "pages"),
            comparison(
                "extra pages per active session", 8.0, active_slope - cached_slope, "pages"
            ),
        ],
        _instrumented_cache_snapshot(50 if quick else 200),
        {"grid": grid, "grid_active": grid_active},
    )


def _sweep(quick: bool, label_cost_mode: str = "paper", config=None):
    from repro.sim.runner import run_session_sweep

    grid = [1, 100, 500] if quick else [1, 1000, 3000]
    return grid, run_session_sweep(grid, label_cost_mode=label_cost_mode, config=config)


def _interning_speedup(sessions: int) -> Dict[str, Any]:
    """Warm-window per-connection cost at *sessions* cached sessions,
    interned-label fast path off vs on.

    Three identical rounds per kernel: two to let every label reach its
    per-user fixed point (the regime a long-running server lives in),
    one measured through a clock snapshot/delta window.  The cache is
    sized to hold the warm working set (a few keys per user) so the
    measurement reflects the fast path, not LRU thrash.
    """
    from repro.sim.runner import build_echo_site
    from repro.sim.workload import HttpClient

    out: Dict[str, Any] = {"sessions": sessions, "cache_size": 1 << 16}
    for key, intern in (("plain_kcycles_conn", False), ("interned_kcycles_conn", True)):
        site = build_echo_site(
            sessions,
            config=KernelConfig(intern_labels=intern, labelop_cache_size=1 << 16),
        )
        client = HttpClient(site)
        requests = [
            (f"u{i}", f"pw{i}", "echo", None, {"length": 11}) for i in range(sessions)
        ]
        for _ in range(2):
            client.run_batch(requests, concurrency=16)
        snap = site.kernel.clock.snapshot()
        client.run_batch(requests, concurrency=16)
        delta = site.kernel.clock.delta(snap)
        out[key] = round(sum(delta.values()) / sessions / 1000, 1)
        if intern:
            cache = site.kernel.labelop_cache
            out["hit_rate"] = round(cache.hits / max(1, cache.lookups), 4)
    out["speedup"] = round(out["plain_kcycles_conn"] / out["interned_kcycles_conn"], 4)
    return out


def _elision_speedup(sessions: int) -> Dict[str, Any]:
    """Warm-window kernel-IPC cost at *sessions* cached sessions, plain
    Figure 4 checking vs proof-guided elision (DESIGN.md §15).

    Plain site: two warm-up rounds, a recording round (the
    :class:`~repro.analysis.extract.TopologyRecorder` rides along, so
    this round is *not* measured), then a measured round through a clock
    window.  The recorded topology is compiled to a ``proofs/v1``
    document and a second site boots with ``elide_checks`` on; its third
    round — the same round index the recorder saw, so the deterministic
    handle values line up — is measured through the same window.  The
    headline is the Kernel-IPC category ratio (that is where checks
    live); ``total_speedup`` reports the whole-clock ratio alongside so
    the IPC-window framing cannot oversell the end-to-end win.
    """
    import tempfile

    from repro.analysis.extract import TopologyRecorder
    from repro.analysis.proofs import compile_proofs, write_proofs
    from repro.kernel.clock import KERNEL_IPC
    from repro.sim.runner import build_echo_site
    from repro.sim.workload import HttpClient

    requests = [
        (f"u{i}", f"pw{i}", "echo", None, {"length": 11}) for i in range(sessions)
    ]
    out: Dict[str, Any] = {"sessions": sessions}

    # Recording pass: warm to the per-user fixed point, then record one
    # round.  Separate from the measured plain site so recorder overhead
    # never lands in the baseline window.
    site = build_echo_site(sessions, config=KernelConfig())
    client = HttpClient(site)
    for _ in range(2):
        client.run_batch(requests, concurrency=16)
    recorder = TopologyRecorder(site.kernel)
    client.run_batch(requests, concurrency=16)
    doc = compile_proofs(recorder.build(f"echo-site-{sessions}"))
    out["proof_stats"] = doc["stats"]

    with tempfile.NamedTemporaryFile(
        mode="w", suffix=".json", prefix="repro-bench-proofs-", delete=False
    ) as fh:
        proof_path = fh.name
    try:
        write_proofs(doc, proof_path)
        windows: Dict[str, Dict[str, float]] = {}
        for key, config in (
            ("plain", KernelConfig()),
            (
                "elided",
                KernelConfig(
                    intern_labels=True,
                    elide_checks=True,
                    proof_path=proof_path,
                    labelop_cache_size=1 << 16,
                ),
            ),
        ):
            mside = build_echo_site(sessions, config=config)
            mclient = HttpClient(mside)
            for _ in range(2):
                mclient.run_batch(requests, concurrency=16)
            snap = mside.kernel.clock.snapshot()
            mclient.run_batch(requests, concurrency=16)
            delta = mside.kernel.clock.delta(snap)
            windows[key] = {
                "ipc": delta.get(KERNEL_IPC, 0.0),
                "total": sum(delta.values()),
            }
            out[f"{key}_ipc_kcycles_conn"] = round(
                delta.get(KERNEL_IPC, 0.0) / sessions / 1000, 1
            )
            if key == "elided":
                table = mside.kernel.flow_table
                counters = table.counters() if table is not None else {}
                out["elide"] = {
                    name: counters.get(name)
                    for name in (
                        "valid",
                        "deliver_hits",
                        "send_hits",
                        "misses",
                        "batch_drains",
                        "batched_messages",
                        "invalidations",
                        "quarantines",
                    )
                }
    finally:
        os.unlink(proof_path)
    out["speedup"] = round(
        windows["plain"]["ipc"] / max(1.0, windows["elided"]["ipc"]), 4
    )
    out["total_speedup"] = round(
        windows["plain"]["total"] / max(1.0, windows["elided"]["total"]), 4
    )
    return out


def _cluster_single_shard_point(sessions: int) -> float:
    """Throughput through the ``repro.cluster`` facade at ``n_shards=1``.

    The single-shard cluster drives the ordinary in-process kernel with
    the unmodified boot key, so this series pins the facade's identity
    path under the same one-sided guard as the direct-kernel series: a
    change that makes ``Cluster(n_shards=1)`` anything but a thin pass-
    through shows up as a throughput regression here.
    """
    from repro.cluster import Cluster, ClusterConfig
    from repro.kernel.clock import CPU_HZ

    users = tuple((f"u{i}", f"pw{i}") for i in range(sessions))
    requests = [
        (f"u{i}", f"pw{i}", "echo", None, {"length": 11}) for i in range(sessions)
    ] * 2
    with Cluster(ClusterConfig(n_shards=1, users=users)) as cluster:
        result = cluster.run_batch(requests)
    return len(requests) / (result.elapsed_cycles / CPU_HZ)


def run_fig7(quick: bool, sweep=None) -> Dict[str, Any]:
    """Figure 7: throughput vs cached sessions, plus the observability
    overhead measurement (disabled vs enabled wall time on point one)
    and the interned-label fast-path speedup at the top grid point."""
    from repro.baselines import ApacheCgiModel, ModApacheModel

    if sweep is None:
        grid, points = _sweep(quick)
    else:
        grid, points = sweep
    apache = ApacheCgiModel().run(1000 if quick else 4000, concurrency=400)
    mod_apache = ModApacheModel().run(1000 if quick else 4000, concurrency=16)

    # Observability overhead: the same workload, obs disabled vs enabled,
    # wall-clock.  Reported as a metric so regressions of the *enabled*
    # path are visible too; the disabled path is guarded by the <3%
    # acceptance bound against the pre-observability baseline.
    from repro.sim.runner import run_session_sweep

    probe = [grid[1] if len(grid) > 1 else grid[0]]
    t0 = time.perf_counter()
    run_session_sweep(probe)
    disabled_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    run_session_sweep(probe, config=_OBS_CONFIG)
    enabled_s = time.perf_counter() - t0

    okws_1 = points[0].throughput
    snapshot = _instrumented_echo_snapshot(50 if quick else 200)
    snapshot["obs_overhead_ratio"] = round(enabled_s / disabled_s, 4)
    snapshot["obs_disabled_seconds"] = round(disabled_s, 4)
    snapshot["obs_enabled_seconds"] = round(enabled_s, 4)

    # Interned-label fast path (DESIGN.md §11): warm-window speedup at
    # the top grid point.  The guard pins this series like any other, so
    # a change that erodes the cache's hit rate or fast-path billing
    # fails CI; the full grid demonstrates the paper-scale win (≥ 1.15x
    # at 3000 cached sessions).
    speed = _interning_speedup(grid[-1])

    # Proof-guided check elision (DESIGN.md §15): warm-window Kernel-IPC
    # speedup of the verified-flow fastpath over plain checking at the
    # top grid point, guarded like the interning series so eroding the
    # stub hit rate or the invalidation scoping fails CI.
    elide = _elision_speedup(grid[-1])

    # The repro.cluster identity path (DESIGN.md §13), guarded like any
    # other series: n_shards=1 must stay a thin facade over this kernel.
    cluster_sessions = grid[1] if len(grid) > 1 else grid[0]
    cluster_conn_s = _cluster_single_shard_point(cluster_sessions)
    return _document(
        "fig7",
        "Throughput for various numbers of cached sessions",
        quick,
        {
            "okws_throughput": _series(
                [p.sessions for p in points], [p.throughput for p in points], "conn/s"
            ),
            "interning_speedup": _series(
                [speed["sessions"]], [speed["speedup"]], "x"
            ),
            "elision_speedup": _series(
                [elide["sessions"]], [elide["speedup"]], "x"
            ),
            "cluster_single_shard": _series(
                [cluster_sessions], [cluster_conn_s], "conn/s"
            ),
        },
        [
            comparison(
                "OKWS(1) / Mod-Apache", 0.55, okws_1 / mod_apache.throughput, "x"
            ),
            comparison(
                "OKWS(1) / Apache (paper: better, i.e. > 1)",
                1.0,
                okws_1 / apache.throughput,
                "x",
            ),
            comparison(
                "throughput degrades monotonically",
                True,
                all(
                    a.throughput >= b.throughput
                    for a, b in zip(points, points[1:])
                ),
                "",
            ),
            comparison(
                f"interned fast path speedup at {speed['sessions']} sessions",
                1.15 if not quick else "n/a (reduced grid)",
                speed["speedup"],
                "x",
            ),
            comparison(
                f"proof-elision speedup at {elide['sessions']} sessions",
                1.5 if not quick else "n/a (reduced grid)",
                elide["speedup"],
                "x",
            ),
            comparison(
                f"cluster facade (1 shard) at {cluster_sessions} sessions",
                "n/a (guarded series)",
                cluster_conn_s,
                "conn/s",
            ),
        ],
        snapshot,
        {
            "grid": grid,
            "apache_conn_s": round(apache.throughput, 1),
            "mod_apache_conn_s": round(mod_apache.throughput, 1),
            "interning": speed,
            "elision": elide,
            "cluster_single_shard_sessions": cluster_sessions,
        },
    )


def run_fig8(quick: bool) -> Dict[str, Any]:
    """Figure 8: median and 90th-percentile latency at concurrency 4."""
    from repro.baselines import ApacheCgiModel, ModApacheModel
    from repro.sim.runner import run_latency_experiment
    from repro.sim.stats import percentile

    n = 150 if quick else 400
    big = 200 if quick else 1000
    rows: Dict[str, List[float]] = {
        "Mod-Apache": ModApacheModel().run(n, concurrency=4).latencies_us,
        "Apache": ApacheCgiModel().run(n, concurrency=4).latencies_us,
        "OKWS, 1 session": run_latency_experiment(1, n_requests=n),
        f"OKWS, {big} sessions": run_latency_experiment(
            big, n_requests=min(n, 200)
        ),
    }
    paper_medians = {"Mod-Apache": 999, "Apache": 3374, "OKWS, 1 session": 1875}
    if not quick:
        paper_medians["OKWS, 1000 sessions"] = 3414
    comparisons = [
        comparison(
            f"median latency: {label}",
            paper_medians.get(label, "n/a (reduced grid)"),
            percentile(lats, 50),
            "us",
        )
        for label, lats in rows.items()
    ]
    # Interned fast path at the big operating point: comparison row only, not a
    # guarded series — latency improvements would trip a one-sided guard.
    from repro.kernel.config import KernelConfig

    interned_lats = run_latency_experiment(
        big,
        n_requests=min(n, 200),
        config=KernelConfig(intern_labels=True, labelop_cache_size=1 << 16),
    )
    comparisons.append(
        comparison(
            f"median latency: OKWS, {big} sessions (interned)",
            "n/a (fast path)",
            percentile(interned_lats, 50),
            "us",
        )
    )
    # Sharding the same operating point across two kernels (DESIGN.md
    # §13): each shard sees half the users, so per-connection label scans
    # shrink and median latency should drop below the single-kernel row.
    sharded_lats = _sharded_latencies(big, n_requests=min(n, 200), concurrency=4)
    comparisons.append(
        comparison(
            f"median latency: OKWS, {big} sessions (2 shards)",
            "n/a (sharded)",
            percentile(sharded_lats, 50),
            "us",
        )
    )
    return _document(
        "fig8",
        "Request latency at a concurrency of four",
        quick,
        {
            label: _series(
                [50, 90], [percentile(lats, 50), percentile(lats, 90)], "us"
            )
            for label, lats in rows.items()
        },
        comparisons,
        _instrumented_echo_snapshot(20 if quick else 100),
        {"n_requests": n, "big_sessions": big, "series_x_axis": "percentile"},
    )


def _sharded_latencies(
    sessions: int, n_requests: int, concurrency: int = 4
) -> List[float]:
    """Per-request latency (µs) for the fig8 workload on a 2-shard cluster."""
    from repro.cluster import Cluster, ClusterConfig
    from repro.kernel.clock import CPU_HZ

    users = tuple((f"u{i}", f"pw{i}") for i in range(max(sessions, 1)))
    requests = [
        (f"u{i % max(sessions, 1)}", f"pw{i % max(sessions, 1)}", "echo", None, None)
        for i in range(n_requests)
    ]
    config = ClusterConfig(n_shards=2, users=users, concurrency=concurrency)
    with Cluster(config) as cluster:
        result = cluster.run_batch(requests)
    return [cycles / CPU_HZ * 1e6 for cycles in result.latencies_cycles]


def _durability_overhead() -> Dict[str, float]:
    """Simulated per-connection cost of the board write workload with the
    in-memory dbproxy vs the ``wal/v1``-backed store (DESIGN.md §14).

    Both runs are the same deterministic four-request workload; the delta
    is exactly the store's append billing (``APPEND_BASE_CYCLES`` plus
    the per-byte charge), so the series quantifies what durability costs
    on the Figure 9 cycle scale."""
    import os
    import tempfile

    from repro.store.crashcheck import BOARD_REQUESTS, run_board_workload

    out: Dict[str, float] = {}
    requests = len(BOARD_REQUESTS)
    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as scratch:
        for key, store_path in (
            ("memory_kcycles_conn", None),
            ("store_kcycles_conn", os.path.join(scratch, "wal.log")),
        ):
            site = run_board_workload(store_path)
            out[key] = site.kernel.clock.now / requests / 1000.0
    return out


def run_fig9(quick: bool, sweep=None) -> Dict[str, Any]:
    """Figure 9: component cost breakdown and label growth per session."""
    from repro.kernel.clock import CATEGORIES
    from repro.sim.runner import build_echo_site
    from repro.sim.workload import HttpClient

    if sweep is None:
        grid, points = _sweep(quick)
    else:
        grid, points = sweep

    durability = _durability_overhead()

    # Section 9.3's structural label-growth claims, on live kernel state.
    n = 50 if quick else 200
    site = build_echo_site(n, config=_OBS_CONFIG)
    client = HttpClient(site)
    client.run_batch(
        [(f"u{i}", f"pw{i}", "echo", None, None) for i in range(n)], concurrency=16
    )
    procs = {p.name: p for p in site.kernel.processes.values()}
    snapshot = kernel_snapshot(site.kernel)
    snapshot["spans_recorded"] = len(site.kernel.spans)

    series = {
        f"kcycles_{category}": _series(
            [p.sessions for p in points],
            [p.components_kcycles.get(category, 0.0) for p in points],
            "Kcycles/conn",
        )
        for category in CATEGORIES
    }
    series["kcycles_total"] = _series(
        [p.sessions for p in points], [p.total_kcycles for p in points], "Kcycles/conn"
    )
    # Durability overhead (DESIGN.md §14): x=0 is the in-memory dbproxy,
    # x=1 the wal/v1-backed store, same board write workload.
    series["durability_kcycles_conn"] = _series(
        [0, 1],
        [durability["memory_kcycles_conn"], durability["store_kcycles_conn"]],
        "Kcycles/conn",
    )
    return _document(
        "fig9",
        "Average cost of Asbestos components per connection",
        quick,
        series,
        [
            comparison(
                "idd send-label entries per user",
                2.0,
                len(procs["idd"].send_label) / n,
                "entries",
            ),
            comparison(
                "ok-dbproxy send-label entries per user",
                2.0,
                len(procs["ok-dbproxy"].send_label) / n,
                "entries",
            ),
            comparison(
                "netd receive-label entries per user",
                1.0,
                len(procs["netd"].receive_label) / n,
                "entries",
            ),
            comparison(
                "kernel IPC cost grows with sessions",
                True,
                points[-1].components_kcycles.get("Kernel IPC", 0)
                > points[0].components_kcycles.get("Kernel IPC", 0),
                "",
            ),
            comparison(
                "wal/v1 store costs more than in-memory (durable writes)",
                True,
                durability["store_kcycles_conn"]
                > durability["memory_kcycles_conn"],
                "",
            ),
        ],
        snapshot,
        {"grid": grid, "label_growth_users": n},
    )


def run_labelops(quick: bool) -> Dict[str, Any]:
    """The §5.6/§9.3 ablation: paper-mode label costs vs fused operations,
    plus the fast-path/full-merge split from the instrumented counters."""
    from repro.kernel.clock import KERNEL_IPC
    from repro.sim.runner import run_session_sweep

    grid = [50, 200] if quick else [100, 1000]
    paper_mode = run_session_sweep(grid, label_cost_mode="paper")
    fused_mode = run_session_sweep(grid, label_cost_mode="fused")
    growth_paper = (
        paper_mode[-1].components_kcycles[KERNEL_IPC]
        - paper_mode[0].components_kcycles[KERNEL_IPC]
    )
    growth_fused = (
        fused_mode[-1].components_kcycles[KERNEL_IPC]
        - fused_mode[0].components_kcycles[KERNEL_IPC]
    )
    snapshot = _instrumented_echo_snapshot(50 if quick else 200)
    label_ops = snapshot.get("label_ops", {})
    fast = label_ops.get("fast_path", 0)
    full = label_ops.get("full_merges", 0)
    return _document(
        "labelops",
        "Label-operation costs: 2005 implementation vs fused operations",
        quick,
        {
            "kernel_ipc_paper_mode": _series(
                grid,
                [p.components_kcycles[KERNEL_IPC] for p in paper_mode],
                "Kcycles/conn",
            ),
            "kernel_ipc_fused_mode": _series(
                grid,
                [p.components_kcycles[KERNEL_IPC] for p in fused_mode],
                "Kcycles/conn",
            ),
        },
        [
            comparison(
                "fused/paper IPC growth (paper: well under half)",
                0.5,
                (growth_fused / growth_paper) if growth_paper else 0.0,
                "x",
            ),
            comparison(
                "label fast-path share of checked operations",
                "n/a",
                fast / (fast + full) if (fast + full) else 0.0,
                "",
            ),
        ],
        snapshot,
        {"grid": grid, "fast_path": fast, "full_merges": full},
    )


def _scale_point(
    n_shards: int, n_users: int, n_conns: int, concurrency: int
) -> Dict[str, Any]:
    """One cell of the scale grid: a full cluster run at *n_shards*.

    Sanitizer sampled at 1/64 (the production-shaped setting the sharded
    deployment runs with) and the interned-label fast path on — the
    configuration DESIGN.md §13 describes.  Cluster throughput is total
    connections over the *slowest* shard's simulated busy time: shards
    run on independent simulated CPUs, so host scheduling of the worker
    processes cannot perturb the measurement.
    """
    from repro.cluster import Cluster, ClusterConfig
    from repro.kernel.clock import CPU_HZ
    from repro.sim.stats import percentile

    users = tuple((f"u{i}", f"pw{i}") for i in range(n_users))
    requests = [
        (f"u{i % n_users}", f"pw{i % n_users}", "echo", None, {"length": 11})
        for i in range(n_conns)
    ]
    config = ClusterConfig(
        n_shards=n_shards,
        users=users,
        kernel=KernelConfig(sanitize=True, intern_labels=True),
        sanitize_sample=64,
        concurrency=concurrency,
    )
    with Cluster(config) as cluster:
        cluster.mark()
        result = cluster.run_batch(requests)
        routed = cluster.run_courier()
        report = cluster.report()
    latencies = [cycles / CPU_HZ * 1e6 for cycles in result.latencies_cycles]
    return {
        "shards": n_shards,
        "throughput": n_conns / (result.elapsed_cycles / CPU_HZ),
        "p50_us": percentile(latencies, 50),
        "p99_us": percentile(latencies, 99),
        "busy_cycles": list(result.busy_cycles),
        "elapsed_cycles": result.elapsed_cycles,
        "routed": routed + result.routed,
        "board_messages": len(report["board_log"]),
        "drops": report["drops"],
        "sanitizer_violations": report["sanitizer_violations"],
    }


def run_scale(quick: bool) -> Dict[str, Any]:
    """The ``--scale`` figure: sharded-cluster throughput and latency.

    Runs the same OKWS echo workload (every connection routed to the
    shard owning its user) at each shard count and reports throughput,
    latency percentiles, and speedup over the single-shard baseline.
    The speedup can exceed the shard count: per-connection label work
    scans O(users-per-kernel) entries, so halving a shard's user
    partition more than halves its per-connection cost.

    Cross-shard correctness rides along: every run includes the courier
    phase (real labels over ``wire/v1``, Figure 4 checks re-run on the
    receiving shard), and the document asserts the sampled sanitizer saw
    zero violations and that board deliveries and label-check drops are
    invariant in the shard count.
    """
    shard_grid = [1, 2] if quick else [1, 2, 4]
    n_users = 64 if quick else 500
    n_conns = 400 if quick else 10_000
    rows = [_scale_point(s, n_users, n_conns, concurrency=16) for s in shard_grid]
    base = rows[0]
    speedups = [row["throughput"] / base["throughput"] for row in rows]
    comparisons = [
        comparison(
            "cluster speedup at 2 shards (target 1.6x)", 1.6, speedups[1], "x"
        )
    ]
    if len(rows) > 2:
        comparisons.append(
            comparison(
                "cluster speedup at 4 shards (target 2.5x)", 2.5, speedups[2], "x"
            )
        )
    violations = sum(row["sanitizer_violations"] or 0 for row in rows)
    comparisons += [
        comparison("sampled sanitizer violations (1/64)", 0, violations, "count"),
        comparison(
            "cross-shard wire messages routed (max shards)",
            "n/a (>0 expected)",
            rows[-1]["routed"],
            "count",
        ),
        comparison(
            "board deliveries invariant in shard count",
            True,
            len({row["board_messages"] for row in rows}) == 1,
            "",
        ),
        comparison(
            "label-check drops invariant in shard count",
            True,
            len({row["drops"].get("label-check", 0) for row in rows}) == 1,
            "",
        ),
    ]
    return _document(
        "scale",
        "Sharded-cluster throughput scaling (repro.cluster)",
        quick,
        {
            "throughput": _series(
                shard_grid, [row["throughput"] for row in rows], "conn/s"
            ),
            "speedup": _series(shard_grid, speedups, "x"),
            "p50_latency": _series(
                shard_grid, [row["p50_us"] for row in rows], "us"
            ),
            "p99_latency": _series(
                shard_grid, [row["p99_us"] for row in rows], "us"
            ),
        },
        comparisons,
        None,
        {
            "n_users": n_users,
            "n_conns": n_conns,
            "concurrency": 16,
            "sanitize_sample": 64,
            "rows": rows,
        },
    )


# -- the runner ---------------------------------------------------------------------

_RUNNERS: Dict[str, Callable[..., Dict[str, Any]]] = {
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "fig9": run_fig9,
    "labelops": run_labelops,
    "scale": run_scale,
}


def run_bench(
    out_dir: str = ".",
    quick: bool = False,
    only: Optional[List[str]] = None,
    echo: Callable[[str], None] = print,
) -> List[str]:
    """Run the selected figures and write ``BENCH_<figure>.json`` files.

    Returns the list of paths written.  Raises ValueError if any produced
    document fails its own schema validation (a bug, not an input error).
    """
    selected = list(only) if only else list(DEFAULT_FIGURES)
    for figure in selected:
        if figure not in _RUNNERS:
            raise ValueError(
                f"unknown figure {figure!r}; choose from {', '.join(FIGURES)}"
            )
    os.makedirs(out_dir, exist_ok=True)
    # Figures 7 and 9 share the expensive session sweep.
    sweep = None
    if "fig7" in selected or "fig9" in selected:
        echo(f"bench: running session sweep ({'quick' if quick else 'full'} grid)")
        sweep = _sweep(quick)
    paths: List[str] = []
    for figure in selected:
        echo(f"bench: {figure}")
        runner = _RUNNERS[figure]
        if figure in ("fig7", "fig9"):
            doc = runner(quick, sweep=sweep)
        else:
            doc = runner(quick)
        problems = validate(doc)
        if problems:
            raise ValueError(f"{figure} produced an invalid document: {problems}")
        path = os.path.join(out_dir, f"BENCH_{figure}.json")
        with open(path, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        paths.append(path)
        echo(f"bench: wrote {path}")
    return paths


def validate_files(paths: List[str]) -> Dict[str, List[str]]:
    """Validate existing BENCH_*.json files; returns {path: problems}."""
    results: Dict[str, List[str]] = {}
    for path in paths:
        try:
            with open(path) as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError) as err:
            results[path] = [str(err)]
            continue
        results[path] = validate(doc)
    return results


#: Series units where *lower* is better: costs and latencies.  The guard
#: flips to a ceiling for these — a slowdown fails, an improvement never
#: does.  Everything else (throughput, speedups, counts) keeps the floor.
COST_UNITS = frozenset({"Kcycles/conn", "us", "pages"})


def guard_files(
    baseline_paths: List[str],
    fresh_dir: str,
    tolerance: float = 0.02,
) -> List[str]:
    """Regression guard: compare committed baseline documents against the
    freshly generated ones in *fresh_dir*, point by point.

    The guard is one-sided in the *good* direction per series unit.  For
    benefit series (throughput ``conn/s``, speedup ``x``) every ``y``
    value must stay ``>= (1 - tolerance)`` of the baseline; values above
    never fail.  For cost series (:data:`COST_UNITS` — ``Kcycles/conn``,
    ``us``, ``pages``) the sense flips: fresh must stay ``<= (1 +
    tolerance)`` of the baseline, so pinning ``BENCH_labelops.json``
    actually catches a label-op slowdown instead of rewarding it.  The
    CI use is pinning fig7 throughput (and the interning/elision speedup
    series) so machinery riding along in the kernel hot path cannot
    quietly tax it.

    Returns a list of human-readable problems (empty = guard passes).
    """
    problems: List[str] = []
    for base_path in baseline_paths:
        name = os.path.basename(base_path)
        fresh_path = os.path.join(fresh_dir, name)
        try:
            with open(base_path) as fh:
                base = json.load(fh)
            with open(fresh_path) as fh:
                fresh = json.load(fh)
        except (OSError, json.JSONDecodeError) as err:
            problems.append(f"{name}: {err}")
            continue
        for series, base_ser in base.get("series", {}).items():
            fresh_ser = fresh.get("series", {}).get(series)
            if fresh_ser is None:
                problems.append(f"{name}: series {series!r} missing from fresh run")
                continue
            if fresh_ser.get("x") != base_ser.get("x"):
                problems.append(f"{name}: series {series!r} x-grid changed")
                continue
            cost = base_ser.get("unit", "") in COST_UNITS
            for x, base_y, fresh_y in zip(
                base_ser.get("x", []), base_ser.get("y", []), fresh_ser.get("y", [])
            ):
                if not isinstance(base_y, (int, float)) or base_y <= 0:
                    continue
                if cost:
                    ceiling = base_y * (1.0 + tolerance)
                    if fresh_y > ceiling:
                        problems.append(
                            f"{name}: {series}@x={x}: {fresh_y:.4f} > "
                            f"{ceiling:.4f} (baseline {base_y:.4f} + "
                            f"{tolerance:.0%})"
                        )
                else:
                    floor = base_y * (1.0 - tolerance)
                    if fresh_y < floor:
                        problems.append(
                            f"{name}: {series}@x={x}: {fresh_y:.4f} < "
                            f"{floor:.4f} (baseline {base_y:.4f} - "
                            f"{tolerance:.0%})"
                        )
    return problems
