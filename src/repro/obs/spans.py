"""Span-structured tracing of the kernel's syscall→enqueue→delivery chains.

Two span families, both timestamped in *virtual* cycles from the kernel's
:class:`~repro.kernel.clock.CycleClock` (exported as microseconds at the
paper's 2.8 GHz):

- **Activation spans** (``B``/``E`` duration events): one per scheduler
  activation of a task.  Activations of one task never overlap, so plain
  begin/end pairs on a per-task ``tid`` nest correctly.
- **Message spans** (``b``/``e`` async events keyed by the kernel message
  sequence number): begin at enqueue, end at delivery or drop.  Message
  lifetimes overlap arbitrarily — enqueue order is not delivery order —
  which is exactly what Chrome's async events model.

Export is the Chrome ``trace_event`` JSON array format: load the file in
``chrome://tracing`` / Perfetto, or feed it to any trace_event consumer.
Like the drop log and the metrics registry this is out-of-band: nothing
inside the simulation can observe it.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

__all__ = ["SpanRecorder", "CHROME_PID"]

#: The whole simulated machine is one "process" in the Chrome trace.
CHROME_PID = 1

#: Microseconds per cycle at the paper's 2.8 GHz (Chrome traces use µs).
_US_PER_CYCLE = 1e6 / 2_800_000_000


class SpanRecorder:
    """Records span events; bounded by *limit* (oldest events drop first).

    The recorder never timestamps with wall-clock time — callers pass the
    virtual cycle count — so recordings are exactly reproducible.
    """

    def __init__(self, limit: int = 250_000):
        self.limit = limit
        self.events: List[Dict[str, Any]] = []
        self.dropped = 0
        self._tids: Dict[str, int] = {}
        #: Open async (message) spans by id, for close-out at export.
        self._open_async: Dict[int, Dict[str, Any]] = {}

    # -- recording ---------------------------------------------------------------

    def _tid(self, track: str) -> int:
        tid = self._tids.get(track)
        if tid is None:
            tid = len(self._tids) + 1
            self._tids[track] = tid
        return tid

    def _push(self, event: Dict[str, Any]) -> None:
        if len(self.events) >= self.limit:
            # Drop the oldest half in one move; amortised O(1) per event.
            keep = self.limit // 2
            self.dropped += len(self.events) - keep
            del self.events[: len(self.events) - keep]
        self.events.append(event)

    def begin(self, name: str, track: str, ts_cycles: int, **args: Any) -> None:
        """Open a duration span on *track* (must nest within the track)."""
        self._push(
            {
                "ph": "B",
                "name": name,
                "cat": "task",
                "ts": ts_cycles,
                "pid": CHROME_PID,
                "tid": self._tid(track),
                "args": args,
            }
        )

    def end(self, name: str, track: str, ts_cycles: int, **args: Any) -> None:
        self._push(
            {
                "ph": "E",
                "name": name,
                "cat": "task",
                "ts": ts_cycles,
                "pid": CHROME_PID,
                "tid": self._tid(track),
                "args": args,
            }
        )

    def async_begin(self, name: str, span_id: int, ts_cycles: int, **args: Any) -> None:
        """Open an async span (message lifetime) keyed by *span_id*."""
        event = {
            "ph": "b",
            "name": name,
            "cat": "msg",
            "id": span_id,
            "ts": ts_cycles,
            "pid": CHROME_PID,
            "tid": 0,
            "args": args,
        }
        self._open_async[span_id] = event
        self._push(event)

    def async_end(self, name: str, span_id: int, ts_cycles: int, **args: Any) -> None:
        self._open_async.pop(span_id, None)
        self._push(
            {
                "ph": "e",
                "name": name,
                "cat": "msg",
                "id": span_id,
                "ts": ts_cycles,
                "pid": CHROME_PID,
                "tid": 0,
                "args": args,
            }
        )

    def instant(self, name: str, track: str, ts_cycles: int, **args: Any) -> None:
        self._push(
            {
                "ph": "i",
                "name": name,
                "cat": "event",
                "ts": ts_cycles,
                "pid": CHROME_PID,
                "tid": self._tid(track),
                "s": "t",
                "args": args,
            }
        )

    # -- export ------------------------------------------------------------------

    def open_spans(self) -> List[int]:
        """Ids of message spans begun but not yet ended (still queued)."""
        return sorted(self._open_async)

    def to_chrome(
        self,
        now_cycles: Optional[int] = None,
        names: Optional[Dict[str, str]] = None,
    ) -> Dict[str, Any]:
        """The Chrome ``trace_event`` document (JSON-ready dict).

        Every begin gets a matching end: async spans still open — messages
        queued but never delivered when the recording stopped — are closed
        at *now_cycles* (defaults to the last recorded timestamp) with
        ``"unfinished": true`` so consumers that require balanced pairs
        always get them.  *names* optionally overrides thread names (the
        :class:`~repro.sim.trace.FlowTracer` passes symbolic handle names
        through here).
        """
        events: List[Dict[str, Any]] = []
        close_at = now_cycles
        if close_at is None:
            close_at = self.events[-1]["ts"] if self.events else 0
        for track, tid in sorted(self._tids.items(), key=lambda kv: kv[1]):
            label = (names or {}).get(track, track)
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": CHROME_PID,
                    "tid": tid,
                    "args": {"name": label},
                }
            )
        for event in self.events:
            out = dict(event)
            out["ts"] = event["ts"] * _US_PER_CYCLE
            events.append(out)
        for span_id, begin in sorted(self._open_async.items()):
            events.append(
                {
                    "ph": "e",
                    "name": begin["name"],
                    "cat": begin["cat"],
                    "id": span_id,
                    "ts": close_at * _US_PER_CYCLE,
                    "pid": CHROME_PID,
                    "tid": 0,
                    "args": {"unfinished": True},
                }
            )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "source": "repro.obs.spans",
                "clock": "virtual-cycles@2.8GHz",
                "dropped_events": self.dropped,
            },
        }

    def to_json(self, **kwargs: Any) -> str:
        return json.dumps(self.to_chrome(**kwargs))

    def __len__(self) -> int:
        return len(self.events)
