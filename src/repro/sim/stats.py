"""Small statistics helpers for experiment reporting."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence


def percentile(values: Sequence[float], pct: float) -> float:
    """The *pct*-th percentile of *values* (linear interpolation)."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= pct <= 100:
        raise ValueError(f"percentile out of range: {pct}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (pct / 100) * (len(ordered) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return float(ordered[lo])
    frac = rank - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """median / p90 / mean / min / max of *values*."""
    return {
        "median": percentile(values, 50),
        "p90": percentile(values, 90),
        "mean": sum(values) / len(values),
        "min": float(min(values)),
        "max": float(max(values)),
    }


@dataclass
class Series:
    """An (x, y) series with a name — the unit the figure benches emit."""

    name: str
    xs: List[float] = field(default_factory=list)
    ys: List[float] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        self.xs.append(x)
        self.ys.append(y)

    def rows(self) -> Iterable[str]:
        for x, y in zip(self.xs, self.ys):
            yield f"{x:>10g}  {y:>14.2f}"

    def format(self) -> str:
        header = f"# {self.name}\n{'x':>10}  {'y':>14}"
        return "\n".join([header, *self.rows()])
