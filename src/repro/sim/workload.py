"""The HTTP client workload generator.

Models the paper's measurement client (a Linux box on a gigabit LAN): it
injects TCP events at the wire boundary — the one place the label system
necessarily ends — and reads responses off the simulated NIC.

Requests are "authenticated HTTP": the head chunk carries username,
password, service and args (standing in for the request line + auth
headers the paper's ok-demux parses); the body chunk is read by the
worker, as in Figure 5 step 8.

Two driving modes:

- :meth:`HttpClient.request` — one blocking request (examples, tests);
- :meth:`HttpClient.run_batch` — *concurrency*-sized waves of overlapping
  connections, the closed-loop shape of the paper's throughput and
  latency runs (Section 9.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.okws.launcher import OkwsSite


@dataclass
class HttpResponse:
    """One completed request as observed at the client."""

    conn_id: int
    payload: Any                 # what the worker wrote (dict with headers/body)
    open_cycles: int             # virtual time the connection opened
    done_cycles: int             # virtual time the response hit the wire

    @property
    def latency_cycles(self) -> int:
        return self.done_cycles - self.open_cycles

    @property
    def ok(self) -> bool:
        # 503 is graceful degradation (worker down or backend
        # unreachable), not success.
        return isinstance(self.payload, dict) and self.payload.get("status") not in (
            403,
            404,
            503,
        )

    @property
    def body(self) -> Any:
        return self.payload.get("body") if isinstance(self.payload, dict) else None


@dataclass
class HttpClient:
    """Drives an :class:`~repro.okws.launcher.OkwsSite` over the wire."""

    site: OkwsSite
    _next_conn: int = 1

    def _open(self, user: str, password: str, service: str,
              body: Any, args: Optional[Dict[str, Any]]) -> Tuple[int, int]:
        kernel = self.site.kernel
        conn_id = self._next_conn
        self._next_conn += 1
        opened = kernel.clock.now
        kernel.inject(self.site.netd_wire_port, {"type": "OPEN", "conn": conn_id, "dport": 80})
        head = {
            "user": user,
            "password": password,
            "service": service,
            "args": dict(args or {}),
        }
        kernel.inject(
            self.site.netd_wire_port,
            {"type": "DATA", "conn": conn_id, "data": head},
        )
        kernel.inject(
            self.site.netd_wire_port,
            {"type": "DATA", "conn": conn_id, "data": body},
        )
        return conn_id, opened

    def _collect(self, conn_id: int, opened: int) -> HttpResponse:
        wire = self.site.wire
        stamps = wire.stamps.pop(conn_id, [0])
        chunks = wire.take(conn_id)
        payload = chunks[-1] if chunks else None
        self.site.kernel.inject(
            self.site.netd_wire_port, {"type": "CLOSE", "conn": conn_id}
        )
        return HttpResponse(
            conn_id=conn_id,
            payload=payload,
            open_cycles=opened,
            done_cycles=stamps[-1],
        )

    def request(
        self,
        user: str,
        password: str,
        service: str,
        body: Any = None,
        args: Optional[Dict[str, Any]] = None,
    ) -> HttpResponse:
        """One synchronous request; runs the machine to quiescence."""
        conn_id, opened = self._open(user, password, service, body, args)
        self.site.kernel.run()
        response = self._collect(conn_id, opened)
        self.site.kernel.run()
        return response

    def run_batch(
        self,
        requests: Sequence[Tuple[str, str, str, Any, Optional[Dict[str, Any]]]],
        concurrency: int = 16,
    ) -> List[HttpResponse]:
        """Issue *requests* in closed-loop waves of *concurrency*.

        Each tuple is (user, password, service, body, args).  Returns one
        HttpResponse per request, in completion order within each wave.
        """
        kernel = self.site.kernel
        responses: List[HttpResponse] = []
        for wave_start in range(0, len(requests), concurrency):
            wave = requests[wave_start : wave_start + concurrency]
            opened: List[Tuple[int, int]] = []
            for user, password, service, body, args in wave:
                opened.append(self._open(user, password, service, body, args))
            kernel.run()
            for conn_id, open_time in opened:
                responses.append(self._collect(conn_id, open_time))
            kernel.run()
        return responses
