"""Experiment machinery: workload generation, statistics, and the
end-to-end experiment drivers that regenerate the paper's figures."""

from repro.sim.workload import HttpClient, HttpResponse
from repro.sim.stats import Series, percentile, summarize
from repro.sim.trace import FlowEvent, FlowTracer

__all__ = [
    "HttpClient",
    "HttpResponse",
    "Series",
    "percentile",
    "summarize",
    "FlowEvent",
    "FlowTracer",
]
