"""End-to-end experiment drivers for the paper's evaluation (Section 9).

One function per experiment family:

- :func:`run_memory_experiment` — Figure 6: total memory (pages) after
  creating N cached or active web sessions.
- :func:`run_session_sweep` — Figures 7 and 9: throughput and the
  per-connection component cycle breakdown as the number of cached
  sessions varies (each user connects to its session exactly 4 times,
  matching Section 9.2.1's workload).
- :func:`run_latency_experiment` — Figure 8: request latencies at
  concurrency 4 for a given number of cached sessions.

Results are plain dataclasses so the benchmarks can print the paper's
rows/series and the tests can assert on shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.kernel.clock import CPU_HZ
from repro.kernel.config import KernelConfig
from repro.kernel.kernel import Kernel
from repro.kernel.memory import PAGE_SIZE
from repro.okws.launcher import OkwsSite, ServiceConfig, launch
from repro.okws.services import echo_handler, session_cache_handler
from repro.sim.workload import HttpClient


def _users(n: int) -> List[Tuple[str, str]]:
    return [(f"u{i}", f"pw{i}") for i in range(n)]


def build_echo_site(
    n_users: int,
    label_cost_mode: str = "paper",
    config: Optional[KernelConfig] = None,
) -> OkwsSite:
    """An OKWS instance running the Section 9.2 echo service.

    Pass *config* to control every kernel option (observability included);
    *label_cost_mode* is honoured only when *config* is not given.
    """
    if config is None:
        config = KernelConfig.from_env(label_cost_mode=label_cost_mode)
    kernel = Kernel(config=config)
    return launch(
        kernel=kernel,
        services=[ServiceConfig("echo", echo_handler)],
        users=_users(n_users),
    )


def build_cache_site(
    n_users: int,
    no_clean: bool = False,
    config: Optional[KernelConfig] = None,
) -> OkwsSite:
    """An OKWS instance running the Section 9.1 session-cache service."""
    kernel = Kernel(config=config) if config is not None else None
    return launch(
        kernel=kernel,
        services=[ServiceConfig("cache", session_cache_handler, no_clean=no_clean)],
        users=_users(n_users),
    )


# -- Figure 6 -----------------------------------------------------------------------


@dataclass
class MemoryPoint:
    sessions: int
    total_pages: float
    user_pages: int
    kernel_bytes: int
    breakdown: Dict[str, int] = field(default_factory=dict)


def run_memory_experiment(
    session_counts: List[int],
    active: bool = False,
    concurrency: int = 16,
    config: Optional[KernelConfig] = None,
) -> List[MemoryPoint]:
    """Create N sessions (one connection each) and measure total memory.

    ``active=False`` measures *cached* sessions: the worker ep_cleans down
    to its session page before yielding.  ``active=True`` measures the
    worst case: the worker never cleans, so every session retains its
    stack, message-queue and scratch pages (Section 9.1).
    """
    points: List[MemoryPoint] = []
    for count in session_counts:
        site = build_cache_site(max(count, 1), no_clean=active, config=config)
        client = HttpClient(site)
        baseline = site.kernel.memory_report()
        requests = [
            (f"u{i}", f"pw{i}", "cache", b"s" * 900, None) for i in range(count)
        ]
        client.run_batch(requests, concurrency=concurrency)
        report = site.kernel.memory_report()
        points.append(
            MemoryPoint(
                sessions=count,
                total_pages=report["total_bytes"] / PAGE_SIZE,
                user_pages=report["user_pages"],
                kernel_bytes=report["kernel_bytes"],
                breakdown={
                    key: report[key]
                    for key in (
                        "process_bytes",
                        "ep_bytes",
                        "port_bytes",
                        "label_bytes",
                        "vnode_bytes",
                    )
                },
            )
        )
    return points


# -- Figures 7 and 9 -----------------------------------------------------------------


@dataclass
class SweepPoint:
    sessions: int
    connections: int
    throughput: float                      # completed connections/second
    components_kcycles: Dict[str, float]   # per-connection, by category
    total_kcycles: float
    latencies_us: List[float] = field(default_factory=list)


def run_session_sweep(
    session_counts: List[int],
    rounds: int = 4,
    concurrency: int = 16,
    min_connections: int = 64,
    label_cost_mode: str = "paper",
    config: Optional[KernelConfig] = None,
) -> List[SweepPoint]:
    """The Section 9.2.1 throughput experiment.

    For each point, S users each connect to their session *rounds* times
    (round-robin, so sessions are created in round one and resumed in the
    rest).  Throughput and component costs are measured over the entire
    run, matching the paper ("the throughput results thus contain data
    both for forwarding messages to existing event processes and for
    creating new event processes").
    """
    points: List[SweepPoint] = []
    for count in session_counts:
        site = build_echo_site(count, label_cost_mode=label_cost_mode, config=config)
        client = HttpClient(site)
        effective_rounds = max(rounds, -(-min_connections // count))
        requests = [
            (f"u{i}", f"pw{i}", "echo", None, {"length": 11})
            for _ in range(effective_rounds)
            for i in range(count)
        ]
        snap = site.kernel.clock.snapshot()
        responses = client.run_batch(requests, concurrency=concurrency)
        delta = site.kernel.clock.delta(snap)
        n = len(requests)
        total = sum(delta.values())
        points.append(
            SweepPoint(
                sessions=count,
                connections=n,
                throughput=n / (total / CPU_HZ),
                components_kcycles={k: v / n / 1000 for k, v in delta.items()},
                total_kcycles=total / n / 1000,
                latencies_us=[r.latency_cycles / CPU_HZ * 1e6 for r in responses],
            )
        )
    return points


# -- Figure 8 ----------------------------------------------------------------------------


@dataclass
class LatencyResult:
    label: str
    median_us: float
    p90_us: float


def run_latency_experiment(
    sessions: int,
    n_requests: int = 400,
    concurrency: int = 4,
    config: Optional[KernelConfig] = None,
) -> List[float]:
    """Per-request latencies for OKWS with *sessions* cached sessions, at
    the paper's measurement concurrency of four."""
    site = build_echo_site(max(sessions, 1), config=config)
    client = HttpClient(site)
    # Pre-create the cached sessions.
    warmup = [(f"u{i}", f"pw{i}", "echo", None, None) for i in range(sessions)]
    client.run_batch(warmup, concurrency=16)
    # Measure over a closed loop of existing sessions.
    requests = [
        (f"u{i % max(sessions, 1)}", f"pw{i % max(sessions, 1)}", "echo", None, None)
        for i in range(n_requests)
    ]
    responses = client.run_batch(requests, concurrency=concurrency)
    return [r.latency_cycles / CPU_HZ * 1e6 for r in responses]
