"""Label-flow tracing: a developer tool for watching the kernel's
decisions.

Attach a :class:`FlowTracer` to a kernel and every delivery attempt is
recorded — sender, receiver, the verdict, and how the receiver's labels
changed — with symbolic handle names you register as compartments come
into being.  ``tracer.format()`` renders a readable transcript; tests can
assert on the structured :class:`FlowEvent` records.

This is out-of-band diagnostics in the same sense as the kernel's drop
log: nothing inside the simulation can observe it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.sanitizer import Violation
from repro.core.handles import Handle
from repro.core.labels import Label
from repro.kernel.kernel import Kernel


@dataclass
class FlowEvent:
    """One delivery attempt."""

    seq: int
    sender: str
    receiver: str
    port: Handle
    delivered: bool
    effective_send: Label
    verify: Label
    send_before: Label
    send_after: Optional[Label] = None      # None if dropped
    receive_before: Label = field(default_factory=Label.receive_default)
    receive_after: Optional[Label] = None
    #: Sanitizer violations raised by this delivery (sanitize mode only).
    violations: List[Violation] = field(default_factory=list)

    @property
    def contaminated(self) -> bool:
        return self.delivered and self.send_after != self.send_before

    @property
    def decontaminated_receive(self) -> bool:
        return self.delivered and self.receive_after != self.receive_before


class FlowTracer:
    """Wraps a kernel's delivery path and records every attempt."""

    def __init__(self, kernel: Kernel):
        self.kernel = kernel
        self.events: List[FlowEvent] = []
        self.names: Dict[Handle, str] = {}
        self._seq = 0
        self._original = kernel._try_deliver
        kernel._try_deliver = self._traced_deliver  # type: ignore[method-assign]

    def detach(self) -> None:
        self.kernel._try_deliver = self._original  # type: ignore[method-assign]

    def name_handle(self, handle: Handle, name: str) -> None:
        """Register a symbolic name for a handle (e.g. ``uT``)."""
        self.names[handle] = name

    # -- the wrapper ---------------------------------------------------------------

    def _traced_deliver(self, task, entry, qmsg):
        send_before = task.send_label.to_label()
        receive_before = task.receive_label.to_label()
        sanitizer = self.kernel.sanitizer
        violations_before = len(sanitizer.violations) if sanitizer else 0
        delivered = self._original(task, entry, qmsg)
        self._seq += 1
        new_violations = (
            list(sanitizer.violations[violations_before:]) if sanitizer else []
        )
        self.events.append(
            FlowEvent(
                seq=self._seq,
                sender=qmsg.sender_name,
                receiver=task.name,
                port=entry.handle,
                delivered=delivered,
                effective_send=qmsg.effective_send.to_label(),
                verify=qmsg.verify.to_label(),
                send_before=send_before,
                send_after=task.send_label.to_label() if delivered else None,
                receive_before=receive_before,
                receive_after=task.receive_label.to_label() if delivered else None,
                violations=new_violations,
            )
        )
        return delivered

    # -- queries -----------------------------------------------------------------------

    def drops(self) -> List[FlowEvent]:
        return [e for e in self.events if not e.delivered]

    def contaminations(self) -> List[FlowEvent]:
        return [e for e in self.events if e.contaminated]

    def violations(self) -> List[Violation]:
        return [v for e in self.events for v in e.violations]

    def between(self, sender: str, receiver: str) -> List[FlowEvent]:
        return [
            e for e in self.events if e.sender == sender and e.receiver == receiver
        ]

    # -- rendering ----------------------------------------------------------------------

    def chrome_trace(self) -> dict:
        """The kernel's span recording as a Chrome ``trace_event`` document
        (JSON-ready dict), with the tracer's symbolic handle names attached
        to message spans as ``port_name``.

        Requires a kernel constructed with ``KernelConfig(spans=True)``.
        """
        spans = getattr(self.kernel, "spans", None)
        if spans is None:
            raise ValueError(
                "kernel records no spans; construct it with "
                "Kernel(config=KernelConfig(spans=True))"
            )
        doc = spans.to_chrome(now_cycles=self.kernel.clock.now)
        by_hex = {f"{handle:#x}": name for handle, name in self.names.items()}
        for event in doc["traceEvents"]:
            port = event.get("args", {}).get("port")
            name = by_hex.get(port)
            if name is not None:
                event["args"] = dict(event["args"], port_name=name)
        return doc

    def _fmt(self, label: Label) -> str:
        return label.format(self.names)

    def format(self, last: Optional[int] = None) -> str:
        """A readable transcript (optionally only the *last* N events)."""
        lines = []
        events = self.events[-last:] if last else self.events
        for e in events:
            verdict = "  ->" if e.delivered else "  XX"
            lines.append(
                f"[{e.seq:>5}]{verdict} {e.sender} => {e.receiver}"
                f"  ES={self._fmt(e.effective_send)}"
            )
            if e.delivered and e.contaminated:
                lines.append(
                    f"         contaminated: {self._fmt(e.send_before)}"
                    f" -> {self._fmt(e.send_after)}"
                )
            if e.delivered and e.decontaminated_receive:
                lines.append(
                    f"         cleared:      {self._fmt(e.receive_before)}"
                    f" -> {self._fmt(e.receive_after)}"
                )
            for violation in e.violations:
                lines.append(f"         !! {violation.format()}")
        return "\n".join(lines)
