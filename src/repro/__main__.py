"""``python -m repro`` — a two-minute guided tour of the reproduction:
the label lattice, OKWS's kernel-enforced per-user isolation, and the
headline evaluation numbers in miniature."""

from __future__ import annotations


def main() -> int:
    from repro.core.labels import Label
    from repro.core.levels import L1, L2, L3
    from repro.okws import ServiceConfig, launch
    from repro.okws.services import notes_handler, session_cache_handler
    from repro.sim.runner import run_memory_experiment, run_session_sweep
    from repro.sim.workload import HttpClient

    print("asbestos-repro — Labels and Event Processes (SOSP 2005)")
    print("=" * 64)

    print("\n[1/3] the label lattice")
    uT = 0x1001
    tainted, clearance = Label({uT: L3}, L1), Label({uT: L3}, L2)
    print(f"   {{uT 3, 1}} ⊑ {{uT 3, 2}} : {tainted <= clearance}")
    print(
        f"   {{uT 3, 1}} ⊑ {{2}}       : {tainted <= Label({}, L2)}"
        "  (default receive refuses full taint)"
    )

    print("\n[2/3] OKWS: kernel-enforced per-user isolation")
    site = launch(
        services=[
            ServiceConfig("cache", session_cache_handler),
            ServiceConfig("notes", notes_handler),
        ],
        users=[("alice", "pw-a"), ("bob", "pw-b")],
        schema=["CREATE TABLE notes (author TEXT, text TEXT)"],
    )
    client = HttpClient(site)
    client.request("alice", "pw-a", "notes", body="alice's secret", args={"op": "add"})
    client.request("bob", "pw-b", "notes", body="bob's secret", args={"op": "add"})
    a = client.request("alice", "pw-a", "notes", args={"op": "list"}).body
    b = client.request("bob", "pw-b", "notes", args={"op": "list"}).body
    print(f"   alice sees {a}; bob sees {b}")
    print(
        "   flows silently dropped by the kernel so far: "
        f"{site.kernel.drop_log.count('label-check')}"
    )

    print("\n[3/3] the evaluation in one line each")
    mem = run_memory_experiment([0, 200])
    slope = (mem[1].total_pages - mem[0].total_pages) / 200
    print(f"   memory: {slope:.2f} pages per cached session (paper: ~1.5)")
    point = run_session_sweep([1], min_connections=32)[0]
    print(
        f"   throughput: {point.throughput:.0f} conn/s at 1 session "
        "(paper regime: OKWS ≈ half of Mod-Apache, above Apache)"
    )
    print("\nSee examples/ for full walkthroughs and benchmarks/ for the figures.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
