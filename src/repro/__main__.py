"""``python -m repro`` — the command line.

Bare invocation runs the two-minute guided tour; ``analyze`` runs the
asblint static label-flow checker; ``run`` drives the OKWS demo workload
(optionally under the runtime sanitizer).  See :mod:`repro.analysis.cli`.
"""

from __future__ import annotations

from repro.analysis.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
