"""``python -m repro`` — the command line.

Bare invocation runs the two-minute guided tour; ``analyze`` runs the
asblint static label-flow checker; ``check`` the asbcheck whole-system
model checker; ``explore`` the asbsched schedule-space explorer (DPOR
over scheduler, timer and fault nondeterminism with counterexample
shrinking); ``run`` drives the OKWS demo workload (optionally under the
runtime sanitizer); ``chaos`` runs seeded fault-injection campaigns;
``bench`` regenerates the paper's figures (``--scale`` adds the sharded
``repro.cluster`` scaling bench).  All subcommands share one option
surface — ``--format text|json|sarif``, ``--out PATH``, ``--seed N`` —
and one exit-code convention (0 clean, 1 violation or regression,
2 usage error).  See :mod:`repro.analysis.cli`.
"""

from __future__ import annotations

from repro.analysis.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
