"""The public cluster API: :class:`ClusterConfig` and :class:`Cluster`.

This is the one import a user needs for multi-shard runs:

.. code-block:: python

    from repro import Cluster, ClusterConfig

    config = ClusterConfig(n_shards=4, users=USERS, service="echo")
    with Cluster(config) as cluster:
        result = cluster.run_batch(requests)
        cluster.run_courier()
        report = cluster.report()

``n_shards=1`` is the identity: the facade drives the ordinary in-process
:class:`~repro.kernel.Kernel` directly — same boot key, same schedule,
same drop log, no worker processes and no wire codec — so a single-shard
cluster run is bit-identical to the pre-cluster API.  Only ``n_shards>1``
brings in :class:`~repro.cluster.router.Router`, per-shard OS processes,
and the ``wire/v1`` cross-shard path.

Sharding is by user (:func:`repro.okws.sharding.shard_of_user`): each
shard boots a complete OKWS stack over its user partition, including its
slice of the logical idd/dbproxy.  Per-shard kernels get disjoint handle
spaces by deriving the boot key (``boot_key + b"/shard-N"``), so a handle
minted on one shard never collides with a peer's — which is what lets
cross-shard labels name handles globally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.kernel.config import KernelConfig
from repro.cluster.router import ClusterError, Router, requests_by_shard
from repro.cluster.shard import ShardRuntime, ShardSpec
from repro.okws.sharding import (
    SERVICES,
    courier_targets,
    partition_users,
    shard_of_user,
)

__all__ = ["BatchResult", "Cluster", "ClusterConfig", "ClusterError"]


@dataclass(frozen=True)
class ClusterConfig:
    """Immutable shape of one cluster run.

    Wraps a :class:`~repro.kernel.config.KernelConfig` (applied to every
    shard kernel) with the cluster-level knobs: how many shards, which
    OKWS service, the user universe, and the sampled-sanitizer override.
    ``sanitize_sample=None`` defers to ``kernel.sanitize_sample``;
    setting it (e.g. ``64`` for the production-shaped 1/64 sampling)
    overrides the kernel config on every shard.
    """

    n_shards: int = 1
    kernel: KernelConfig = field(default_factory=KernelConfig)
    service: str = "echo"
    users: Tuple[Tuple[str, str], ...] = ()
    schema: Tuple[str, ...] = ()
    network: str = "classic"
    sanitize_sample: Optional[int] = None
    concurrency: int = 16

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {self.n_shards}")
        if self.service not in SERVICES:
            raise ValueError(
                f"unknown cluster service {self.service!r} "
                f"(expected one of {sorted(SERVICES)})"
            )
        if self.concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {self.concurrency}")
        if self.sanitize_sample is not None and self.sanitize_sample <= 0:
            raise ValueError(
                f"sanitize_sample must be positive, got {self.sanitize_sample}"
            )
        # Normalise sequences so the config is hashable and fork-safe.
        object.__setattr__(self, "users", tuple(tuple(u) for u in self.users))
        object.__setattr__(self, "schema", tuple(self.schema))

    def shard_kernel_config(self, shard_id: int) -> KernelConfig:
        """The kernel config for one shard.

        Single-shard clusters keep the boot key (and any ``store_path``)
        verbatim — that is the bit-identical guarantee.  Multi-shard
        clusters derive per-shard keys so handle spaces are disjoint
        across the cluster, and per-shard store paths
        (``<path>.shard-<k>``) so each shard's dbproxy logs to — and
        recovers from — its own file.  Because users are partitioned by
        :func:`shard_of_user` independently of the shard count, a user's
        rows land in the store of whichever shard owns them; recovery is
        per-shard and needs no cross-shard coordination.
        """
        config = self.kernel
        if self.sanitize_sample is not None:
            config = config.replace(sanitize_sample=self.sanitize_sample)
        if self.n_shards > 1:
            config = config.replace(
                boot_key=config.boot_key + b"/shard-%d" % shard_id
            )
            if config.store_path is not None:
                config = config.replace(
                    store_path=f"{config.store_path}.shard-{shard_id}"
                )
        return config

    def shard_specs(self) -> List[ShardSpec]:
        parts = partition_users(self.users, self.n_shards)
        return [
            ShardSpec(
                shard_id=shard,
                n_shards=self.n_shards,
                kernel_config=self.shard_kernel_config(shard),
                service=self.service,
                users=tuple(parts[shard]),
                schema=self.schema,
                network=self.network,
            )
            for shard in range(self.n_shards)
        ]


@dataclass
class BatchResult:
    """One :meth:`Cluster.run_batch` round, aggregated.

    ``outcomes`` is in the original request order regardless of sharding
    (one ``(user, status, body, latency_cycles)`` per request), which is
    what makes single- and multi-shard runs directly comparable.
    ``elapsed_cycles`` is the *slowest* shard's simulated busy time —
    shards run on independent simulated CPUs, so the cluster is as slow
    as its busiest member.
    """

    outcomes: List[Tuple[str, Any, Any, int]]
    busy_cycles: Tuple[int, ...]
    routed: int

    @property
    def elapsed_cycles(self) -> int:
        return max(self.busy_cycles) if self.busy_cycles else 0

    @property
    def latencies_cycles(self) -> List[int]:
        return [outcome[3] for outcome in self.outcomes]


class Cluster:
    """N kernel shards behind one object (the stable public facade)."""

    def __init__(self, config: ClusterConfig) -> None:
        self.config = config
        self.n_shards = config.n_shards
        self._runtime: Optional[ShardRuntime] = None
        self._router: Optional[Router] = None
        self._routed = 0
        self._closed = False
        if self.n_shards == 1:
            self._runtime = ShardRuntime(config.shard_specs()[0])
            self.boards = {0: self._runtime.board_env["board_port"]}
            self._runtime.install_peers(self.boards)
        else:
            self._router = Router(config.shard_specs())
            try:
                self.boards = self._router.boot()
            except BaseException:
                self._router.stop()
                raise

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._router is not None:
            self._router.stop()

    def __enter__(self) -> "Cluster":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- workload --------------------------------------------------------

    def run_batch(
        self,
        requests: Sequence[Tuple[str, str, str, Any, Optional[Dict[str, Any]]]],
    ) -> BatchResult:
        """Drive *requests* through the cluster, routing each to the shard
        owning its user, and drain any cross-shard traffic they cause."""
        requests = list(requests)
        if self._runtime is not None:
            reply = self._runtime.run_batch(requests, self.config.concurrency)
            return BatchResult(
                outcomes=[tuple(o) for o in reply["outcomes"]],
                busy_cycles=(reply["busy_cycles"],),
                routed=0,
            )
        assert self._router is not None
        parts = requests_by_shard(requests, self.n_shards)
        # Remember each request's (shard, position) so per-shard replies
        # can be stitched back into the original order.
        slots: List[List[int]] = [[] for _ in range(self.n_shards)]
        for i, request in enumerate(requests):
            slots[shard_of_user(request[0], self.n_shards)].append(i)
        replies = self._router.call_all(
            [("batch", parts[shard], self.config.concurrency)
             for shard in range(self.n_shards)]
        )
        outcomes: List[Any] = [None] * len(requests)
        docs: List[Dict[str, Any]] = []
        busy: List[int] = []
        for shard, reply in enumerate(replies):
            for position, outcome in zip(slots[shard], reply["outcomes"]):
                outcomes[position] = tuple(outcome)
            busy.append(reply["busy_cycles"])
            docs.extend(reply["outbox"])
        routed = self._router.pump(docs)
        self._routed += routed
        return BatchResult(
            outcomes=outcomes, busy_cycles=tuple(busy), routed=routed
        )

    def run_courier(self) -> int:
        """Run the cross-shard courier phase on every shard.

        Each shard sends one digest per local user to the board of the
        shard owning the next user in the global ring (plus the doomed
        ``V = {0}`` variants) — see :mod:`repro.okws.sharding`.  Returns
        the number of wire documents routed shard-to-shard.
        """
        all_users = [name for name, _ in self.config.users]
        if self._runtime is not None:
            targets = courier_targets(
                [name for name, _ in self._runtime.spec.users],
                all_users,
                self.boards,
                1,
            )
            reply = self._runtime.run_courier(targets)
            if reply["outbox"]:  # pragma: no cover - no peers to route to
                raise ClusterError("single-shard courier produced cross-shard traffic")
            return 0
        assert self._router is not None
        commands = []
        for spec in self._router.specs:
            targets = courier_targets(
                [name for name, _ in spec.users],
                all_users,
                self.boards,
                self.n_shards,
            )
            commands.append(("courier", targets))
        replies = self._router.call_all(commands)
        docs = [doc for reply in replies for doc in reply["outbox"]]
        routed = self._router.pump(docs)
        self._routed += routed
        return routed

    # -- accounting ------------------------------------------------------

    def mark(self) -> None:
        """Start a drop-accounting phase on every shard (excludes boot
        noise from the next :meth:`report`)."""
        if self._runtime is not None:
            self._runtime.mark_drops()
        else:
            assert self._router is not None
            self._router.call_all([("mark",)] * self.n_shards)

    def report(self) -> Dict[str, Any]:
        """Aggregate per-shard accounting: drops by reason, board logs,
        sanitizer verdicts, simulated clocks, cross-shard traffic."""
        if self._runtime is not None:
            shards = [self._runtime.snapshot()]
        else:
            assert self._router is not None
            shards = self._router.call_all([("snapshot",)] * self.n_shards)
        drops: Dict[str, int] = {}
        violations: Optional[int] = None
        board_log: List[Any] = []
        for snap in shards:
            for reason, count in snap["drops"].items():
                drops[reason] = drops.get(reason, 0) + count
            if snap["sanitizer_violations"] is not None:
                violations = (violations or 0) + snap["sanitizer_violations"]
            board_log.extend(snap["board_log"])
        return {
            "n_shards": self.n_shards,
            "shards": shards,
            "drops": drops,
            "sanitizer_violations": violations,
            "board_log": board_log,
            "routed": self._routed,
        }
