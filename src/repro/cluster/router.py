"""The cluster router: shard processes, pipes, and message routing.

The :class:`Router` owns the worker processes.  It is deliberately dumb:
shards never talk to each other directly — every ``wire/v1`` document a
shard emits comes back to the router, which forwards it to the owning
shard's pipe.  That keeps the transport a star (N pipes, no N² mesh), and
it makes cross-shard traffic observable in one place, which is what the
tests and the scale bench count.

Requests fan out with :meth:`Router.call_all` — commands are written to
*every* pipe before any reply is read, so shard kernels genuinely run
concurrently as OS processes; the router only synchronizes at reply
collection.  :meth:`Router.pump` then drains cross-shard traffic to a
fixed point: outbox documents are grouped by destination, delivered, and
any replies' outboxes go around again (a delivery can itself trigger
sends) until the cluster is quiet.
"""

from __future__ import annotations

import multiprocessing
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.cluster.shard import ShardSpec, shard_main
from repro.okws.sharding import shard_of_user

__all__ = ["ClusterError", "Router", "requests_by_shard"]


class ClusterError(RuntimeError):
    """A shard reported an error or died mid-conversation."""


def requests_by_shard(
    requests: Sequence[Tuple[str, str, str, Any, Optional[Dict[str, Any]]]],
    n_shards: int,
) -> List[List[Tuple[str, str, str, Any, Optional[Dict[str, Any]]]]]:
    """Partition ``(user, password, service, body, args)`` tuples by the
    user→shard map, preserving each shard's request order."""
    parts: List[List[Any]] = [[] for _ in range(n_shards)]
    for request in requests:
        parts[shard_of_user(request[0], n_shards)].append(request)
    return parts


class Router:
    """Owns the shard worker processes and their pipes."""

    def __init__(self, specs: Sequence[ShardSpec]) -> None:
        self.specs = list(specs)
        self.n_shards = len(self.specs)
        self._context = multiprocessing.get_context("fork")
        self._processes: List[Any] = []
        self._pipes: List[Any] = []
        #: shard id → board port handle, filled in by :meth:`boot`.
        self.boards: Dict[int, int] = {}
        #: Total wire/v1 documents routed shard-to-shard.
        self.routed = 0

    # -- lifecycle -------------------------------------------------------

    def boot(self) -> Dict[int, int]:
        """Start every shard, collect board ports, broadcast the peer map."""
        for spec in self.specs:
            parent_end, child_end = self._context.Pipe()
            process = self._context.Process(
                target=shard_main,
                args=(child_end, spec),
                name=f"repro-shard-{spec.shard_id}",
                daemon=True,
            )
            process.start()
            child_end.close()
            self._processes.append(process)
            self._pipes.append(parent_end)
        for shard, pipe in enumerate(self._pipes):
            status, payload = pipe.recv()
            if status != "ready":
                raise ClusterError(f"shard {shard} failed to boot: {payload}")
            self.boards[shard] = payload["board_port"]
        self.call_all([("peers", self.boards)] * self.n_shards)
        return dict(self.boards)

    def stop(self) -> None:
        for pipe in self._pipes:
            try:
                pipe.send(("stop",))
                pipe.recv()
            except (BrokenPipeError, EOFError, OSError):
                pass
            pipe.close()
        for process in self._processes:
            process.join(timeout=30)
            if process.is_alive():  # pragma: no cover - hung worker
                process.terminate()
                process.join(timeout=5)
        self._processes.clear()
        self._pipes.clear()

    # -- conversation ----------------------------------------------------

    def _recv(self, shard: int) -> Any:
        try:
            status, payload = self._pipes[shard].recv()
        except EOFError as err:
            raise ClusterError(f"shard {shard} died") from err
        if status != "ok":
            raise ClusterError(str(payload))
        return payload

    def call(self, shard: int, command: Tuple[Any, ...]) -> Any:
        """One synchronous command to one shard."""
        self._pipes[shard].send(command)
        return self._recv(shard)

    def call_all(self, commands: Sequence[Tuple[Any, ...]]) -> List[Any]:
        """One command per shard, written before any reply is read — the
        fan-out that lets all shard kernels run concurrently."""
        if len(commands) != self.n_shards:
            raise ValueError(
                f"need one command per shard ({self.n_shards}), got {len(commands)}"
            )
        for pipe, command in zip(self._pipes, commands):
            pipe.send(command)
        return [self._recv(shard) for shard in range(self.n_shards)]

    # -- cross-shard traffic ---------------------------------------------

    def pump(self, docs: List[Dict[str, Any]]) -> int:
        """Route *docs* (and any traffic their delivery triggers) until the
        cluster is quiet.  Returns the number of documents routed."""
        total = 0
        while docs:
            by_dst: Dict[int, List[Dict[str, Any]]] = {}
            for doc in docs:
                by_dst.setdefault(doc["dst"], []).append(doc)
            docs = []
            for dst, batch in sorted(by_dst.items()):
                reply = self.call(dst, ("xsend", batch))
                total += len(batch)
                docs.extend(reply["outbox"])
        self.routed += total
        return total
