"""``repro.cluster`` — N kernel shards behind one facade (DESIGN.md §13).

The paper's kernel is a uniprocessor; this package scales the simulation
across cores the way a real Asbestos deployment would scale across
machines: N independent kernels, each owning a static partition of the
users (and therefore of the processes, ports, and labels their sessions
touch), exchanging ``(message, labels, effects)`` over a canonical wire
format with full Figure 4 checks re-run on the receiving shard.

Public surface:

- :class:`Cluster` / :class:`ClusterConfig` — the facade (also
  re-exported from :mod:`repro`);
- :class:`BatchResult` — one aggregated workload round;
- :class:`ClusterError` — shard boot/command failures;
- :mod:`repro.cluster.wire` — the ``wire/v1`` codec, usable standalone.
"""

from repro.cluster.facade import BatchResult, Cluster, ClusterConfig, ClusterError
from repro.cluster.wire import (
    WIRE_SCHEMA,
    WireDecoder,
    WireEncoder,
    WireError,
    XShardMessage,
)

__all__ = [
    "BatchResult",
    "Cluster",
    "ClusterConfig",
    "ClusterError",
    "WIRE_SCHEMA",
    "WireDecoder",
    "WireEncoder",
    "WireError",
    "XShardMessage",
]
