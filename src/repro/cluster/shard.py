"""The shard worker: one kernel, one OKWS partition, one OS process.

:func:`shard_main` is the child-process entry point.  It boots a full
per-partition OKWS site (netd → demux → workers, plus this shard's slice
of the logical idd/dbproxy and its cross-shard board), then serves
commands from the parent :class:`~repro.cluster.router.Router` over a
``multiprocessing`` pipe until told to stop.

Protocol (request → reply, both plain tuples):

=========================== =============================================
``("peers", boards)``        install RemoteRoutes for peer boards
``("batch", reqs, conc)``    drive the local HTTP workload; reply with
                             per-session outcomes, the simulated clock
                             delta, latencies, and any cross-shard outbox
``("courier", targets)``     run the cross-shard courier over *targets*
``("xsend", docs)``          decode wire/v1 *docs*, re-intern, deliver
``("snapshot", phase)``      drop/label/sanitizer accounting
``("stop",)``                clean shutdown
=========================== =============================================

Every reply is ``("ok", payload)`` or ``("error", message)``; an
unexpected exception is reported rather than silently killing the child,
so the parent never blocks on a dead pipe.

Shards are deterministic in simulated time: a shard's clock advances only
with its own work, so the cluster-level throughput measure (total
connections over the *slowest shard's* simulated busy time — shards run
on independent simulated CPUs) is reproducible regardless of how the
host OS schedules the worker processes.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.interning import global_intern_table
from repro.cluster.wire import WireDecoder, WireEncoder
from repro.kernel.kernel import Kernel
from repro.kernel.ports import RemoteRoute
from repro.okws.sharding import (
    build_shard_site,
    courier_body,
    register_peer_boards,
)
from repro.sim.workload import HttpClient

__all__ = ["ShardSpec", "ShardRuntime", "shard_main"]


class ShardSpec:
    """Everything a shard worker needs to boot (plain data, fork-safe)."""

    def __init__(
        self,
        shard_id: int,
        n_shards: int,
        kernel_config,
        service: str,
        users: Tuple[Tuple[str, str], ...],
        schema: Tuple[str, ...] = (),
        network: str = "classic",
    ) -> None:
        self.shard_id = shard_id
        self.n_shards = n_shards
        self.kernel_config = kernel_config
        self.service = service
        self.users = tuple(users)
        self.schema = tuple(schema)
        self.network = network


class ShardRuntime:
    """The in-process half of a shard: kernel + site + wire codecs.

    Also usable directly (no child process) — the facade's ``n_shards=1``
    path and the unit tests drive it inline.
    """

    def __init__(self, spec: ShardSpec) -> None:
        self.spec = spec
        self.kernel = Kernel(config=spec.kernel_config)
        self.site, self.board_env = build_shard_site(
            self.kernel,
            spec.service,
            spec.users,
            schema=spec.schema,
            network=spec.network,
        )
        self.client = HttpClient(self.site)
        table = global_intern_table()
        self.encoder = WireEncoder(table, src=spec.shard_id)
        self.decoder = WireDecoder(table)
        self._outbox: List[Tuple[int, Dict[str, Any]]] = []
        self.kernel.xshard_out = self._on_xshard_out
        self._drops_mark = 0

    # -- egress ----------------------------------------------------------

    def _on_xshard_out(self, route: RemoteRoute, message: Dict[str, Any]) -> None:
        self._outbox.append((route.shard, message))

    def take_outbox(self) -> List[Dict[str, Any]]:
        """Encode and drain everything queued for other shards."""
        docs = [
            self.encoder.encode(
                dst=dst,
                port=message["port"],
                payload=message["payload"],
                es=message["effective_send"],
                ds=message["ds"],
                v=message["v"],
                dr=message["dr"],
                sender=message["sender_name"],
            )
            for dst, message in self._outbox
        ]
        self._outbox.clear()
        return docs

    # -- commands --------------------------------------------------------

    def install_peers(self, boards: Dict[int, int]) -> None:
        register_peer_boards(self.kernel, self.spec.shard_id, boards)

    def run_batch(
        self, requests: List[Tuple[str, str, str, Any, Optional[Dict[str, Any]]]],
        concurrency: int,
    ) -> Dict[str, Any]:
        snap = self.kernel.clock.snapshot()
        responses = self.client.run_batch(requests, concurrency=concurrency)
        delta = self.kernel.clock.delta(snap)
        outcomes = [
            (
                request[0],
                response.payload.get("status")
                if isinstance(response.payload, dict)
                else None,
                response.body,
                response.latency_cycles,
            )
            for request, response in zip(requests, responses)
        ]
        return {
            "outcomes": outcomes,
            "clock_delta": dict(delta),
            "busy_cycles": sum(delta.values()),
            "outbox": self.take_outbox(),
        }

    def run_courier(self, targets: List[Dict[str, Any]]) -> Dict[str, Any]:
        self.kernel.spawn(
            courier_body, f"courier-{self.spec.shard_id}", env={"targets": targets}
        )
        self.kernel.run()
        return {"outbox": self.take_outbox()}

    def deliver(self, docs: List[Dict[str, Any]]) -> Dict[str, Any]:
        delivered = 0
        for doc in docs:
            message = self.decoder.decode(doc)
            self.kernel.enqueue_external(
                message.port,
                message.payload,
                effective_send=message.es,
                ds=message.ds,
                v=message.v,
                dr=message.dr,
                sender_name=f"{message.sender}@shard{message.src}",
            )
            delivered += 1
        self.kernel.run()
        return {"delivered": delivered, "outbox": self.take_outbox()}

    def mark_drops(self) -> None:
        """Start a drop-accounting phase (e.g. after boot, before load)."""
        self._drops_mark = len(self.kernel.drop_log.records)

    def snapshot(self) -> Dict[str, Any]:
        kernel = self.kernel
        drops: Dict[str, int] = {}
        for reason, _, _ in kernel.drop_log.records[self._drops_mark :]:
            drops[reason] = drops.get(reason, 0) + 1
        sanitizer = kernel.sanitizer
        return {
            "shard": self.spec.shard_id,
            "users": len(self.spec.users),
            "drops": drops,
            "board_log": list(self.board_env.get("log", ())),
            "board_port": self.board_env.get("board_port"),
            "sanitizer_violations": (
                len(sanitizer.violations) if sanitizer is not None else None
            ),
            "clock_now": kernel.clock.now,
            "labelop_cache": (
                kernel.labelop_cache.counters()
                if kernel.labelop_cache is not None
                else None
            ),
        }


def shard_main(conn, spec: ShardSpec) -> None:
    """Child-process entry point: boot, announce the board, serve commands."""
    try:
        runtime = ShardRuntime(spec)
    except BaseException as err:  # noqa: BLE001 - reported to the parent
        conn.send(("error", f"shard {spec.shard_id} failed to boot: {err!r}"))
        conn.close()
        return
    conn.send(("ready", {"board_port": runtime.board_env["board_port"]}))
    while True:
        try:
            command = conn.recv()
        except EOFError:
            break
        verb = command[0]
        try:
            if verb == "peers":
                runtime.install_peers(command[1])
                reply: Any = None
            elif verb == "batch":
                reply = runtime.run_batch(command[1], command[2])
            elif verb == "courier":
                reply = runtime.run_courier(command[1])
            elif verb == "xsend":
                reply = runtime.deliver(command[1])
            elif verb == "mark":
                runtime.mark_drops()
                reply = None
            elif verb == "snapshot":
                reply = runtime.snapshot()
            elif verb == "stop":
                conn.send(("ok", None))
                break
            else:
                conn.send(("error", f"unknown shard command: {verb!r}"))
                continue
            conn.send(("ok", reply))
        except BaseException as err:  # noqa: BLE001 - reported to the parent
            conn.send(("error", f"shard {spec.shard_id} {verb} failed: {err!r}"))
    conn.close()
