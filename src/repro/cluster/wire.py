"""``wire/v1`` — the canonical cross-shard message format.

A cross-shard send leaves its kernel as ``(message, labels, effects)``:
the payload, the effective send label ``ES`` computed on the sending
shard, and the three discretionary labels (``DS``, ``V``, ``DR``) whose
checks and effects run on the receiving shard.  This module turns that
into a plain JSON-able dict and back:

.. code-block:: python

    {"schema": "wire/v1", "seq": 7, "src": 0, "dst": 2,
     "port": 4242, "sender": "courier", "payload": {...},
     "labels": {"es": {"fp": 1234..., "default": 1, "entries": [[h, c], ...]},
                "ds": {"fp": 99...},        # id-only: dst has seen it
                ...}}

Labels are the expensive part, and interning is what makes them cheap:

- every label is named by its **fingerprint** — the stable content hash
  :func:`repro.core.interning.label_fingerprint` — because ``intern_id``
  is minted per-process and means nothing to a peer;
- the **first** send of a label to a given destination carries the full
  body: the default and the explicit ``(handle, level)`` entries, levels
  in the 3-bit wire encoding of Section 5.6
  (:func:`~repro.core.levels.level_to_wire`, ``⋆`` = 4);
- every **subsequent** send of the same label to that destination is
  id-only.  The decoder resolves it against its shard's local
  :class:`~repro.core.interning.InternTable` (the *re-intern* step) and
  keeps a strong reference, so an id-only reference never dangles.

The decoder verifies the fingerprint of every full body it re-interns
(a forged or corrupt id must not poison the receiving table) and raises
:class:`WireError` on unknown schemas, bare unknown ids, or malformed
levels — a shard never guesses about cross-shard input.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Set, Tuple

from repro.core.chunks import ChunkedLabel
from repro.core.interning import InternTable
from repro.core.levels import level_from_wire, level_to_wire

__all__ = ["WIRE_SCHEMA", "WireDecoder", "WireEncoder", "WireError", "XShardMessage"]

#: The canonical schema tag; a receiver rejects anything else.
WIRE_SCHEMA = "wire/v1"


class WireError(ValueError):
    """Malformed, unknown-schema, or unresolvable wire/v1 input."""


@dataclass(frozen=True)
class XShardMessage:
    """One decoded cross-shard send, ready for ``Kernel.enqueue_external``."""

    seq: int
    src: int
    dst: int
    port: int
    sender: str
    payload: Any
    es: ChunkedLabel
    ds: ChunkedLabel
    v: ChunkedLabel
    dr: ChunkedLabel


def _encode_payload(value: Any) -> Any:
    """JSON-able encoding of a message payload (bytes → tagged latin-1)."""
    if isinstance(value, (bytes, bytearray)):
        return {"__wire_bytes__": bytes(value).decode("latin-1")}
    if isinstance(value, dict):
        return {key: _encode_payload(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode_payload(item) for item in value]
    return value


def _decode_payload(value: Any) -> Any:
    if isinstance(value, dict):
        if set(value) == {"__wire_bytes__"}:
            return value["__wire_bytes__"].encode("latin-1")
        return {key: _decode_payload(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_decode_payload(item) for item in value]
    return value


class WireEncoder:
    """Serializes cross-shard sends for one source shard.

    Tracks, per destination, which label fingerprints have already been
    shipped with a full body; repeats go id-only.
    """

    def __init__(self, table: InternTable, src: int) -> None:
        self.table = table
        self.src = src
        self._shipped: Dict[int, Set[int]] = {}
        self._seq = 0

    def _encode_label(self, label: ChunkedLabel, dst: int) -> Dict[str, Any]:
        fp = self.table.fingerprint(label)
        shipped = self._shipped.setdefault(dst, set())
        if fp in shipped:
            return {"fp": fp}
        shipped.add(fp)
        return {
            "fp": fp,
            "default": level_to_wire(label.default),
            "entries": [
                [handle, level_to_wire(level)]
                for handle, level in label.iter_entries()
            ],
        }

    def encode(
        self,
        dst: int,
        port: int,
        payload: Any,
        es: ChunkedLabel,
        ds: ChunkedLabel,
        v: ChunkedLabel,
        dr: ChunkedLabel,
        sender: str = "",
    ) -> Dict[str, Any]:
        """One send → one wire/v1 document."""
        self._seq += 1
        return {
            "schema": WIRE_SCHEMA,
            "seq": self._seq,
            "src": self.src,
            "dst": dst,
            "port": port,
            "sender": sender,
            "payload": _encode_payload(payload),
            "labels": {
                "es": self._encode_label(es, dst),
                "ds": self._encode_label(ds, dst),
                "v": self._encode_label(v, dst),
                "dr": self._encode_label(dr, dst),
            },
        }


class WireDecoder:
    """Decodes wire/v1 documents against one shard's intern table."""

    def __init__(self, table: InternTable) -> None:
        self.table = table
        #: fp → canonical label.  Strong references: the encoder's id-only
        #: optimization assumes everything it shipped stays resolvable.
        self._known: Dict[int, ChunkedLabel] = {}

    def _decode_label(self, doc: Any) -> ChunkedLabel:
        if not isinstance(doc, dict) or "fp" not in doc:
            raise WireError(f"not a wire/v1 label: {doc!r}")
        fp = doc["fp"]
        if "default" not in doc:
            label = self._known.get(fp)
            if label is None:
                try:
                    label = self.table.from_wire(fp)
                except KeyError as err:
                    raise WireError(
                        f"id-only reference to never-shipped label {fp:#x}"
                    ) from err
                self._known[fp] = label
            return label
        try:
            default = level_from_wire(doc["default"])
            entries: Tuple[Tuple[int, int], ...] = tuple(
                (handle, level_from_wire(code)) for handle, code in doc["entries"]
            )
        except (KeyError, TypeError, ValueError) as err:
            raise WireError(f"malformed wire/v1 label body: {doc!r}") from err
        try:
            label = self.table.from_wire(fp, default, entries)
        except ValueError as err:  # fingerprint/content mismatch
            raise WireError(str(err)) from err
        self._known[fp] = label
        return label

    def decode(self, doc: Any) -> XShardMessage:
        """One wire/v1 document → an :class:`XShardMessage`."""
        if not isinstance(doc, dict) or doc.get("schema") != WIRE_SCHEMA:
            raise WireError(f"not a {WIRE_SCHEMA} document: {doc!r}")
        labels = doc.get("labels")
        if not isinstance(labels, dict):
            raise WireError(f"{WIRE_SCHEMA} document without labels: {doc!r}")
        try:
            return XShardMessage(
                seq=int(doc["seq"]),
                src=int(doc["src"]),
                dst=int(doc["dst"]),
                port=int(doc["port"]),
                sender=str(doc.get("sender", "")),
                payload=_decode_payload(doc.get("payload")),
                es=self._decode_label(labels["es"]),
                ds=self._decode_label(labels["ds"]),
                v=self._decode_label(labels["v"]),
                dr=self._decode_label(labels["dr"]),
            )
        except (KeyError, TypeError) as err:
            raise WireError(f"malformed {WIRE_SCHEMA} document: {doc!r}") from err
