"""Apache baseline models (paper Section 9.2).

Both models run the paper's test application — respond with a string of
characters whose length depends on the client's parameters — under a
closed-loop client, on one CPU:

- **Apache + CGI** forks and execs the CGI binary per request, pays pipe
  IPC and process reaping, and provides *some* isolation between services
  (but none between users, and no chroot by default).
- **Mod-Apache** runs the handler in-process: no isolation at all, and the
  fastest possible path (the paper: "can handle Web requests with simple
  library calls").

The simulation is a deterministic single-server closed queue with
multiplicative service jitter; see :class:`~repro.baselines.unix.UnixCosts`
for the calibrated constants.  Wall-clock is virtual (cycles at 2.8 GHz).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List

from repro.baselines.unix import UnixCosts, cycles_to_us
from repro.kernel.clock import CPU_HZ


@dataclass
class ServerRunResult:
    """Outcome of one closed-loop run."""

    latencies_us: List[float]
    total_cycles: float

    @property
    def throughput(self) -> float:
        """Completed connections per second of virtual time."""
        if self.total_cycles == 0:
            return 0.0
        return len(self.latencies_us) / (self.total_cycles / CPU_HZ)


class _ClosedLoopServer:
    """One CPU serving a closed-loop population of client connections.

    Each of *concurrency* clients keeps exactly one request outstanding;
    the CPU serves requests in arrival order.  Latency is queueing plus
    jittered service time plus a small client-side network component that
    does not occupy the server CPU.
    """

    #: Wire/client overhead per request (LAN RTT + client stack), cycles.
    NETWORK_CYCLES = 180_000

    def __init__(self, service_cycles: int, jitter: float, seed: int = 2005):
        self.service_cycles = service_cycles
        self.jitter = jitter
        self.rng = random.Random(seed)

    def _service(self) -> float:
        if self.jitter <= 0:
            return float(self.service_cycles)
        return self.service_cycles * self.rng.lognormvariate(0.0, self.jitter)

    def run(self, n_requests: int, concurrency: int) -> ServerRunResult:
        if n_requests <= 0 or concurrency <= 0:
            raise ValueError("n_requests and concurrency must be positive")
        latencies: List[float] = []
        cpu_free = 0.0
        # Each client slot's next arrival time at the server.
        slots = [0.0] * min(concurrency, n_requests)
        issued = 0
        finish_last = 0.0
        # Closed loop: repeatedly pick the slot with the earliest arrival.
        pending = list(range(len(slots)))
        while issued < n_requests:
            slot = min(range(len(slots)), key=lambda i: slots[i])
            arrival = slots[slot]
            start = max(arrival, cpu_free)
            service = self._service()
            finish = start + service
            cpu_free = finish
            latency = finish - arrival + self.NETWORK_CYCLES
            latencies.append(cycles_to_us(latency))
            finish_last = max(finish_last, finish + self.NETWORK_CYCLES)
            slots[slot] = finish + self.NETWORK_CYCLES  # client thinks ~0
            issued += 1
        return ServerRunResult(latencies_us=latencies, total_cycles=finish_last)


@dataclass
class ApacheCgiModel:
    """Apache 1.3.33 with the test app as a forked CGI binary."""

    costs: UnixCosts = field(default_factory=UnixCosts)
    seed: int = 2005

    def service_cycles(self) -> int:
        c = self.costs
        return (
            c.accept_dispatch
            + c.tcp_per_conn
            + c.server_overhead
            + c.fork_exec
            + c.pipe_roundtrip
            + c.handler
            + c.reap
        )

    def run(self, n_requests: int, concurrency: int = 400) -> ServerRunResult:
        sim = _ClosedLoopServer(self.service_cycles(), self.costs.fork_jitter, self.seed)
        return sim.run(n_requests, concurrency)


@dataclass
class ModApacheModel:
    """Apache with the test app as an in-process module."""

    costs: UnixCosts = field(default_factory=UnixCosts)
    seed: int = 2005

    def service_cycles(self) -> int:
        c = self.costs
        return c.accept_dispatch + c.tcp_per_conn + c.server_overhead + c.handler

    def run(self, n_requests: int, concurrency: int = 16) -> ServerRunResult:
        sim = _ClosedLoopServer(self.service_cycles(), self.costs.inproc_jitter, self.seed)
        return sim.run(n_requests, concurrency)
