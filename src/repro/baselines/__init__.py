"""Comparison systems for Figures 7 and 8: Apache 1.3.33 with CGI and
Apache with an in-process module ("Mod-Apache"), modelled as cost
simulations on a conventional Unix substrate."""

from repro.baselines.apache import ApacheCgiModel, ModApacheModel, ServerRunResult
from repro.baselines.unix import UnixCosts

__all__ = ["ApacheCgiModel", "ModApacheModel", "ServerRunResult", "UnixCosts"]
