"""Cost constants for the conventional-Unix substrate.

The paper's baselines run on Linux 2.6-era hardware (a 2.8 GHz Pentium 4).
These constants model the per-request work of that stack; they are the
only calibrated inputs to the Apache models.  Jitter factors reproduce the
latency *spread* (fork+exec and scheduling make CGI latency long-tailed;
in-process handlers are nearly deterministic — compare the paper's
Figure 8 p90/median ratios: 1.56 for Apache+CGI, 1.016 for Mod-Apache).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernel.clock import CPU_HZ


@dataclass(frozen=True)
class UnixCosts:
    """Cycle costs of Unix primitives on the modelled hardware."""

    #: fork() of a pre-forked Apache child handling a connection slot.
    accept_dispatch: int = 90_000
    #: fork() + execve() of a CGI binary.
    fork_exec: int = 1_230_000
    #: One pipe round trip between Apache and the CGI.
    pipe_roundtrip: int = 180_000
    #: Kernel TCP work per connection (accept/read/write/close).
    tcp_per_conn: int = 260_000
    #: The test application itself (builds a 144-byte response).
    handler: int = 120_000
    #: Apache request parsing and logging-disabled bookkeeping.
    server_overhead: int = 230_000
    #: Process-exit reaping for a finished CGI.
    reap: int = 140_000

    #: Multiplicative latency jitter (lognormal sigma) for forked paths —
    #: scheduler and page-cache variance dominate forked request latency.
    fork_jitter: float = 0.52
    #: Jitter for in-process paths.
    inproc_jitter: float = 0.01


def cycles_to_us(cycles: float) -> float:
    return cycles / CPU_HZ * 1e6
