"""ok-demux: connection demultiplexer and session router (paper §7.2–7.3).

ok-demux accepts each incoming TCP connection from netd, reads enough of
the request to authenticate the user (username/password via idd) and
identify the requested service, then hands the connection off:

- to the worker's *base* port for a first contact (forking a new event
  process), simultaneously contaminating the worker with ``uT 3``,
  granting ``uC ⋆`` and ``uG ⋆``, and raising its receive label with
  ``uT 3`` so database rows and connection reads can reach it;
- directly to the session port ``W[u]`` recorded in its session table for
  a repeat visit (Section 7.3);
- to a *declassifier* worker with ``uT ⋆`` **instead of** the ``uT 3``
  contamination (Section 7.6) — the declassifier can then export u's (and
  only u's) data.

ok-demux trusts the launcher's verification handles, not the workers: a
REGISTER must carry the expected handle at level 0 in its verification
label (Section 7.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.core.handles import Handle
from repro.core.labels import Label
from repro.core.levels import L0, L3, STAR
from repro.ipc import protocol as P
from repro.kernel.syscalls import ChangeLabel, NewPort, Recv, Send, SetPortLabel

#: ok-demux computation per connection (header parse, routing).
DEMUX_CYCLES = 200_000

#: Marginal per-connection cost of a large session table (~95 cycles per
#: entry: an open-hash walk with poor cache locality touching the whole
#: table's cache footprint).  This is what makes the paper's OKWS line
#: grow mildly with cached sessions — by 7,500 sessions kernel IPC
#: "equals the work being done in all of OKWS" only because OKWS itself
#: has grown.
SESSION_TABLE_CYCLES_PER_ENTRY = 95

#: The HTTP response sent on authentication failure.
FORBIDDEN = {"status": 403, "headers": "HTTP/1.0 403 Forbidden", "body": ""}

#: How long to suggest clients wait before retrying a degraded service
#: (cycles of simulated time; the launcher's restart backoff is shorter).
RETRY_AFTER_CYCLES = 500_000_000

#: The HTTP response sent while a service's worker is down or failed.
#: Degradation, not an error page: the site stays up, the client is told
#: when to come back (paper §7.1's "more mature launcher", taken further).
SERVICE_UNAVAILABLE = {
    "status": 503,
    "headers": "HTTP/1.0 503 Service Unavailable",
    "retry_after": RETRY_AFTER_CYCLES,
    "body": "",
}

#: Pending-connection sweep: while connections are in flight we receive
#: with this timeout and time out any that have waited longer than
#: PENDING_DEADLINE (their READ/LOGIN leg was dropped) with a 503.  With
#: no pending connections we block indefinitely, preserving quiescence.
PENDING_SWEEP = 1_400_000_000
PENDING_DEADLINE = 4 * PENDING_SWEEP


@dataclass
class _PendingConn:
    conn: Handle
    conn_id: int
    head: Optional[Dict[str, Any]] = None
    user: Optional[str] = None
    at: int = 0  # ctx.now at ACCEPT_R, for the stale sweep


def demux_body(ctx):
    """The ok-demux process.  Env in: ``launcher_port``, ``netd_port``,
    ``idd_port``."""
    launcher_port = ctx.env["launcher_port"]
    netd_port = ctx.env["netd_port"]
    idd_port = ctx.env["idd_port"]

    port = yield NewPort()
    yield SetPortLabel(port, Label.top())
    yield Send(launcher_port, P.request("ANNOUNCE", who="ok-demux", port=port))

    # service -> (expected verification handle, declassifier?); from launcher.
    expected: Dict[str, Tuple[Handle, bool]] = {}
    # service -> worker base port (REGISTERed, verified).
    workers: Dict[str, Handle] = {}
    # (uid, service) -> event-process session port (Section 7.3).
    sessions: Dict[Tuple[int, str], Handle] = {}
    # user handles cached from idd: user -> (uid, uT, uG).
    identities: Dict[str, Tuple[int, Handle, Handle]] = {}
    # in-flight connections, keyed by correlation tag.
    pending: Dict[int, _PendingConn] = {}
    # services whose worker the launcher gave up on (restart budget blown).
    failed: set = set()

    listening = False
    while True:
        msg = yield Recv(port=port, timeout=PENDING_SWEEP if pending else None)
        if msg is None:
            # Sweep: any connection stuck this long lost a READ/LOGIN leg
            # to a drop; answer 503 so the client can retry, not hang.
            now = ctx.now
            for tag in [t for t, s in pending.items() if now - s.at > PENDING_DEADLINE]:
                state = pending.pop(tag)
                ctx.count("pending_timeouts")
                yield Send(state.conn, P.request(P.WRITE, data=SERVICE_UNAVAILABLE))
                yield Send(state.conn, P.request(P.CONTROL, op="close"))
            continue
        payload = msg.payload
        if not isinstance(payload, dict):
            continue
        mtype = payload.get("type")

        if mtype == "EXPECT":  # launcher: a worker will register
            expected[payload["service"]] = (
                payload["verify_handle"],
                bool(payload.get("declassifier")),
            )
            if not listening:
                yield Send(
                    netd_port,
                    P.request(P.LISTEN, port=80, notify=port),
                )
                listening = True

        elif mtype == P.REGISTER:
            service = payload.get("service")
            entry = expected.get(service)
            if entry is None:
                continue
            verify_handle, _ = entry
            # The worker must prove it speaks for the launcher-minted
            # verification handle (Section 7.1).
            if msg.verify(verify_handle) > L0:
                ctx.log(f"REGISTER for {service!r} with bad verification")
                continue
            if service in workers:
                # A restarted worker: its predecessor's event processes —
                # and their session ports — died with it.
                for key in [k for k in sessions if k[1] == service]:
                    del sessions[key]
            workers[service] = payload["port"]
            failed.discard(service)
            if "reply" in payload:
                # Acknowledge so the worker can retry an unlucky REGISTER
                # instead of leaving the service 503-degraded forever.
                yield Send(payload["reply"], P.reply_to(payload, ok=True))

        elif mtype == "DOWN":  # launcher: worker died, restart under way
            service = payload.get("service")
            ctx.count("worker_down")
            workers.pop(service, None)
            # The dead worker's event processes (and session ports) died
            # with it; routing to them would fork bogus EPs on a corpse.
            for key in [k for k in sessions if k[1] == service]:
                del sessions[key]

        elif mtype == "FAILED":  # launcher: restart budget blown, give up
            service = payload.get("service")
            ctx.count("worker_failed")
            failed.add(service)
            workers.pop(service, None)
            for key in [k for k in sessions if k[1] == service]:
                del sessions[key]

        elif mtype == "SESSION":  # worker EP announces its session port
            sessions[(payload["uid"], payload["service"])] = payload["port"]

        elif mtype == P.ACCEPT_R:  # netd: new connection, uC granted at ⋆
            ctx.compute(DEMUX_CYCLES + SESSION_TABLE_CYCLES_PER_ENTRY * len(sessions))
            ctx.count("connects")
            conn = payload["conn"]
            conn_id = payload["conn_id"]
            pending[conn_id] = _PendingConn(conn=conn, conn_id=conn_id, at=ctx.now)
            # Step 3: read the request head to authenticate.
            yield Send(conn, P.request(P.READ, reply=port, tag=conn_id))

        elif mtype == P.READ_R:
            tag = payload.get("tag")
            state = pending.get(tag)
            if state is None:
                continue
            head = payload.get("data") or {}
            state.head = head
            state.user = head.get("user")
            yield Send(
                idd_port,
                P.request(
                    P.LOGIN,
                    reply=port,
                    tag=tag,
                    user=head.get("user"),
                    password=head.get("password"),
                ),
            )

        elif mtype == P.LOGIN_R:
            tag = payload.get("tag")
            state = pending.pop(tag, None)
            if state is None:
                continue
            if not payload.get("ok"):
                yield Send(state.conn, P.request(P.WRITE, data=FORBIDDEN))
                yield Send(state.conn, P.request(P.CONTROL, op="close"))
                continue
            uid, taint, grant = payload["uid"], payload["taint"], payload["grant"]
            identities[state.user] = (uid, taint, grant)
            service = (state.head or {}).get("service", "")
            entry = expected.get(service)
            wport = workers.get(service)
            if entry is None:
                # Unknown service: a real 404.
                yield Send(state.conn, P.request(P.WRITE, data={"status": 404}))
                yield Send(state.conn, P.request(P.CONTROL, op="close"))
                continue
            if wport is None or service in failed:
                # Known service, worker down (restarting) or failed for
                # good: degrade gracefully with a 503 + retry hint rather
                # than hanging the connection on a dead base port.
                ctx.count("degraded_503")
                yield Send(state.conn, P.request(P.WRITE, data=SERVICE_UNAVAILABLE))
                yield Send(state.conn, P.request(P.CONTROL, op="close"))
                continue
            _, declassifier = entry

            # Accept this user's taint ourselves (worker SESSION messages
            # and netd replies will carry uT 3 from now on).
            yield ChangeLabel(raise_receive={taint: L3})
            # Step 5: netd may now emit u's data, but only over uC.
            yield Send(
                netd_port,
                P.request("ADD_TAINT", conn=state.conn, taint=taint),
                ds=Label({taint: STAR}, L3),
            )

            connect = P.request(
                P.CONNECT,
                conn=state.conn,
                conn_id=state.conn_id,
                uid=uid,
                user=state.user,
                taint=taint,
                grant=grant,
                head=state.head,
            )
            session_port = sessions.get((uid, service))
            if session_port is not None:
                # Step 6, repeat visit: straight to the event process.
                ctx.count("session_reuse")
                yield Send(
                    session_port,
                    connect,
                    ds=Label({state.conn: STAR}, L3),
                    cs=Label({taint: L3}, STAR),
                )
            elif declassifier:
                # Section 7.6: grant uT ⋆ instead of contaminating.
                yield Send(
                    wport,
                    connect,
                    ds=Label(
                        {state.conn: STAR, taint: STAR, grant: STAR}, L3
                    ),
                    dr=Label({taint: L3}, STAR),
                )
            else:
                # Step 6, first contact: fork a new event process with the
                # taint, the grant handle, and a raised receive label.
                ctx.count("session_new")
                yield Send(
                    wport,
                    connect,
                    ds=Label({state.conn: STAR, grant: STAR}, L3),
                    cs=Label({taint: L3}, STAR),
                    dr=Label({taint: L3}, STAR),
                )
            # The connection capability now belongs to the event process;
            # release our copy (Section 9.3).
            yield ChangeLabel(drop_send=(state.conn,))
