"""Sharded OKWS wiring for ``repro.cluster``.

A cluster shard is a complete per-partition OKWS instance: its own netd,
ok-demux, workers, okc — and its slice of the one *logical* idd/dbproxy,
horizontally partitioned by the same user→shard map that routes
connections, so a shard's workers never need an off-shard database call
(a user's row lives exactly where its sessions run).

Two small cluster-only processes ride on top of the ordinary
:func:`repro.okws.launcher.launch` stack:

- the **board**: one per shard, a process owning a wide-open port
  (``pR = {3}``) that collects cross-shard messages.  Its receive label
  is where cross-shard *taint* lands, so the differential suite can
  watch contamination propagate across the wire.
- the **courier**: the cross-shard sender.  For each local user it mints
  a fresh taint handle, then sends that user's session digest to the
  board of the shard owning the *next* user — contaminated at 3 in the
  new compartment, with a ``DR`` raise so the board can accept it
  (decontaminate-receive across the wire).  Odd-numbered users also send
  a doomed variant whose verify label pins ``V = {0}``: Figure 4
  requirement (1) must reject it *at the receiving shard*, which is how
  the tests pin cross-shard drop accounting.

Both the send-side checks (requirements 2 and 3, run on the courier's
shard) and the delivery-side checks (1 and 4, run on the board's shard
against its own interned labels) are the verbatim kernel paths — the
wire only moves ``(message, labels, effects)`` between them.

The user→shard map is :func:`shard_of_user` — a CRC of the user name, so
it is stable across OS processes (Python's ``hash`` is salted) and
independent of shard bring-up order.
"""

from __future__ import annotations

import zlib
from typing import Any, Callable, Dict, List, Sequence, Tuple

from repro.core.labels import Label
from repro.core.levels import L0, L3, STAR
from repro.kernel.kernel import Kernel
from repro.kernel.ports import RemoteRoute
from repro.kernel.syscalls import NewHandle, NewPort, Recv, Send, SetPortLabel
from repro.okws.launcher import OkwsSite, ServiceConfig, launch
from repro.okws.services import echo_handler, notes_handler, session_cache_handler

__all__ = [
    "SERVICES",
    "board_body",
    "build_shard_site",
    "courier_body",
    "courier_targets",
    "partition_users",
    "register_peer_boards",
    "shard_of_user",
]

#: Services a :class:`~repro.cluster.ClusterConfig` may name.  Names keep
#: shard specs picklable and identical across OS processes; handlers are
#: the ordinary OKWS service generators.
SERVICES: Dict[str, Callable] = {
    "echo": echo_handler,
    "cache": session_cache_handler,
    # A write-backed service: the store's shard-invariance tests drive it
    # (with the notes schema in ClusterConfig.schema) so each shard's
    # dbproxy actually logs rows.
    "notes": notes_handler,
}


def shard_of_user(user: str, n_shards: int) -> int:
    """The shard owning *user* — stable across processes and runs."""
    if n_shards <= 1:
        return 0
    return zlib.crc32(user.encode("utf-8")) % n_shards


def partition_users(
    users: Sequence[Tuple[str, str]], n_shards: int
) -> List[List[Tuple[str, str]]]:
    """Split ``(name, password)`` pairs into per-shard partitions."""
    parts: List[List[Tuple[str, str]]] = [[] for _ in range(n_shards)]
    for name, password in users:
        parts[shard_of_user(name, n_shards)].append((name, password))
    return parts


def board_body(ctx):
    """The per-shard cross-shard ingress sink.

    Owns one wide-open port (``SetPortLabel`` to ``{3}`` — unlike
    ``new_port``'s label, the reset is verbatim, so the ``pR(p) ← 0`` pin
    really opens) and logs every delivered payload.  Contamination
    arrives through the ordinary delivery effects on its labels.
    """
    port = yield NewPort()
    yield SetPortLabel(port, Label.top())
    ctx.env["board_port"] = port
    ctx.env["log"] = []
    while True:
        msg = yield Recv(port=port)
        ctx.env["log"].append(msg.payload)


def courier_targets(
    local_users: Sequence[str],
    all_users: Sequence[str],
    boards: Dict[int, int],
    n_shards: int,
) -> List[Dict[str, Any]]:
    """Build the courier's send list for one shard.

    One digest per *local* user, addressed to the board of the shard
    owning the next user in the global ring — so the total message set
    over all shards is a function of the user list alone, never of the
    shard count (what the cross-shard differential suite compares).
    Odd-indexed users add the doomed ``V = {0}`` variant.
    """
    ring = list(all_users)
    index = {name: i for i, name in enumerate(ring)}
    targets: List[Dict[str, Any]] = []
    for name in local_users:
        i = index[name]
        peer = ring[(i + 1) % len(ring)]
        board = boards[shard_of_user(peer, n_shards)]
        targets.append(
            {"port": board, "payload": {"type": "DIGEST", "user": name, "seq": i}}
        )
        if i % 2 == 1:
            targets.append(
                {
                    "port": board,
                    "payload": {"type": "DOOMED", "user": name, "seq": i},
                    "deny": True,
                }
            )
    return targets


def courier_body(ctx):
    """Send each target its message, with real labels on the wire.

    Per message: a fresh handle ``h`` (``PS(h) = ⋆``, so requirements 2/3
    pass locally), contamination ``CS = {h 3}``, and a matching
    ``DR = {h 3}`` raise so the board's ``QR`` (default 2) admits the
    taint.  ``deny`` targets instead carry ``V = {0}``, which requirement
    (1) rejects wherever the board lives.
    """
    for target in ctx.env["targets"]:
        handle = yield NewHandle()
        if target.get("deny"):
            # Doomed by design: the differential suite counts this drop
            # on whichever shard owns the board.  # asblint: ignore[never-pass]
            yield Send(
                target["port"],
                target["payload"],
                cs=Label({handle: L3}, STAR),
                v=Label({}, L0),
                dr=Label({handle: L3}, STAR),
            )
        else:
            yield Send(
                target["port"],
                target["payload"],
                cs=Label({handle: L3}, STAR),
                dr=Label({handle: L3}, STAR),
            )
    ctx.env["done"] = True


def build_shard_site(
    kernel: Kernel,
    service: str,
    users: Sequence[Tuple[str, str]],
    schema: Sequence[str] = (),
    network: str = "classic",
) -> Tuple[OkwsSite, Dict[str, Any]]:
    """Boot one shard: the full OKWS stack for *users* plus its board.

    Returns ``(site, board_env)``; ``board_env["board_port"]`` is the
    handle peers address cross-shard messages to.
    """
    handler = SERVICES.get(service)
    if handler is None:
        raise ValueError(
            f"unknown cluster service {service!r} (expected one of "
            f"{sorted(SERVICES)})"
        )
    site = launch(
        kernel=kernel,
        services=[ServiceConfig(service, handler)],
        users=list(users),
        schema=list(schema),
        network=network,
    )
    board = kernel.spawn(board_body, "xboard", env={})
    kernel.run()
    return site, board.env


def register_peer_boards(
    kernel: Kernel, shard_id: int, boards: Dict[int, int]
) -> None:
    """Install :class:`RemoteRoute` entries for every peer shard's board."""
    for peer, handle in boards.items():
        if peer != shard_id:
            kernel.remote_routes[handle] = RemoteRoute(
                shard=peer, name=f"xboard@{peer}"
            )
