"""The shipped OKWS topology, extracted from a live run — not
hand-transcribed.

:func:`record_okws_topology` boots the full OKWS stack under a
:class:`~repro.analysis.extract.TopologyRecorder`, drives a standard
request mix through the HTTP client (logins for two users, private
notes, sessions, the profile declassifier), and returns the observed
:class:`~repro.analysis.model.Topology` with the default policy battery
embedded.  ``python -m repro check --okws`` and the CI ``check`` job
both call this, so the verified model is whatever the launcher actually
wired.

Handle and event-process naming rides on the OKWS protocol itself
(:class:`OkwsNamer` sniffs EXPECT/GRANT/CONNECT/SESSION payloads), so
the emitted document speaks the paper's vocabulary: ``uT:alice``,
``uG:bob``, ``verify:notes``, ``worker-notes.alice``.

**The policy battery** (Section 7's security argument, minus claims the
paper itself does not make):

- *isolation*: user v's worker event processes never carry ``uT:u``
  (u ≠ v) above 2 — the per-user isolation headline.
- *capability-confinement* for ``uT:u`` ⋆: only the trusted processes
  (idd, ok-demux, netd, ok-dbproxy, okc) and declassifier workers.
- *capability-confinement* for ``admin`` ⋆: launcher and idd only.
- *capability-confinement* for each ``verify:s`` ⋆: launcher and the
  service's own worker.
- *mandatory-declassifier*: ``uT:alice`` above 2 reaches bob's notes
  worker only via declassifier edges (vacuously strong — no path exists
  at all — but it exercises the sub-model machinery in CI).
- *dead-edge* for the arteries that must stay deliverable (wire → netd,
  demux → idd).

Trusted processes (netd, demux, dbproxy) deliberately get *no* QS
isolation assertion: they legitimately hold ``uT ⋆`` (ADD_TAINT,
LOGIN_R) and the extractor's receive-raise folding lets the model
reorder their grant/contaminate handshakes, which would report flows
the deployed ordering prevents.  The paper's claim is about *untrusted*
workers, and that is what the battery pins down.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from repro.core.levels import STAR

from repro.analysis.extract import TopologyRecorder, mark_declassifier_edges
from repro.analysis.model import Topology
from repro.policies.assertions import (
    CapabilityConfinement,
    DeadEdges,
    Isolation,
    MandatoryDeclassifier,
    Policy,
    policy_to_json,
)

#: Processes the paper trusts with per-user ⋆ privilege (Section 7.2).
TRUSTED = ("idd", "ok-demux", "netd", "ok-dbproxy", "okc")


class OkwsNamer:
    """A kernel observer that names handles and tags event processes by
    sniffing the OKWS protocol messages as they are sent."""

    def __init__(self, recorder: TopologyRecorder) -> None:
        self.recorder = recorder

    def on_send(self, task: Any, request: Any) -> None:
        payload = request.payload
        if not isinstance(payload, dict):
            return
        mtype = payload.get("type")
        if mtype == "EXPECT":
            self.recorder.name_handle(
                payload["verify_handle"], f"verify:{payload['service']}"
            )
        elif mtype == "CONNECT" and payload.get("user"):
            user = payload["user"]
            self.recorder.name_handle(payload["taint"], f"uT:{user}")
            self.recorder.name_handle(payload["grant"], f"uG:{user}")
            self.recorder.name_handle(
                payload["conn"], f"conn:{user}:{payload.get('conn_id')}"
            )
        elif mtype == "SESSION":
            self.recorder.name_handle(
                payload["port"],
                f"session:{payload.get('service')}:{payload.get('uid')}",
            )
        elif mtype == "GRANT" and request.ds is not None:
            # The launcher's one GRANT carries the admin handle at ⋆.
            for handle, level in request.ds.entries():
                if level == STAR:
                    self.recorder.name_handle(handle, "admin")

    def on_ep_create(self, ep: Any, entry: Any, qmsg: Any) -> None:
        payload = qmsg.payload
        if isinstance(payload, dict) and payload.get("type") == "CONNECT":
            user = payload.get("user")
            if user:
                self.recorder.tag(ep.key, user=user)


def okws_policies(
    users: Sequence[str], services: Sequence[str], declassifiers: Sequence[str]
) -> List[Policy]:
    """The default battery for a site with the given users and services."""
    policies: List[Policy] = []
    regular = [s for s in services if s not in declassifiers]
    declassifier_workers = tuple(f"worker-{s}*" for s in declassifiers)
    for u in users:
        for v in users:
            if u == v:
                continue
            for service in regular:
                policies.append(
                    Isolation(process=f"worker-{service}.{v}*", handle=f"uT:{u}")
                )
        policies.append(
            CapabilityConfinement(
                handle=f"uT:{u}", allowed=TRUSTED + declassifier_workers
            )
        )
    policies.append(CapabilityConfinement(handle="admin", allowed=("launcher", "idd")))
    for service in services:
        policies.append(
            CapabilityConfinement(
                handle=f"verify:{service}",
                allowed=("launcher", f"worker-{service}*"),
            )
        )
    if len(users) >= 2 and regular:
        policies.append(
            MandatoryDeclassifier(
                handle=f"uT:{users[0]}", sink=f"worker-{regular[0]}.{users[1]}*"
            )
        )
    policies.append(
        DeadEdges(edges=("<wire>->netd_wire_port*", "ok-demux->idd_port*"))
    )
    return policies


def record_okws_topology(
    users: Sequence[Tuple[str, str]] = (("alice", "pw-a"), ("bob", "pw-b")),
    kernel: Optional[Any] = None,
) -> Topology:
    """Boot OKWS, drive the standard request mix, return the observed
    topology with the default policy battery embedded."""
    from repro.kernel.kernel import Kernel
    from repro.okws import ServiceConfig, launch
    from repro.okws.services import (
        notes_handler,
        profile_declassifier_handler,
        profile_handler,
        session_cache_handler,
    )
    from repro.sim.workload import HttpClient

    kernel = kernel if kernel is not None else Kernel()
    recorder = TopologyRecorder(kernel)
    kernel.hooks.append(OkwsNamer(recorder))

    services = [
        ServiceConfig("cache", session_cache_handler),
        ServiceConfig("notes", notes_handler),
        ServiceConfig("profile", profile_handler),
        ServiceConfig("publish", profile_declassifier_handler, declassifier=True),
    ]
    site = launch(
        kernel=kernel,
        services=services,
        users=list(users),
        schema=[
            "CREATE TABLE notes (author TEXT, text TEXT)",
            "CREATE TABLE profiles (owner TEXT, bio TEXT)",
        ],
    )
    client = HttpClient(site)
    names = [user for user, _ in users]
    passwords = dict(users)

    # The standard mix: every service touched by every user, sessions
    # revisited, private data written and read, the declassifier run —
    # enough traffic that each distinct (sender, port, labels) send the
    # code can emit is observed at least once.
    for user in names:
        pw = passwords[user]
        client.request(user, pw, "notes", body=f"{user}-private", args={"op": "add"})
        client.request(user, pw, "notes", args={"op": "list"})
        client.request(user, pw, "cache", body=b"visit-1")
        client.request(user, pw, "cache", body=b"visit-2")
        client.request(user, pw, "profile", body=f"{user} bio", args={"op": "set"})
    client.request(names[0], passwords[names[0]], "publish")
    for user in names:
        client.request(user, passwords[user], "profile", args={"op": "get"})

    recorder.name_handle(site.netd_wire_port, "netd_wire_port")
    recorder.name_handle(site.demux_port, "demux_port")
    recorder.name_handle(site.idd_port, "idd_port")
    recorder.name_handle(site.dbproxy_port, "dbproxy_port")
    recorder.name_handle(site.dbproxy_admin_port, "dbproxy_admin_port")
    cache_port = site.launcher_env.get("cache_port")
    if cache_port is not None:
        recorder.name_handle(cache_port, "cache_port")

    topo = recorder.build(name="okws")
    declassifiers = [s.name for s in services if s.declassifier]
    mark_declassifier_edges(topo, *(f"worker-{s}*" for s in declassifiers))
    topo.policies = [
        policy_to_json(p)
        for p in okws_policies(names, [s.name for s in services], declassifiers)
    ]
    return topo
