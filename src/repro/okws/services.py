"""Site services used by the evaluation and the examples.

- :func:`session_cache_handler` — the Section 9.1 toy service: stores data
  from a user's HTTP request in the session and returns it on the
  subsequent request (~1 KB responses).  Drives the Figure 6 memory
  experiment.
- :func:`echo_handler` — the Section 9.2 microbenchmark service: responds
  with a string of characters whose length depends on the client's
  parameters (144-byte responses in the paper's runs, 133 bytes of which
  are headers).  Drives Figures 7 and 8.
- :func:`notes_handler` — a database-backed private-notes service: write
  notes, read your own notes back; other users' notes are invisible by
  kernel label enforcement, not application filtering.
- :func:`profile_declassifier_handler` — a declassifier (Section 7.6):
  publishes the current user's private profile row as public data that
  any user may subsequently read.
"""

from __future__ import annotations


from repro.okws.worker import WorkerRequest

#: HTTP header block modelled at the paper's size (133 bytes of headers).
HEADER = (
    "HTTP/1.0 200 OK\r\n"
    "Content-Type: text/plain\r\n"
    "Content-Length: 0011\r\n"
    "Server: OKWS/Asbestos\r\n"
    "Connection: close\r\n"
    "Cache-Control: private\r\n"
    "\r\n"
)
assert len(HEADER) == 133, len(HEADER)

#: Session payload size for the memory experiment (~1K responses, §9.1).
SESSION_BYTES = 1024


def session_cache_handler(ectx, request: WorkerRequest):
    """Store this request's data; return what the previous request stored."""
    previous = request.session.get("data", b"")
    incoming = request.body if request.body is not None else b""
    if isinstance(incoming, str):
        incoming = incoming.encode()
    request.session["data"] = incoming[:SESSION_BYTES].ljust(SESSION_BYTES, b".")
    request.session["hits"] = request.session.get("hits", 0) + 1
    return {
        "headers": HEADER,
        "body": previous,
        "hits": request.session["hits"],
        "user": request.user,
    }
    yield  # pragma: no cover — makes this a generator function


def echo_handler(ectx, request: WorkerRequest):
    """Respond with ``length`` filler characters (Section 9.2: total
    response 144 bytes, 133 of which are headers, so 11 body bytes)."""
    length = int(request.args.get("length", 11))
    return {"headers": HEADER, "body": "x" * length}
    yield  # pragma: no cover


def notes_handler(ectx, request: WorkerRequest):
    """A database-backed notes service.

    ``args["op"]``:

    - ``"add"`` — INSERT the body as a private note (rows are stamped with
      the user's ID by ok-dbproxy; the worker never sees the column);
    - ``"list"`` — SELECT all notes; the kernel delivers only this user's
      rows plus public rows.
    """
    op = request.args.get("op", "list")
    if op == "add":
        affected = yield from request.db.write(
            "INSERT INTO notes (author, text) VALUES (?, ?)",
            (request.user, str(request.body)),
        )
        return {"headers": HEADER, "body": f"added {affected}"}
    rows = yield from request.db.select("SELECT author, text FROM notes")
    return {"headers": HEADER, "body": [r["text"] for r in rows], "rows": rows}


def profile_handler(ectx, request: WorkerRequest):
    """Private profiles: set your own, read whatever is visible to you."""
    op = request.args.get("op", "get")
    if op == "set":
        yield from request.db.write(
            "DELETE FROM profiles WHERE owner = ?", (request.user,)
        )
        yield from request.db.write(
            "INSERT INTO profiles (owner, bio) VALUES (?, ?)",
            (request.user, str(request.body)),
        )
        return {"headers": HEADER, "body": "profile saved"}
    rows = yield from request.db.select("SELECT owner, bio FROM profiles")
    return {"headers": HEADER, "body": {r["owner"]: r["bio"] for r in rows}}


def board_handler(ectx, request: WorkerRequest):
    """A bulletin board — one of the paper's motivating application
    classes ("Web commerce and bulletin-board systems", Section 2).

    Posts are *drafts* (private rows, kernel-isolated) until their author
    publishes them through the board's declassifier; reading mixes your
    own drafts with everyone's published posts in one SELECT, because
    that is literally what the kernel delivers.

    ``args["op"]``:

    - ``"draft"`` — store the body as a private draft;
    - ``"read"`` — list everything visible to you (your drafts + all
      published posts);
    - ``"drafts"`` — list only your own unpublished drafts.
    """
    op = request.args.get("op", "read")
    if op == "draft":
        yield from request.db.write(
            "INSERT INTO posts (author, text, published) VALUES (?, ?, 0)",
            (request.user, str(request.body)),
        )
        return {"headers": HEADER, "body": "draft saved"}
    if op == "drafts":
        rows = yield from request.db.select(
            "SELECT author, text FROM posts WHERE published = 0"
        )
        return {"headers": HEADER, "body": [r["text"] for r in rows]}
    rows = yield from request.db.select("SELECT author, text, published FROM posts")
    return {
        "headers": HEADER,
        "body": [
            {"author": r["author"], "text": r["text"], "published": bool(r["published"])}
            for r in rows
        ],
    }


def board_publisher_handler(ectx, request: WorkerRequest):
    """The board's declassifier: publish the current user's drafts.

    Flips the user's draft rows to published and re-writes them as public
    (user-ID-0) rows via a declassified UPDATE — afterwards every user's
    ``read`` sees them.  Holding ``uT ⋆`` for the *current* user only, a
    compromised publisher can overshare that user's drafts but nobody
    else's (Section 7.6's trust bound).
    """
    affected = yield from request.db.write_declassified(
        "UPDATE posts SET published = 1 WHERE author = ?", (request.user,)
    )
    return {"headers": HEADER, "body": f"published {affected} post(s)"}


def profile_declassifier_handler(ectx, request: WorkerRequest):
    """The declassifier worker for profiles (Section 7.6).

    Running with ``uT ⋆`` instead of ``uT 3``, it can read the user's
    private profile without being contaminated and republish it with a
    ``V(uT) = ⋆`` write, which ok-dbproxy stores as a public (user ID 0)
    row.  It holds ⋆ only for the *current* user: a compromised
    declassifier can overshare that user's data but nobody else's.
    """
    rows = yield from request.db.select(
        "SELECT owner, bio FROM profiles WHERE owner = ?", (request.user,)
    )
    if not rows:
        return {"headers": HEADER, "body": "nothing to declassify"}
    bio = rows[-1]["bio"]
    # Flag the row public by rewriting it with declassification privilege
    # (dbproxy zeroes the user ID column).
    yield from request.db.write_declassified(
        "UPDATE profiles SET bio = ? WHERE owner = ?", (bio, request.user)
    )
    return {"headers": HEADER, "body": f"declassified profile of {request.user}"}
