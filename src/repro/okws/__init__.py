"""OKWS on Asbestos — the paper's evaluation application (Section 7).

A multi-process web server in which the operating system, not the
application, enforces per-user isolation:

- :mod:`repro.okws.launcher` — spawns and wires up every component,
  mints verification and admin handles (Section 7.1);
- :mod:`repro.okws.demux` — ok-demux: authenticates connections and routes
  them to workers (Sections 7.2, 7.3);
- :mod:`repro.okws.worker` — the event-process worker framework and its
  labeled database client (Sections 7.2, 7.5);
- :mod:`repro.okws.services` — the services used by the paper's
  evaluation plus a profile service exercising decentralized
  declassification (Sections 7.6, 9.1, 9.2).

Workers are *untrusted*: compromising one cannot violate user isolation.
Declassifier workers are *semi-trusted*: compromise can leak only the
current user's data.  netd, idd, ok-dbproxy and ok-demux are trusted.
"""

from repro.okws.launcher import OkwsSite, ServiceConfig, launch
from repro.okws.worker import WorkerRequest, make_worker_body

__all__ = ["OkwsSite", "ServiceConfig", "launch", "WorkerRequest", "make_worker_body"]
