"""The event-process worker framework (paper Sections 7.2 and 7.3).

A worker is one process per site service.  Its base process registers with
ok-demux (proving its identity with the launcher-minted verification
handle) and enters the event-process realm; from then on every user
session lives in its own event process:

- the first CONNECT for a (user, service) pair creates a fresh EP, which
  allocates its session port ``uW``, registers it with ok-demux's session
  table, and serves the request;
- repeat connections are forwarded by ok-demux straight to ``uW``,
  resuming the same EP with its session state intact;
- before yielding, the EP stores its session data in the ``"session"``
  memory region and ``ep_clean``s everything else, so a cached session
  holds exactly one private page (Section 9.1).

The kernel, not this code, guarantees isolation: the EP's send label
carries ``uT 3`` and its receive label admits only ``uT``, so even a
*compromised* handler cannot move one user's data to another user — the
test suite includes workers that actively try.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional

from repro.core.handles import Handle
from repro.core.labels import Label
from repro.core.levels import L0, L2, L3, STAR
from repro.ipc import protocol as P
from repro.ipc.rpc import Channel
from repro.kernel.memory import PAGE_SIZE
from repro.kernel.syscalls import (
    DissociatePort,
    EpCheckpoint,
    EpClean,
    EpExit,
    EpYield,
    NewPort,
    Recv,
    Send,
)

#: Modelled worker computation per request (parse, format response).
REQUEST_CYCLES = 260_000

#: Pages of scratch heap a request dirties (with the stack, exception
#: stack, message queue and globals pages this gives the paper's eight
#: pages per active session, Section 9.1).
SCRATCH_PAGES = 4

#: Per-attempt deadline on worker RPCs (launcher config, netd reads,
#: dbproxy/okc replies), in cycles of simulated time.  Deliberately
#: generous: the clock is global across all concurrent sessions, so this
#: is a wedge-breaker, not a latency bound.
RPC_TIMEOUT = 2_800_000_000  # ~1 s

#: Extra attempts after the first for each bounded RPC.
RPC_RETRIES = 2

#: Degraded response when the request body never arrived or the database
#: or cache is unreachable: the EP survives, the site stays up.
DEGRADED = {
    "status": 503,
    "headers": "HTTP/1.0 503 Service Unavailable",
    "body": "",
}


@dataclass
class WorkerRequest:
    """Everything a service handler sees for one request."""

    service: str
    uid: int
    user: str
    args: Dict[str, Any]
    body: Any
    session: Dict[str, Any]
    db: "DbClient"
    cache: Optional["CacheClient"] = None
    #: The user's taint/grant handle values (knowing them confers nothing).
    taint: Handle = 0
    grant: Handle = 0
    declassifier: bool = False


def _bounded_call(
    chan: Channel,
    port: Handle,
    payload: Dict[str, Any],
    req: str,
    error: str,
    **labels: Optional[Label],
) -> Generator:
    """Send *payload* (already stamped with ``req``) and await the single
    reply echoing it, retrying on timeout; replies carrying any other
    ``req`` are stale leftovers of abandoned requests and are discarded.
    Raises :class:`DbError` on a server ERROR_R or when every attempt times
    out.  Streaming exchanges (SELECT) inline their own loop instead."""
    for _ in range(1 + RPC_RETRIES):
        yield Send(port, payload, **labels)
        while True:
            msg = yield Recv(port=chan.port, timeout=RPC_TIMEOUT)
            if msg is None:
                break  # this attempt timed out; send again
            reply = msg.payload
            if not isinstance(reply, dict) or reply.get("req") != req:
                continue
            if reply.get("type") == P.ERROR_R:
                raise DbError(reply.get("error", error))
            return reply
    raise DbError(f"{error}: timed out")


class DbClient:
    """The worker-side interface to ok-dbproxy (Section 7.5).

    All methods are sub-generators (use with ``yield from``).  SELECT
    results arrive one contaminated ROW_R at a time; rows belonging to
    other users are silently dropped by the kernel before this client ever
    sees them, so the returned list is exactly what this user may read.

    Every request is bounded by :data:`RPC_TIMEOUT` and retried: an
    unreliable send must never wedge an event process for good.  SELECTs
    use a fresh ``req`` per attempt (late rows from an abandoned attempt
    must not double-count); writes keep one ``req`` across retries so
    ok-dbproxy can deduplicate a replayed write whose first reply was
    dropped rather than execute it twice.
    """

    def __init__(
        self,
        dbproxy_port: Handle,
        chan: Channel,
        uid: int,
        taint: Handle,
        grant: Handle,
    ):
        self._dbproxy = dbproxy_port
        self._chan = chan
        self._uid = uid
        self._taint = taint
        self._grant = grant
        self._seq = 0  # "db-N" req namespace, disjoint from cache/read reqs

    def _grant_reply_port(self) -> Label:
        return Label({self._chan.port: STAR}, L3)

    def _next_req(self) -> str:
        self._seq += 1
        return f"db-{self._seq}"

    def select(self, sql: str, params: tuple = ()) -> Generator:
        """Run a SELECT; returns the list of visible rows."""
        for _ in range(1 + RPC_RETRIES):
            # Fresh req per attempt: rows of an abandoned attempt that
            # straggle in later must not be double-counted.
            req = self._next_req()
            yield Send(
                self._dbproxy,
                P.request(
                    P.QUERY,
                    reply=self._chan.port,
                    sql=sql,
                    params=params,
                    uid=self._uid,
                    req=req,
                ),
                ds=self._grant_reply_port(),
            )
            rows: List[Dict[str, Any]] = []
            while True:
                msg = yield Recv(port=self._chan.port, timeout=RPC_TIMEOUT)
                if msg is None:
                    break  # timed out mid-stream; retry from scratch
                payload = msg.payload
                if not isinstance(payload, dict) or payload.get("req") != req:
                    continue  # stale reply from an abandoned request
                mtype = payload.get("type")
                if mtype == P.ROW_R:
                    rows.append(payload["row"])
                elif mtype == P.DONE_R:
                    return rows
                elif mtype == P.ERROR_R:
                    raise DbError(payload.get("error", "query failed"))
        raise DbError("query timed out")

    def write(self, sql: str, params: tuple = ()) -> Generator:
        """Run an INSERT/UPDATE/DELETE as this user.  The verification
        label {uT 3, uG 0, 2} proves the right to write for the user and
        the absence of foreign taint."""
        verify = Label({self._taint: L3, self._grant: L0}, L2)
        return (yield from self._write(sql, params, verify))

    def write_declassified(self, sql: str, params: tuple = ()) -> Generator:
        """Run a write with declassification privilege: V(uT) = ⋆ proves
        control of the user's compartment, and dbproxy stores/flags the
        rows as public (user ID 0) — Section 7.6."""
        verify = Label({self._taint: STAR}, L2)
        return (yield from self._write(sql, params, verify))

    def _write(self, sql: str, params: tuple, verify: Label) -> Generator:
        # One req across retries: ok-dbproxy deduplicates replayed writes
        # by (reply port, req), so a retry whose predecessor actually
        # executed (only its reply was dropped) does not run twice.
        req = self._next_req()
        reply = yield from _bounded_call(
            self._chan,
            self._dbproxy,
            P.request(
                P.QUERY,
                reply=self._chan.port,
                sql=sql,
                params=params,
                uid=self._uid,
                req=req,
            ),
            req,
            "write failed",
            v=verify,
            ds=self._grant_reply_port(),
        )
        return reply.get("rows_affected", 0)


class DbError(Exception):
    """A rejected or failed database request."""


class CacheClient:
    """The worker-side interface to okc, the shared cache (Section 7.3's
    production extension).  Same labeling discipline as the database:
    PUTs prove identity with the verification label; GET replies arrive
    contaminated with the owner's taint, so foreign entries are
    kernel-invisible."""

    def __init__(
        self,
        cache_port: Handle,
        chan: Channel,
        uid: int,
        taint: Handle,
        grant: Handle,
    ):
        self._cache = cache_port
        self._chan = chan
        self._uid = uid
        self._taint = taint
        self._grant = grant
        self._seq = 0  # "c-N" req namespace, disjoint from db/read reqs

    def _grant_reply_port(self) -> Label:
        return Label({self._chan.port: STAR}, L3)

    def _next_req(self) -> str:
        self._seq += 1
        return f"c-{self._seq}"

    def put(self, key: str, value: Any) -> Generator:
        """Store *value* under this user.  Idempotent, so a retried PUT
        (same ``req``) replaying after a dropped reply is harmless."""
        verify = Label({self._taint: L3, self._grant: L0}, L2)
        req = self._next_req()
        yield from _bounded_call(
            self._chan,
            self._cache,
            P.request(
                "PUT", reply=self._chan.port, key=key, value=value,
                uid=self._uid, req=req,
            ),
            req,
            "cache put failed",
            v=verify,
            ds=self._grant_reply_port(),
        )
        return True

    def put_public(self, key: str, value: Any) -> Generator:
        """Declassify *value* into the public cache (requires uT ⋆ — a
        declassifier worker)."""
        req = self._next_req()
        yield from _bounded_call(
            self._chan,
            self._cache,
            P.request(
                "PUT", reply=self._chan.port, key=key, value=value,
                uid=self._uid, req=req,
            ),
            req,
            "cache put failed",
            v=Label({self._taint: STAR}, L2),
            ds=self._grant_reply_port(),
        )
        return True

    def get(self, key: str, owner: Optional[int] = None) -> Generator:
        """Fetch (value, hit) for *key*; ``owner=0`` reads the public
        namespace, default is this user's own entries."""
        req = self._next_req()
        reply = yield from _bounded_call(
            self._chan,
            self._cache,
            P.request(
                "GET",
                reply=self._chan.port,
                key=key,
                uid=self._uid,
                owner=self._uid if owner is None else owner,
                req=req,
            ),
            req,
            "cache get failed",
            ds=self._grant_reply_port(),
        )
        return reply.get("value"), reply.get("hit", False)


#: A handler is a generator function: (ectx, WorkerRequest) -> response.
Handler = Callable[..., Generator]


def make_worker_body(service: str, handler: Handler, declassifier: bool = False):
    """Build the worker process body for *service*.

    *handler* is a generator function ``handler(ectx, request)`` returning
    the response payload; it may ``yield`` syscalls and ``yield from``
    :class:`DbClient` methods.
    """

    def worker_body(ctx):
        launcher_port = ctx.env["launcher_port"]
        chan = yield from Channel.open()
        # Say hello until the launcher's config arrives: either leg can be
        # dropped.  If it never does, exit — our obituary reaches the
        # launcher's supervision loop and we are restarted fresh.
        cfg = None
        for _ in range(1 + RPC_RETRIES):
            yield Send(
                launcher_port,
                P.request("WORKER_HELLO", reply=chan.port, service=service),
            )
            setup = yield Recv(port=chan.port, timeout=RPC_TIMEOUT)
            if setup is None:
                continue
            if isinstance(setup.payload, dict) and "verify_handle" in setup.payload:
                cfg = setup.payload
                break
        if cfg is None:
            ctx.log(f"worker {service!r} never configured; exiting for restart")
            return
        verify_handle: Handle = cfg["verify_handle"]  # granted at ⋆ via DS
        demux_port: Handle = cfg["demux_port"]
        dbproxy_port: Handle = cfg["dbproxy_port"]
        cache_port: Optional[Handle] = cfg.get("cache_port")

        # Globals region: one page of mutable process-wide state whose
        # modification by a request dirties one COW page per active EP.
        ctx.mem.alloc(PAGE_SIZE, "globals")

        # The base port: demux sends first-contact CONNECTs here, forking a
        # new event process per session.  Identify ourselves with the
        # verification handle at level 0 (Section 7.1) and grant demux the
        # right to send to the base port.  Registration is acknowledged and
        # retried: an unacknowledged REGISTER lost to a drop would leave
        # ok-demux answering 503 for this service forever.
        base_port = yield NewPort()
        registered = False
        for _ in range(1 + RPC_RETRIES):
            yield Send(
                demux_port,
                P.request(
                    P.REGISTER, service=service, port=base_port,
                    reply=chan.port, req="reg",
                ),
                v=Label({verify_handle: L0}, L3),
                ds=Label({base_port: STAR}, L3),
            )
            while not registered:
                ack = yield Recv(port=chan.port, timeout=RPC_TIMEOUT)
                if ack is None:
                    break  # re-send the REGISTER (idempotent: no sessions yet)
                if isinstance(ack.payload, dict) and ack.payload.get("req") == "reg":
                    registered = True
            if registered:
                break
        if not registered:
            ctx.log(f"worker {service!r} REGISTER never acknowledged; exiting")
            return
        # The config channel is done.  Dissociate it: after EpCheckpoint a
        # message to any base-owned port forks a fresh event process, so a
        # straggling duplicate on this port would fork a bogus EP whose
        # crash would kill the whole worker.
        yield DissociatePort(chan.port)

        def event_body(ectx, first_msg):
            payload = first_msg.payload
            if not isinstance(payload, dict) or "conn" not in payload:
                # A stray message (a straggling reply outliving its EP,
                # say) forked a bogus event process: free it quietly
                # instead of crashing — one crash kills the whole worker.
                ectx.count("stray_forks")
                yield EpExit()
                return
            uid = payload["uid"]
            user = payload["user"]
            taint = payload["taint"]
            grant = payload["grant"]
            # The session port uW: ok-demux gets it (and the right to send
            # to it) for its session table; netd is granted per-read below.
            session_port = yield NewPort()
            # The EP's reply port stays closed (pR = {p 0, 3}): netd and
            # dbproxy are granted send capability per request via DS —
            # exactly the per-connection capability churn whose label cost
            # Figure 9 measures.
            ep_chan = Channel((yield NewPort()))
            yield Send(
                demux_port,
                P.request(
                    "SESSION", service=service, uid=uid, port=session_port
                ),
                ds=Label({session_port: STAR}, L3),
            )
            db = DbClient(dbproxy_port, ep_chan, uid, taint, grant)
            cache = (
                CacheClient(cache_port, ep_chan, uid, taint, grant)
                if cache_port is not None
                else None
            )
            if not ectx.mem.has("session"):
                ectx.mem.store("session", {})

            msg = first_msg
            read_seq = 0
            while True:
                if not isinstance(msg.payload, dict) or "conn" not in msg.payload:
                    # Resumed by a stray late reply, not a CONNECT: wait
                    # for a real one.
                    ectx.count("stray_resumes")
                    msg = yield EpYield()
                    continue
                conn = msg.payload["conn"]
                head = msg.payload.get("head", {})
                # Read the request body from netd over uC, granting netd
                # the right to reply on our channel (step 8 of Figure 5).
                # Bounded and retried: a dropped READ (or READ_R) must not
                # wedge the session forever.  Fresh req per attempt so a
                # straggler from an abandoned read is recognised as stale.
                body_msg = None
                for _ in range(1 + RPC_RETRIES):
                    read_seq += 1
                    read_req = f"read-{read_seq}"
                    yield Send(
                        conn,
                        P.request(P.READ, reply=ep_chan.port, req=read_req),
                        ds=Label({ep_chan.port: STAR}, L3),
                    )
                    while body_msg is None:
                        reply = yield Recv(port=ep_chan.port, timeout=RPC_TIMEOUT)
                        if reply is None:
                            break  # timed out; re-issue the READ
                        rp = reply.payload
                        if not isinstance(rp, dict) or rp.get("req") != read_req:
                            continue  # stale db/cache/read straggler
                        body_msg = reply
                    if body_msg is not None:
                        break
                if body_msg is None:
                    # The connection is unreachable; degrade and move on.
                    ectx.count("read_abandoned")
                    yield Send(conn, P.request(P.WRITE, data=dict(DEGRADED)))
                    if not ectx.env.get("okws_no_clean"):
                        yield EpClean(keep=("session",))
                    msg = yield EpYield()
                    continue
                body = body_msg.payload.get("data")

                # Scratch memory dirtied by request processing.
                if not ectx.mem.has("heap"):
                    ectx.mem.alloc(SCRATCH_PAGES * PAGE_SIZE, "heap")
                ectx.mem.write(ectx.mem.region("heap").start, b"scratch")
                globals_region = ectx.mem.region("globals")
                ectx.mem.write(globals_region.start, b"g")

                session: Dict[str, Any] = ectx.mem.load("session")
                request = WorkerRequest(
                    service=service,
                    uid=uid,
                    user=user,
                    args=head.get("args", {}),
                    body=body,
                    session=session,
                    db=db,
                    cache=cache,
                    taint=taint,
                    grant=grant,
                    declassifier=declassifier,
                )
                ectx.compute(REQUEST_CYCLES)
                ectx.count("requests")
                try:
                    response = yield from handler(ectx, request)
                except DbError as err:
                    # Database/cache unreachable: answer degraded instead
                    # of crashing the EP (and with it the whole worker).
                    ectx.count("degraded")
                    response = dict(DEGRADED, error=str(err))
                ectx.mem.store("session", session)

                yield Send(conn, P.request(P.WRITE, data=response))
                # Keep only the session page across the yield (Section 7.3).
                if not ectx.env.get("okws_no_clean"):
                    yield EpClean(keep=("session",))
                msg = yield EpYield()

        yield EpCheckpoint(event_body)

    worker_body.__name__ = f"worker_{service}"
    return worker_body
