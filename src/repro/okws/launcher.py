"""The OKWS launcher (paper Section 7.1) and the experiment-facing site
handle.

The launcher process spawns ok-demux, the site's workers, idd and
ok-dbproxy (netd is spawned by the harness since it predates OKWS on a
real system).  It mints one *verification handle* per worker so ok-demux
can be certain which process it is talking to without trusting workers to
identify themselves, and an *admin handle* gating ok-dbproxy's raw SQL
interface, which it grants only to idd and itself.

:func:`launch` wraps the whole construction and returns an
:class:`OkwsSite`: the harness-side object experiments use to look up
ports, the wire, and the kernel.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.handles import Handle
from repro.core.labels import Label
from repro.core.levels import L3, STAR
from repro.ipc import protocol as P
from repro.ipc.rpc import Channel
from repro.kernel.clock import NETWORK, OKDB, OKWS
from repro.kernel.kernel import Kernel
from repro.kernel.errors import ResourceExhausted
from repro.kernel.syscalls import (
    Deadline,
    NewHandle,
    NewPort,
    Recv,
    Send,
    SetPortLabel,
    Spawn,
)
from repro.okws.demux import demux_body
from repro.okws.worker import make_worker_body
from repro.servers.cache import cache_body
from repro.servers.dbproxy import dbproxy_body
from repro.servers.idd import idd_body
from repro.servers.netd import Wire, netd_body


# -- supervision policy (all times in cycles of simulated 2.8 GHz time) ----

#: How long the launcher waits for a spawned worker's WORKER_HELLO before
#: treating the start as failed (generous: covers a full scheduler round
#: under heavy load).
WORKER_HELLO_TIMEOUT = 2_800_000_000  # 1 s

#: Base restart backoff; doubles per restart of the same service.
RESTART_BACKOFF_BASE = 50_000_000  # ~18 ms

#: Maximum restarts per service per boot — after this the service is
#: marked failed and ok-demux degrades it permanently (503).
RESTART_BUDGET = 5

#: Restart-storm detection: more than STORM_THRESHOLD restarts of one
#: service inside STORM_WINDOW marks it failed immediately (a worker that
#: crashes on arrival would otherwise burn the whole budget in a hot loop).
STORM_WINDOW = 1_000_000_000  # ~0.36 s
STORM_THRESHOLD = 3


@dataclass
class ServiceConfig:
    """One site service: a name, a handler generator function, and whether
    its worker runs as a declassifier (Section 7.6)."""

    name: str
    handler: Callable
    declassifier: bool = False
    #: Disable the ep_clean before yield (the worst-case "active session"
    #: variant of the Figure 6 memory experiment, Section 9.1).
    no_clean: bool = False


@dataclass
class OkwsSite:
    """Harness-side handle to a running OKWS instance."""

    kernel: Kernel
    wire: Wire
    netd_wire_port: Handle
    demux_port: Handle
    idd_port: Handle
    dbproxy_port: Handle
    dbproxy_admin_port: Handle
    services: Tuple[str, ...]
    launcher_env: Dict[str, Any]


def launcher_body(ctx):
    """The launcher process.  Env in: ``netd_port``, ``services`` (list of
    ServiceConfig), ``users`` (list of (name, password)), ``schema`` (list
    of CREATE TABLE statements for site tables)."""
    netd_port = ctx.env["netd_port"]
    services: Sequence[ServiceConfig] = ctx.env["services"]
    users: Sequence[Tuple[str, str]] = ctx.env.get("users", ())
    schema: Sequence[str] = ctx.env.get("schema", ())

    port = yield NewPort()
    yield SetPortLabel(port, Label.top())
    chan = yield from Channel.open()

    # --- ok-dbproxy, gated by a fresh admin handle -------------------------------
    admin = yield NewHandle()
    yield Spawn(
        dbproxy_body,
        name="ok-dbproxy",
        component=OKDB,
        env={"admin_handle": admin, "announce_port": port},
        notify_exit=port,
    )
    announce = yield Recv(port=port)  # dbproxy's ANNOUNCE
    db_ports = announce.payload["ports"]
    dbproxy_port = db_ports["dbproxy_port"]
    dbproxy_admin = db_ports["dbproxy_admin_port"]
    dbproxy_grant = db_ports["dbproxy_grant_port"]

    def seed_site():
        """Seed the password table and site schema through the admin
        interface.  Skipped when dbproxy announced recovered state — a
        store-backed restart must not re-create tables it just replayed."""
        yield from chan.call(
            dbproxy_admin,
            P.request(
                P.QUERY,
                sql="CREATE TABLE users (uid INTEGER, name TEXT, password TEXT)",
            ),
        )
        for statement in schema:
            yield from chan.call(dbproxy_admin, P.request(P.QUERY, sql=statement))
        rows = [
            {"uid": uid, "name": name, "password": password}
            for uid, (name, password) in enumerate(users, start=1)
        ]
        yield from chan.call(
            dbproxy_admin, P.request("BULK_INSERT", table="users", rows=rows)
        )

    if not announce.payload.get("recovered"):
        yield from seed_site()

    # --- okc, the shared worker cache (Section 7.3) --------------------------------
    yield Spawn(
        cache_body,
        name="okc",
        component=OKWS,
        env={"announce_port": port},
    )
    announce = yield Recv(port=port)
    cache_ports = announce.payload["ports"]
    cache_port = cache_ports["cache_port"]
    cache_grant = cache_ports["cache_grant_port"]

    # --- idd, granted the admin handle --------------------------------------------
    yield Spawn(
        idd_body,
        name="idd",
        component=OKWS,
        env={
            "dbproxy_admin_port": dbproxy_admin,
            "dbproxy_grant_port": dbproxy_grant,
            "grant_ports": [dbproxy_grant, cache_grant],
            "announce_port": port,
        },
    )
    announce = yield Recv(port=port)
    idd_port = announce.payload["ports"]["idd_port"]
    # Grant idd the right to use the raw SQL interface.  The payload is
    # ignored by idd; the DS label on delivery is the grant.
    yield Send(idd_port, P.request("GRANT"), ds=Label({admin: STAR}, L3))
    # Tell dbproxy where to affirm bindings.
    yield Send(dbproxy_grant, P.request("SET_IDD", port=idd_port))

    # --- ok-demux --------------------------------------------------------------------
    yield Spawn(
        demux_body,
        name="ok-demux",
        component=OKWS,
        env={"launcher_port": port, "netd_port": netd_port, "idd_port": idd_port},
    )
    announce = yield Recv(port=port)
    demux_port = announce.payload["port"]

    # --- workers, each with its own verification handle -------------------------------
    configs: Dict[str, ServiceConfig] = {config.name: config for config in services}
    # Obituaries that arrived while we were pumping for a WORKER_HELLO;
    # the supervision loop drains these before blocking again.
    pending_exits: deque = deque()

    def start_worker(config: ServiceConfig):
        """Mint a verification handle, tell ok-demux to expect it, spawn
        the worker supervised (we get its obituary), configure it once it
        says hello.  Returns True on a configured start, False when the
        spawn failed or the worker never said hello in time (its obituary,
        if any, reaches the supervision loop)."""
        verify_handle = yield NewHandle()
        yield Send(
            demux_port,
            P.request(
                "EXPECT",
                service=config.name,
                verify_handle=verify_handle,
                declassifier=config.declassifier,
            ),
        )
        try:
            yield Spawn(
                make_worker_body(config.name, config.handler, config.declassifier),
                name=f"worker-{config.name}",
                component=OKWS,
                env={"launcher_port": port, "okws_no_clean": config.no_clean},
                notify_exit=port,
            )
        except ResourceExhausted:
            ctx.log(f"spawn of worker-{config.name} failed")
            return False
        # Pump for this worker's hello; any message that is not it (an
        # obituary, a stale hello from a predecessor) must not be eaten
        # blindly — under faults message order is not what boot-time code
        # gets to assume.
        while True:
            hello = yield Recv(port=port, timeout=WORKER_HELLO_TIMEOUT)
            if hello is None:
                ctx.log(f"worker-{config.name} never said hello")
                return False
            payload = hello.payload
            if not isinstance(payload, dict):
                continue
            if payload.get("type") == "EXITED":
                pending_exits.append(payload)
                continue
            if (
                payload.get("type") == "WORKER_HELLO"
                and payload.get("service") == config.name
            ):
                break
        # Hand the worker its configuration and the verification handle
        # itself, granted at ⋆ (it is the worker's identity compartment).
        yield Send(
            hello.payload["reply"],
            {
                "verify_handle": verify_handle,
                "demux_port": demux_port,
                "dbproxy_port": dbproxy_port,
                "cache_port": cache_port,
            },
            ds=Label({verify_handle: STAR}, L3),
        )
        return True

    for config in services:
        yield from start_worker(config)

    # Publish everything for the harness.
    ctx.env["demux_port"] = demux_port
    ctx.env["idd_port"] = idd_port
    ctx.env["dbproxy_port"] = dbproxy_port
    ctx.env["dbproxy_admin_port"] = dbproxy_admin
    ctx.env["cache_port"] = cache_port
    #: Timestamped restart record: {"service", "at" (cycles), "crashed"}.
    ctx.env["restarts"] = []
    ctx.env["failed_services"] = []
    #: Store-backed dbproxy recoveries performed by supervision.
    ctx.env["recoveries"] = 0
    ctx.env["ready"] = True

    # --- supervision (Section 7.1: "a more mature version of launcher
    # --- could restart dead processes") -----------------------------------------------
    # Per-service restart accounting: total count (budget), recent
    # timestamps (storm detection), failed flag (degraded for good).
    # ok-dbproxy is supervised under the same policy as the workers.
    restart_state: Dict[str, Dict[str, Any]] = {
        name: {"count": 0, "recent": [], "failed": False} for name in configs
    }
    restart_state["ok-dbproxy"] = {"count": 0, "recent": [], "failed": False}
    ctx.env["restart_state"] = restart_state

    def mark_failed(service: str) -> Any:
        restart_state[service]["failed"] = True
        ctx.env["failed_services"].append(service)
        ctx.log(f"service {service!r} marked failed; demux will degrade it")
        yield Send(demux_port, P.request("FAILED", service=service))

    def fail_dbproxy() -> Any:
        """dbproxy is unrestartable: without the database gateway every
        DB-backed service is dead, so degrade them all."""
        restart_state["ok-dbproxy"]["failed"] = True
        ctx.env["failed_services"].append("ok-dbproxy")
        ctx.log("ok-dbproxy marked failed; degrading all services")
        for service in configs:
            if not restart_state[service]["failed"]:
                yield from mark_failed(service)

    def restart_dbproxy() -> Any:
        """Respawn ok-dbproxy and restore worker-visible state.

        With a configured store the replacement recovers its tables from
        the write-ahead log before announcing (and we skip re-seeding);
        without one it comes back empty and is re-seeded — the no-store
        baseline loses user rows, which is exactly the gap the store
        closes.  Either way idd re-grants the user bindings (REBIND) and
        every worker is replaced so it learns the new ports.  Returns
        True on a configured restart."""
        nonlocal dbproxy_port, dbproxy_admin, dbproxy_grant
        try:
            yield Spawn(
                dbproxy_body,
                name="ok-dbproxy",
                component=OKDB,
                env={"admin_handle": admin, "announce_port": port},
                notify_exit=port,
            )
        except ResourceExhausted:
            ctx.log("respawn of ok-dbproxy failed")
            return False
        # Pump for the replacement's ANNOUNCE; obituaries and stale
        # worker hellos may interleave, exactly as in start_worker.
        while True:
            msg = yield Recv(port=port, timeout=WORKER_HELLO_TIMEOUT)
            if msg is None:
                ctx.log("restarted ok-dbproxy never announced")
                return False
            payload = msg.payload
            if not isinstance(payload, dict):
                continue
            if payload.get("type") == "EXITED":
                pending_exits.append(payload)
                continue
            if payload.get("type") == "ANNOUNCE" and payload.get("who") == "ok-dbproxy":
                break
        ports_out = payload["ports"]
        dbproxy_port = ports_out["dbproxy_port"]
        dbproxy_admin = ports_out["dbproxy_admin_port"]
        dbproxy_grant = ports_out["dbproxy_grant_port"]
        if payload.get("recovered"):
            ctx.env["recoveries"] += 1
        else:
            yield from seed_site()
        # idd still holds every user's handles at ⋆ (and the admin grant
        # from boot): it re-grants the bindings at the new grant port and
        # re-learns the new admin port for password checks.
        yield Send(
            idd_port,
            P.request(
                "REBIND",
                dbproxy_admin_port=dbproxy_admin,
                grant_port=dbproxy_grant,
            ),
        )
        yield Send(dbproxy_grant, P.request("SET_IDD", port=idd_port))
        ctx.env["dbproxy_port"] = dbproxy_port
        ctx.env["dbproxy_admin_port"] = dbproxy_admin
        # Replace every live worker: the old ones hold the dead proxy's
        # ports (their writes 503-degrade) and retire when ok-demux's
        # EXPECT swaps in their successors.
        for config in services:
            if not restart_state[config.name]["failed"]:
                yield from start_worker(config)
        return True

    while True:
        if pending_exits:
            payload = pending_exits.popleft()
        else:
            msg = yield Recv(port=port)
            payload = msg.payload
        if not isinstance(payload, dict) or payload.get("type") != "EXITED":
            continue
        name = payload.get("name", "")
        if name == "ok-dbproxy":
            state = restart_state["ok-dbproxy"]
            if state["failed"]:
                continue
            now = ctx.now
            ctx.env["restarts"].append(
                {
                    "service": "ok-dbproxy",
                    "at": now,
                    "crashed": bool(payload.get("crashed")),
                }
            )
            recent = [t for t in state["recent"] if now - t < STORM_WINDOW]
            recent.append(now)
            state["recent"] = recent
            if len(recent) > STORM_THRESHOLD:
                ctx.log(f"restart storm for ok-dbproxy ({len(recent)} in window)")
                yield from fail_dbproxy()
                continue
            restarted = False
            while not restarted:
                if state["count"] >= RESTART_BUDGET:
                    yield from fail_dbproxy()
                    break
                state["count"] += 1
                yield Deadline(RESTART_BACKOFF_BASE * (2 ** (state["count"] - 1)))
                restarted = yield from restart_dbproxy()
            continue
        if not name.startswith("worker-"):
            continue
        service = name[len("worker-"):]
        config = configs.get(service)
        if config is None:
            continue
        state = restart_state[service]
        if state["failed"]:
            continue
        now = ctx.now
        ctx.env["restarts"].append(
            {"service": service, "at": now, "crashed": bool(payload.get("crashed"))}
        )
        # While the replacement comes up, ok-demux answers 503 instead of
        # routing connections at a dead base port.
        yield Send(demux_port, P.request("DOWN", service=service))
        recent: List[int] = [t for t in state["recent"] if now - t < STORM_WINDOW]
        recent.append(now)
        state["recent"] = recent
        if len(recent) > STORM_THRESHOLD:
            ctx.log(f"restart storm for {service!r} ({len(recent)} in window)")
            yield from mark_failed(service)
            continue
        # A fresh verification handle each time: the dead worker's identity
        # (and any leak of it) dies with it; ok-demux's EXPECT is replaced.
        # Exponential backoff between attempts, enforced on simulated time.
        started = False
        while not started:
            if state["count"] >= RESTART_BUDGET:
                yield from mark_failed(service)
                break
            state["count"] += 1
            yield Deadline(RESTART_BACKOFF_BASE * (2 ** (state["count"] - 1)))
            started = yield from start_worker(config)


def launch(
    kernel: Optional[Kernel] = None,
    services: Sequence[ServiceConfig] = (),
    users: Sequence[Tuple[str, str]] = (),
    schema: Sequence[str] = (),
    network: str = "classic",
) -> OkwsSite:
    """Boot the network stack and a full OKWS instance.

    ``network`` selects the stack: ``"classic"`` is the paper's monolithic
    netd (Section 7.7); ``"decomposed"`` is the Section 7.8 future-work
    design — a trusted front end over an untrusted event-process back end
    (see :mod:`repro.servers.netd2`).  Both speak the same protocols.
    """
    kernel = kernel if kernel is not None else Kernel()
    wire = Wire()
    if network == "classic":
        netd = kernel.spawn(netd_body, "netd", component=NETWORK, env={"wire": wire})
    elif network == "decomposed":
        from repro.servers.netd2 import netd2_front_body

        netd = kernel.spawn(
            netd2_front_body, "netd-front", component=NETWORK, env={"wire": wire}
        )
    else:
        raise ValueError(f"unknown network stack: {network!r}")
    kernel.run()
    netd_port = netd.env["netd_port"]

    launcher = kernel.spawn(
        launcher_body,
        "launcher",
        component=OKWS,
        env={
            "netd_port": netd_port,
            "services": list(services),
            "users": list(users),
            "schema": list(schema),
        },
    )
    kernel.run()
    if not launcher.env.get("ready"):
        raise RuntimeError("OKWS launch did not complete; check kernel drop log")
    return OkwsSite(
        kernel=kernel,
        wire=wire,
        netd_wire_port=netd.env["netd_wire_port"],
        demux_port=launcher.env["demux_port"],
        idd_port=launcher.env["idd_port"],
        dbproxy_port=launcher.env["dbproxy_port"],
        dbproxy_admin_port=launcher.env["dbproxy_admin_port"],
        services=tuple(s.name for s in services),
        launcher_env=launcher.env,
    )
