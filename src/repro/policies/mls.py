"""Hierarchical multi-level security emulated with compartments.

Section 5.2: to support unclassified, secret and top-secret, the security
administrator uses two compartments — one for secret (``s``), one for
top-secret (``t``).  A process's receive label reflects its clearance:

===========  ==================  ==================
level        receive label       send label (seen)
===========  ==================  ==================
unclassified ``{2}``             ``{1}``
secret       ``{s3, 2}``         ``{s3, 1}``
top-secret   ``{s3, t3, 2}``     ``{s3, t3, 1}``
===========  ==================  ==================

"Odd" labels such as ``{t3, 1}`` have no direct level mapping but still
preserve information flow: such a process can only send to top-secret
clearance.  The policy generalises to any totally ordered chain of
sensitivity classifications.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.handles import Handle, HandleAllocator
from repro.core.labels import Label
from repro.core.levels import L1, L2, L3, STAR


@dataclass
class MlsPolicy:
    """A chain of sensitivity classifications over fresh compartments.

    ``levels[0]`` is the least sensitive (no compartment needed); each
    higher level adds one compartment handle.
    """

    levels: Tuple[str, ...]
    compartments: Dict[str, Handle] = field(default_factory=dict)

    @classmethod
    def create(
        cls, levels: Sequence[str], allocator: Optional[HandleAllocator] = None
    ) -> "MlsPolicy":
        """Mint the policy's compartments from *allocator* (harness-side;
        inside a simulated program use new_handle and ``from_handles``)."""
        allocator = allocator or HandleAllocator()
        policy = cls(levels=tuple(levels))
        for name in levels[1:]:
            policy.compartments[name] = allocator.fresh()
        return policy

    @classmethod
    def from_handles(
        cls, levels: Sequence[str], handles: Sequence[Handle]
    ) -> "MlsPolicy":
        if len(handles) != len(levels) - 1:
            raise ValueError("need one handle per level above the lowest")
        policy = cls(levels=tuple(levels))
        for name, handle in zip(levels[1:], handles):
            policy.compartments[name] = handle
        return policy

    def _rank(self, level: str) -> int:
        try:
            return self.levels.index(level)
        except ValueError:
            raise ValueError(f"unknown sensitivity level: {level!r}") from None

    def _handles_upto(self, level: str) -> List[Handle]:
        rank = self._rank(level)
        return [self.compartments[name] for name in self.levels[1 : rank + 1]]

    def clearance(self, level: str) -> Label:
        """The receive label for a subject cleared to *level*."""
        return Label({h: L3 for h in self._handles_upto(level)}, L2)

    def classification(self, level: str) -> Label:
        """The send label of a subject that has observed *level* data."""
        return Label({h: L3 for h in self._handles_upto(level)}, L1)

    def contamination(self, level: str) -> Label:
        """The CS label a server supplies when returning *level* data."""
        return Label({h: L3 for h in self._handles_upto(level)}, STAR)

    def downgrader(self) -> Label:
        """The send label of the (maximally trusted) downgrader, holding
        ⋆ for every compartment."""
        return Label({h: STAR for h in self.compartments.values()}, L1)

    def can_flow(self, from_level: str, to_level: str) -> bool:
        """The lattice check: data at *from_level* may reach a subject
        cleared to *to_level* iff classification ⊑ clearance."""
        return self.classification(from_level) <= self.clearance(to_level)
