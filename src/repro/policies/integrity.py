"""Integrity idioms: grant handles and verification labels (paper §5.4).

*Speaking for* user u is a positive right represented by u's grant handle
``uG`` at level 0 or below in the send label.  A writer proves the right
with a verification label ``V`` such that ``V(uG) ≤ 0``; since delivery
requires ``ES ⊑ V``, the verification label is an upper bound on the
sender's (effective) send label — credentials are named explicitly,
avoiding the confused-deputy problem of shipping all credentials with
every message.

Mandatory integrity comes from granting ``uG`` at exactly 0 rather than
``⋆``: 0 is *below* the default send level 1, so the moment the holder
receives a message from any process that does not also speak for u, the
contamination rule raises ``uG`` to 1 and the privilege is gone — the
holder cannot relay low-integrity data into u's files (Section 5.4).
"""

from __future__ import annotations

from typing import Optional

from repro.core.handles import Handle
from repro.core.labels import Label
from repro.core.levels import L0, L1, L2, L3, STAR


def speaks_for(send_label: Label, grant: Handle) -> bool:
    """Does a process with *send_label* currently speak for the owner of
    *grant*?  (``PS(uG) ≤ 0``.)"""
    return send_label(grant) <= L0


def write_verify_label(grant: Handle, taint: Optional[Handle] = None) -> Label:
    """The V label for writing as the user: ``{uG 0, 3}``, tightened to
    ``{uT 3, uG 0, 2}`` when the object also has a taint compartment (the
    bound ok-dbproxy requires, §7.5: it additionally proves the sender
    carries no *other* user's contamination)."""
    if taint is None:
        return Label({grant: L0}, L3)
    return Label({grant: L0, taint: L3}, L2)


def grant_speaks_for(grant: Handle, mandatory: bool = False) -> Label:
    """The DS label distributing the right to speak for a user.

    ``mandatory=True`` grants at level 0: usable, but destroyed by the
    first message from a non-speaker (mandatory integrity).  Otherwise the
    grant is ``⋆``: durable, re-delegable, declassification-capable.
    """
    return Label({grant: L0 if mandatory else STAR}, L3)


def network_exclusion_verify(system: Handle) -> Label:
    """Section 5.4's system-file example: the file server demands
    ``V(s) ≤ 1`` for system-file writes; giving the network daemon send
    level ``{s 2, 1}`` then transitively keeps network-derived data out of
    system files.  This is the required V."""
    return Label({system: L1}, L3)


def network_daemon_send(system: Handle) -> Label:
    """The network daemon's send label under that policy: ``{s 2, 1}``."""
    return Label({system: L2}, L1)
