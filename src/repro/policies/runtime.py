"""Runtime policy monitor: the asbcheck assertions, checked on a live kernel.

asbcheck (:mod:`repro.analysis.check`) proves the policy battery of
:mod:`repro.policies.assertions` over the *model*'s label state space;
this module checks the same four kinds against a *running* kernel, one
label state at a time, so the schedule-space explorer
(:mod:`repro.analysis.sched`) can evaluate every interleaving it drives
the kernel through:

- :class:`~repro.policies.assertions.Isolation` — checked on each
  process's live send label after every mutation (delivery effects,
  ``change_label``) and on the effective send label of every delivery
  the process emits;
- :class:`~repro.policies.assertions.CapabilityConfinement` — ⋆ holdings
  in live send labels;
- :class:`~repro.policies.assertions.MandatoryDeclassifier` — each
  delivery that did not travel a declassifier edge, against the message's
  effective send label at the sink;
- :class:`~repro.policies.assertions.DeadEdges` — a liveness property of
  the *whole exploration*, not one run: the explorer unions delivered
  edge names across every schedule and asks :meth:`RuntimeMonitor.
  dead_edge_breaches` at the end.

The monitor works on symbolic handle names (the topology's vocabulary)
mapped to the concrete handles installed in the kernel, and deduplicates
breaches by (policy, subject), so a violating schedule reports each
distinct breach once no matter how often the bad state recurs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.handles import Handle
from repro.core.levels import STAR, level_name

from repro.policies.assertions import (
    CapabilityConfinement,
    DeadEdges,
    Isolation,
    MandatoryDeclassifier,
    Policy,
    matches,
)

#: A live label: anything mapping handle → level when called (both
#: :class:`~repro.core.chunks.ChunkedLabel` and plain ``Label`` qualify).
LiveLabel = Callable[[Handle], int]


@dataclass(frozen=True)
class PolicyBreach:
    """One observed policy violation in one schedule."""

    kind: str              # policy kind ("isolation", ...)
    policy: str            # policy.describe()
    process: str           # the process whose state breached (or sink)
    handle: str            # symbolic handle name ("" for dead-edge)
    edge: str              # delivering edge name, when delivery-bound
    step: int              # scheduler step index at detection (-1: terminal)
    message: str

    def to_json(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "policy": self.policy,
            "process": self.process,
            "handle": self.handle,
            "edge": self.edge,
            "step": self.step,
            "message": self.message,
        }


class RuntimeMonitor:
    """Checks a policy battery against live kernel label state.

    *handles* maps symbolic names to the concrete handles the scenario
    installed; *declassifier_edges* names the topology's declassifier
    edges (deliveries over them are exempt from mandatory-declassifier).
    """

    def __init__(
        self,
        policies: Sequence[Policy],
        handles: Mapping[str, Handle],
        declassifier_edges: Iterable[str] = (),
    ):
        self.policies = list(policies)
        self.handles: Dict[str, Handle] = dict(handles)
        self.declassifier_edges: Set[str] = set(declassifier_edges)
        self.breaches: List[PolicyBreach] = []
        self.delivered_edges: Set[str] = set()
        self._seen: Set[Tuple[Any, ...]] = set()
        self._isolation = [p for p in self.policies if isinstance(p, Isolation)]
        self._confinement = [
            p for p in self.policies if isinstance(p, CapabilityConfinement)
        ]
        self._declass = [
            p for p in self.policies if isinstance(p, MandatoryDeclassifier)
        ]
        self._dead = [p for p in self.policies if isinstance(p, DeadEdges)]

    def _breach(
        self,
        policy: Policy,
        process: str,
        handle: str,
        message: str,
        step: int,
        edge: str = "",
    ) -> None:
        key = (policy, process, handle, edge)
        if key in self._seen:
            return
        self._seen.add(key)
        self.breaches.append(
            PolicyBreach(
                kind=policy.kind,
                policy=policy.describe(),
                process=process,
                handle=handle,
                edge=edge,
                step=step,
                message=message,
            )
        )

    # -- per-state checks ---------------------------------------------------

    def check_process(self, name: str, send_label: LiveLabel, step: int) -> None:
        """Isolation and capability confinement against one live QS."""
        for policy in self._isolation:
            if not matches(policy.process, name):
                continue
            handle = self.handles.get(policy.handle)
            if handle is None:
                continue
            level = send_label(handle)
            if level > policy.max_level:
                self._breach(
                    policy,
                    name,
                    policy.handle,
                    f"{name} carries {policy.handle} at {level_name(level)} "
                    f"(bound {level_name(policy.max_level)})",
                    step,
                )
        for policy in self._confinement:
            handle = self.handles.get(policy.handle)
            if handle is None:
                continue
            if send_label(handle) == STAR and not policy.permits(name):
                self._breach(
                    policy,
                    name,
                    policy.handle,
                    f"{name} holds * for {policy.handle}",
                    step,
                )

    def check_delivery(
        self,
        edge: Optional[str],
        sender: str,
        receiver: str,
        effective_send: LiveLabel,
        step: int,
    ) -> None:
        """One successful delivery: mandatory-declassifier at the sink,
        isolation against the sender's effective send label, and edge
        liveness bookkeeping."""
        if edge:
            self.delivered_edges.add(edge)
        declassified = edge is not None and edge in self.declassifier_edges
        for policy in self._declass:
            if declassified or not matches(policy.sink, receiver):
                continue
            handle = self.handles.get(policy.handle)
            if handle is None:
                continue
            level = effective_send(handle)
            if level > policy.max_level:
                self._breach(
                    policy,
                    receiver,
                    policy.handle,
                    f"{edge or sender} delivers {policy.handle} at "
                    f"{level_name(level)} into {receiver} without a "
                    "declassifier",
                    step,
                    edge=edge or "",
                )
        for policy in self._isolation:
            if not matches(policy.process, sender):
                continue
            handle = self.handles.get(policy.handle)
            if handle is None:
                continue
            level = effective_send(handle)
            if level > policy.max_level:
                self._breach(
                    policy,
                    sender,
                    policy.handle,
                    f"{sender} emits {policy.handle} at {level_name(level)} "
                    f"(bound {level_name(policy.max_level)})",
                    step,
                    edge=edge or "",
                )

    # -- whole-exploration checks -------------------------------------------

    def dead_edge_breaches(
        self, all_edges: Iterable[str], delivered: Set[str]
    ) -> List[PolicyBreach]:
        """Covered edges that delivered in *no* explored schedule.  Only
        meaningful when the exploration ran to completion."""
        out: List[PolicyBreach] = []
        for policy in self._dead:
            for edge in all_edges:
                if policy.covers(edge) and edge not in delivered:
                    out.append(
                        PolicyBreach(
                            kind=policy.kind,
                            policy=policy.describe(),
                            process="",
                            handle="",
                            edge=edge,
                            step=-1,
                            message=f"edge {edge} delivered in no explored "
                            "schedule",
                        )
                    )
        return out
