"""Whole-system policy assertions for the asbcheck model checker.

A policy is a declarative claim about every reachable label state of a
:class:`~repro.analysis.model.Topology`; asbcheck either proves it or
returns a shortest counterexample trace.  Four kinds, mirroring the
paper's security argument for OKWS (Section 7):

- :class:`Isolation` — *handle confinement of taint*: the named handle
  never appears above ``max_level`` in the process's send label or in the
  effective send label of any of its edges.  "bob's worker never carries
  ``uT:alice`` at 3" is the paper's per-user isolation claim.
- :class:`MandatoryDeclassifier` — with every ``declassifier`` edge
  removed from the topology, no delivered message carries the handle
  above ``max_level`` into the sink: every such flow must pass through a
  declassifier (Section 7.6).
- :class:`CapabilityConfinement` — only the allowed processes ever hold
  ``⋆`` for the handle: privilege (the admin handle, a worker's
  verification handle) cannot escape its intended holders.
- :class:`DeadEdges` — the listed edges (default: all) must deliver in
  some reachable state; an edge whose Figure 4 check can never pass is
  wiring that silently drops forever (the whole-system ASB001).

Process fields accept :mod:`fnmatch` patterns (``worker-*``), so one
assertion covers a family of event processes.

JSON encoding: ``{"kind": "isolation", "process": "netd", "handle":
"uT:alice", "max_level": "2"}`` and analogously for the other kinds;
:func:`policy_from_json` / :func:`policy_to_json` round-trip them.
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Any, Dict, Iterable, List, Mapping, Sequence, Tuple, Union

from repro.core.levels import L2, Level, level_name, parse_level


def matches(pattern: str, name: str) -> bool:
    """Process-name matching: exact or fnmatch glob."""
    return pattern == name or fnmatchcase(name, pattern)


@dataclass(frozen=True)
class Isolation:
    """*handle* stays at or below *max_level* in every matching process's
    send label and every effective send label it can produce."""

    process: str
    handle: str
    max_level: Level = L2

    kind = "isolation"

    def describe(self) -> str:
        return (
            f"isolation: {self.handle} never above "
            f"{level_name(self.max_level)} in {self.process}"
        )


@dataclass(frozen=True)
class MandatoryDeclassifier:
    """Without declassifier edges, nothing delivers *handle* above
    *max_level* into a process matching *sink*."""

    handle: str
    sink: str
    max_level: Level = L2

    kind = "mandatory-declassifier"

    def describe(self) -> str:
        return (
            f"mandatory-declassifier: {self.handle} above "
            f"{level_name(self.max_level)} reaches {self.sink} only via "
            "declassifier edges"
        )


@dataclass(frozen=True)
class CapabilityConfinement:
    """Only processes matching one of *allowed* ever hold ⋆ for *handle*."""

    handle: str
    allowed: Tuple[str, ...]

    kind = "capability-confinement"

    def describe(self) -> str:
        return (
            f"capability-confinement: * for {self.handle} held only by "
            f"{', '.join(self.allowed)}"
        )

    def permits(self, process: str) -> bool:
        return any(matches(pattern, process) for pattern in self.allowed)


@dataclass(frozen=True)
class DeadEdges:
    """Every listed edge (name patterns; empty = all edges) delivers in
    some reachable state."""

    edges: Tuple[str, ...] = ()

    kind = "dead-edge"

    def describe(self) -> str:
        scope = ", ".join(self.edges) if self.edges else "all edges"
        return f"dead-edge: {scope} must be deliverable"

    def covers(self, edge_name: str) -> bool:
        if not self.edges:
            return True
        return any(matches(pattern, edge_name) for pattern in self.edges)


Policy = Union[Isolation, MandatoryDeclassifier, CapabilityConfinement, DeadEdges]

POLICY_KINDS = {
    cls.kind: cls
    for cls in (Isolation, MandatoryDeclassifier, CapabilityConfinement, DeadEdges)
}


def policy_from_json(obj: Mapping[str, Any]) -> Policy:
    kind = obj.get("kind")
    if kind == "isolation":
        return Isolation(
            process=str(obj["process"]),
            handle=str(obj["handle"]),
            max_level=parse_level(obj.get("max_level", 2)),
        )
    if kind == "mandatory-declassifier":
        return MandatoryDeclassifier(
            handle=str(obj["handle"]),
            sink=str(obj["sink"]),
            max_level=parse_level(obj.get("max_level", 2)),
        )
    if kind == "capability-confinement":
        allowed = obj.get("allowed") or []
        if isinstance(allowed, str):
            allowed = [allowed]
        return CapabilityConfinement(
            handle=str(obj["handle"]), allowed=tuple(str(a) for a in allowed)
        )
    if kind == "dead-edge":
        edges = obj.get("edges") or []
        if isinstance(edges, str):
            edges = [edges]
        return DeadEdges(edges=tuple(str(e) for e in edges))
    raise ValueError(f"unknown policy kind: {kind!r}")


def policies_from_json(items: Iterable[Mapping[str, Any]]) -> List[Policy]:
    return [policy_from_json(item) for item in items]


def policy_to_json(policy: Policy) -> Dict[str, Any]:
    if isinstance(policy, Isolation):
        return {
            "kind": policy.kind,
            "process": policy.process,
            "handle": policy.handle,
            "max_level": level_name(policy.max_level),
        }
    if isinstance(policy, MandatoryDeclassifier):
        return {
            "kind": policy.kind,
            "handle": policy.handle,
            "sink": policy.sink,
            "max_level": level_name(policy.max_level),
        }
    if isinstance(policy, CapabilityConfinement):
        return {
            "kind": policy.kind,
            "handle": policy.handle,
            "allowed": list(policy.allowed),
        }
    if isinstance(policy, DeadEdges):
        return {"kind": policy.kind, "edges": list(policy.edges)}
    raise TypeError(f"not a policy: {policy!r}")


def watched_handles(policies: Sequence[Policy], topology: Any) -> List[int]:
    """The concrete handles any policy constrains.  The explorer's
    eager-closure reduction may collapse label changes only at handles
    *outside* this set (see ``repro.analysis.check``).

    *topology* is duck-typed: anything with a ``handles`` name→handle
    mapping works.  (Depending on the concrete
    :class:`repro.analysis.model.Topology` here would make the policy
    layer import the analysis layer — the import cycle PR 6 papered over
    with a lazy re-export hack.)"""
    out = set()
    for policy in policies:
        name = getattr(policy, "handle", None)
        if name is not None:
            handle = topology.handles.get(name)
            if handle is not None:
                out.add(handle)
    return sorted(out)
