"""Label policy recipes.

Asbestos labels are a mechanism; this package packages the paper's policy
*idioms* as reusable recipes:

- :mod:`repro.policies.mls` — traditional hierarchical multi-level
  security (unclassified/secret/top-secret) emulated with compartments
  (Section 5.2, "The four levels");
- :mod:`repro.policies.capabilities` — port labels as capability-style
  send rights (Section 5.5);
- :mod:`repro.policies.integrity` — grant handles, verification labels,
  and mandatory integrity (Section 5.4);
- :mod:`repro.policies.assertions` — whole-system policy *assertions*
  (isolation, mandatory declassification, capability confinement, edge
  liveness) verified by the asbcheck model checker
  (:mod:`repro.analysis.check`).
"""

from repro.policies.assertions import (
    CapabilityConfinement,
    DeadEdges,
    Isolation,
    MandatoryDeclassifier,
    Policy,
    policies_from_json,
    policy_from_json,
    policy_to_json,
)
from repro.policies.mls import MlsPolicy
from repro.policies.capabilities import (
    grant_send_right,
    open_port_label,
    sealed_port_label,
)
from repro.policies.integrity import speaks_for, write_verify_label

__all__ = [
    "CapabilityConfinement",
    "DeadEdges",
    "Isolation",
    "MandatoryDeclassifier",
    "MlsPolicy",
    "Policy",
    "grant_send_right",
    "open_port_label",
    "policies_from_json",
    "policy_from_json",
    "policy_to_json",
    "sealed_port_label",
    "speaks_for",
    "write_verify_label",
]
