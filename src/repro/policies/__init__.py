"""Label policy recipes.

Asbestos labels are a mechanism; this package packages the paper's policy
*idioms* as reusable recipes:

- :mod:`repro.policies.mls` — traditional hierarchical multi-level
  security (unclassified/secret/top-secret) emulated with compartments
  (Section 5.2, "The four levels");
- :mod:`repro.policies.capabilities` — port labels as capability-style
  send rights (Section 5.5);
- :mod:`repro.policies.integrity` — grant handles, verification labels,
  and mandatory integrity (Section 5.4).
"""

from repro.policies.mls import MlsPolicy
from repro.policies.capabilities import (
    grant_send_right,
    open_port_label,
    sealed_port_label,
)
from repro.policies.integrity import speaks_for, write_verify_label

__all__ = [
    "MlsPolicy",
    "grant_send_right",
    "open_port_label",
    "sealed_port_label",
    "speaks_for",
    "write_verify_label",
]
