"""Capability-style send rights from port labels (paper Section 5.5).

When a process creates port ``p``, the kernel pins ``pR(p) ← 0`` while
every other process starts with ``PS(p) = 1``, so nobody can send to the
port.  The creator holds ``p ⋆`` and can *grant* the right to send by
decontaminating another process's send label with ``DS = {p ⋆, 3}`` — and
the grantee can re-delegate, exactly like a capability.
"""

from __future__ import annotations

from repro.core.handles import Handle
from repro.core.labels import Label
from repro.core.levels import L0, L2, L3, STAR


def grant_send_right(port: Handle) -> Label:
    """The DS label that grants the right to send to *port* (``{p ⋆, 3}``).

    Usable only by a sender holding ``p ⋆`` itself (Figure 4 requirement
    2); the kernel silently drops the message otherwise.
    """
    return Label({port: STAR}, L3)


def sealed_port_label(port: Handle) -> Label:
    """A port label admitting only capability holders: ``{p 0, 2}``.

    This is what ``new_port`` effectively produces from a ``{2}`` input —
    netd's per-connection socket ports use exactly this shape (§7.2
    step 1).
    """
    return Label({port: L0}, L2)


def open_port_label() -> Label:
    """A port label admitting everyone (``{3}``), relying on the process
    receive label alone.  Note ``set_port_label`` uses its input verbatim,
    so resetting a port to this *does* open it to the world (Section 5.5).
    """
    return Label.top()
