"""The 9P-inspired message vocabulary.

Every request is a dict with a ``type`` field, usually a ``reply`` field
naming the port to answer on, and type-specific fields.  Replies carry the
request type suffixed ``_R`` (the paper's convention: a READ is answered
by a READ_R).  Using plain dicts keeps payload size accounting realistic
and programs trivially inspectable in tests.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.core.handles import Handle

# File/socket-style operations (paper Sections 4 and 7.7).
READ = "READ"
READ_R = "READ_R"
WRITE = "WRITE"
WRITE_R = "WRITE_R"
CONTROL = "CONTROL"
CONTROL_R = "CONTROL_R"
SELECT = "SELECT"
SELECT_R = "SELECT_R"
CREATE = "CREATE"
CREATE_R = "CREATE_R"

# OKWS-internal operations (Section 7).
LOGIN = "LOGIN"
LOGIN_R = "LOGIN_R"
LOOKUP = "LOOKUP"
LOOKUP_R = "LOOKUP_R"
REGISTER = "REGISTER"
REGISTER_R = "REGISTER_R"
CONNECT = "CONNECT"
CONNECT_R = "CONNECT_R"
LISTEN = "LISTEN"
LISTEN_R = "LISTEN_R"
ACCEPT_R = "ACCEPT_R"
QUERY = "QUERY"
QUERY_R = "QUERY_R"
ROW_R = "ROW_R"
DONE_R = "DONE_R"

# Generic failure reply.
ERROR_R = "ERROR_R"


def request(
    msg_type: str,
    reply: Optional[Handle] = None,
    **fields: Any,
) -> Dict[str, Any]:
    """Build a request payload."""
    payload: Dict[str, Any] = {"type": msg_type}
    if reply is not None:
        payload["reply"] = reply
    payload.update(fields)
    return payload


def reply_to(req: Dict[str, Any], msg_type: Optional[str] = None, **fields: Any) -> Dict[str, Any]:
    """Build the reply payload for *req* (defaults to its ``type`` + _R)."""
    if msg_type is None:
        msg_type = str(req.get("type", "UNKNOWN")) + "_R"
    payload: Dict[str, Any] = {"type": msg_type}
    if "tag" in req:
        # Correlation tag: lets a client multiplex many outstanding
        # requests over one reply port (ok-demux does this per connection).
        payload["tag"] = req["tag"]
    if "req" in req:
        # Request number: lets Channel.call discard stale duplicate
        # replies left over from retried requests.
        payload["req"] = req["req"]
    payload.update(fields)
    return payload


def is_error(payload: Dict[str, Any]) -> bool:
    return isinstance(payload, dict) and payload.get("type") == ERROR_R
