"""Message-protocol conventions built on raw kernel IPC.

Asbestos emulates conventional mechanisms (pipes, file descriptors) with
messages sent to ports; the protocol messages were inspired by Plan 9's 9P
(paper Section 4).  This package defines the message vocabulary
(:mod:`repro.ipc.protocol`) and request/reply plumbing for writing servers
and clients (:mod:`repro.ipc.rpc`).
"""

from repro.ipc.protocol import (
    CONTROL,
    CONTROL_R,
    ERROR_R,
    READ,
    READ_R,
    SELECT,
    SELECT_R,
    WRITE,
    WRITE_R,
    reply_to,
    request,
)
from repro.ipc.rpc import CallTimeout, Channel, serve_forever

__all__ = [
    "CONTROL",
    "CONTROL_R",
    "ERROR_R",
    "READ",
    "READ_R",
    "SELECT",
    "SELECT_R",
    "WRITE",
    "WRITE_R",
    "reply_to",
    "request",
    "CallTimeout",
    "Channel",
    "serve_forever",
]
