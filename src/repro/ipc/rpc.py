"""Request/reply plumbing for program bodies.

These helpers are *sub-generators*: program bodies use them with
``yield from``, so every kernel interaction still flows through the
body's own generator and the scheduler sees each syscall.

A :class:`Channel` owns a reply port and implements the ubiquitous
call-and-wait-for-reply pattern.  ``serve_forever`` is the standard
request loop for simple (non-event-process) servers.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, Optional

from repro.core.handles import Handle
from repro.core.labels import Label
from repro.kernel.message import Message
from repro.kernel.syscalls import Deadline, NewPort, Recv, Send, SetPortLabel


class CallTimeout(Exception):
    """A :meth:`Channel.call` exhausted its deadline (and retries) without
    a reply.  Either leg may have been silently dropped — unreliable sends
    mean the caller cannot know which — so the operation's outcome is
    *unknown*: retry only if the request is idempotent or the server
    deduplicates by ``req``."""

    def __init__(self, port: Handle, attempts: int, deadline: int):
        self.port = port
        self.attempts = attempts
        self.deadline = deadline
        super().__init__(
            f"no reply from {port:#x} after {attempts} attempt(s) "
            f"(deadline {deadline} cycles)"
        )


class Channel:
    """A reusable reply port for request/reply exchanges.

    Create inside a body with ``chan = yield from Channel.open(open_to)``.
    The reply port's label is set so that the named level of senders can
    reach it; by default it is opened to everyone (``{3}``), relying on the
    process receive label for protection — callers with stricter needs pass
    an explicit port label.
    """

    def __init__(self, port: Handle):
        self.port = port
        #: Monotonic per-channel request number; stamped into every
        #: ``call``/``call_nowait`` payload as ``req`` so stale replies
        #: (from retried or abandoned requests) can be recognised and
        #: discarded.  Servers echo it via :func:`~repro.ipc.protocol
        #: .reply_to`.
        self._req_seq = 0

    @classmethod
    def open(cls, port_label: Optional[Label] = None) -> Generator:
        port = yield NewPort()
        yield SetPortLabel(port, port_label if port_label is not None else Label.top())
        return cls(port)

    def call(
        self,
        port: Handle,
        payload: Dict[str, Any],
        cs: Optional[Label] = None,
        ds: Optional[Label] = None,
        v: Optional[Label] = None,
        dr: Optional[Label] = None,
        deadline: Optional[int] = None,
        retries: int = 0,
        backoff: float = 2.0,
        **aliases: Optional[Label],
    ) -> Generator:
        """Send *payload* (with ``reply`` pointing here) and await the
        reply.  Returns the reply :class:`Message`.

        The discretionary labels use the paper's short names ``cs`` /
        ``ds`` / ``v`` / ``dr`` (the long spellings ``contaminate`` etc.
        are accepted as aliases, exactly as on :class:`Send`).

        Asbestos sends are unreliable: either leg can be silently dropped
        by a label check, a queue limit, or an injected fault, and with
        ``deadline=None`` (the default) such a call blocks forever.
        Passing ``deadline`` (cycles of simulated time) bounds each
        attempt; the request is then retried ``retries`` more times with
        the per-attempt deadline growing by ``backoff``× each round, and
        :class:`CallTimeout` is raised when all attempts are exhausted.

        Every call stamps a fresh per-channel ``req`` number into the
        payload; servers echo it (``reply_to`` copies ``req`` like
        ``tag``), and replies carrying a stale ``req`` — duplicates from a
        slow first attempt that was already retried — are discarded here,
        so a retried call never returns another request's answer.
        """
        self._req_seq += 1
        req = self._req_seq
        payload = dict(payload)
        payload["reply"] = self.port
        payload["req"] = req
        attempts = max(1, 1 + retries) if deadline is not None else 1
        timeout = deadline
        for attempt in range(attempts):
            yield Send(port, payload, cs=cs, ds=ds, v=v, dr=dr, **aliases)
            while True:
                msg = yield Recv(port=self.port, timeout=timeout)
                if msg is None:
                    break  # this attempt timed out
                if isinstance(msg.payload, dict):
                    seen = msg.payload.get("req")
                    if seen is not None and seen != req:
                        continue  # stale duplicate from an earlier request
                    # The request number is call() plumbing, not part of
                    # the caller-visible reply.
                    msg.payload.pop("req", None)
                return msg
            if deadline is None:
                # Unbounded call woken spuriously; keep waiting.
                continue
            if attempt + 1 < attempts:
                timeout = int(timeout * backoff)
        raise CallTimeout(port, attempts, deadline or 0)

    def call_nowait(
        self,
        port: Handle,
        payload: Dict[str, Any],
        cs: Optional[Label] = None,
        ds: Optional[Label] = None,
        v: Optional[Label] = None,
        dr: Optional[Label] = None,
        **aliases: Optional[Label],
    ) -> Generator:
        """Send *payload* with ``reply``/``req`` stamped like :meth:`call`,
        but return immediately with the ``req`` number instead of waiting.

        Collect the reply later with ``recv(timeout=...)``, matching its
        payload's ``req`` against the returned number.  For the common
        bounded-wait case, prefer ``call(..., deadline=...)`` — the real
        mechanism is the kernel timer behind ``Recv(timeout=...)``, which
        both paths share.
        """
        self._req_seq += 1
        req = self._req_seq
        payload = dict(payload)
        payload["reply"] = self.port
        payload["req"] = req
        yield Send(port, payload, cs=cs, ds=ds, v=v, dr=dr, **aliases)
        return req

    def recv(self, block: bool = True, timeout: Optional[int] = None) -> Generator:
        msg = yield Recv(port=self.port, block=block, timeout=timeout)
        return msg

    def sleep(self, cycles: int) -> Generator:
        """Block for *cycles* of simulated time (retry backoff helper)."""
        yield Deadline(cycles)


def serve_forever(
    port: Handle,
    handler: Callable[[Message], Generator],
) -> Generator:
    """The standard server loop: receive on *port*, run *handler* (a
    generator function: it may itself yield syscalls), forever.

    The handler returns the reply payload (or ``None`` for no reply); the
    reply is sent to the request's ``reply`` port if present.
    """
    while True:
        msg = yield Recv(port=port)
        result = yield from handler(msg)
        reply_port = None
        if isinstance(msg.payload, dict):
            reply_port = msg.payload.get("reply")
        if result is not None and reply_port is not None:
            if (
                isinstance(msg.payload, dict)
                and isinstance(result, dict)
                and "req" in msg.payload
                and "req" not in result
            ):
                # Echo the caller's request number so retried calls can
                # match replies (handlers using reply_to get this free).
                result = dict(result)
                result["req"] = msg.payload["req"]
            yield Send(reply_port, result)
