"""Request/reply plumbing for program bodies.

These helpers are *sub-generators*: program bodies use them with
``yield from``, so every kernel interaction still flows through the
body's own generator and the scheduler sees each syscall.

A :class:`Channel` owns a reply port and implements the ubiquitous
call-and-wait-for-reply pattern.  ``serve_forever`` is the standard
request loop for simple (non-event-process) servers.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, Optional

from repro.core.handles import Handle
from repro.core.labels import Label
from repro.kernel.message import Message
from repro.kernel.syscalls import NewPort, Recv, Send, SetPortLabel


class Channel:
    """A reusable reply port for request/reply exchanges.

    Create inside a body with ``chan = yield from Channel.open(open_to)``.
    The reply port's label is set so that the named level of senders can
    reach it; by default it is opened to everyone (``{3}``), relying on the
    process receive label for protection — callers with stricter needs pass
    an explicit port label.
    """

    def __init__(self, port: Handle):
        self.port = port

    @classmethod
    def open(cls, port_label: Optional[Label] = None) -> Generator:
        port = yield NewPort()
        yield SetPortLabel(port, port_label if port_label is not None else Label.top())
        return cls(port)

    def call(
        self,
        port: Handle,
        payload: Dict[str, Any],
        cs: Optional[Label] = None,
        ds: Optional[Label] = None,
        v: Optional[Label] = None,
        dr: Optional[Label] = None,
        **aliases: Optional[Label],
    ) -> Generator:
        """Send *payload* (with ``reply`` pointing here) and await the
        reply.  Returns the reply :class:`Message`.

        The discretionary labels use the paper's short names ``cs`` /
        ``ds`` / ``v`` / ``dr`` (the long spellings ``contaminate`` etc.
        are accepted as aliases, exactly as on :class:`Send`).

        Asbestos sends are unreliable, so a call whose request or reply is
        dropped by a label check would block forever; callers for whom
        that is possible should use :meth:`call_nowait` plus a timeout at
        the harness level.  Within the carefully compartment-managed
        servers in this repository, delivery is reliable in practice
        (Section 4).
        """
        payload = dict(payload)
        payload["reply"] = self.port
        yield Send(port, payload, cs=cs, ds=ds, v=v, dr=dr, **aliases)
        msg = yield Recv(port=self.port)
        return msg

    def recv(self, block: bool = True) -> Generator:
        msg = yield Recv(port=self.port, block=block)
        return msg


def serve_forever(
    port: Handle,
    handler: Callable[[Message], Generator],
) -> Generator:
    """The standard server loop: receive on *port*, run *handler* (a
    generator function: it may itself yield syscalls), forever.

    The handler returns the reply payload (or ``None`` for no reply); the
    reply is sent to the request's ``reply`` port if present.
    """
    while True:
        msg = yield Recv(port=port)
        result = yield from handler(msg)
        reply_port = None
        if isinstance(msg.payload, dict):
            reply_port = msg.payload.get("reply")
        if result is not None and reply_port is not None:
            yield Send(reply_port, result)
