"""Deterministic fault injection (``repro.faults``).

Asbestos IPC is *defined* to be unreliable — Figure 4 drops any send that
fails a label check, silently — yet the shipped servers almost never see a
drop in practice.  This package exercises the failure modes on purpose:

- :mod:`repro.faults.plan` — declarative, JSON-serializable
  :class:`FaultPlan` documents (drop / delay / crash / queue-squeeze /
  kill-EP / stall / spawn-fail / clock-noise rules with name predicates,
  probabilities and step windows);
- :mod:`repro.faults.injector` — the seeded :class:`FaultInjector` the
  kernel consults at its choke points (send admission, queue delivery,
  scheduler pick, syscall dispatch, spawn).  A dedicated PRNG makes the
  same (plan, seed) pair reproduce the identical fault event sequence;
- :mod:`repro.faults.campaign` — ``python -m repro chaos``: run a fault
  campaign against a live OKWS site and assert the reliability invariants
  (zero sanitizer violations, fault accounting reconciles, a minimum
  fraction of client requests still completes).

Everything here is out-of-band, like the drop log: simulated programs
cannot observe the injector, so it cannot become a covert channel.
"""

from repro.faults.plan import FaultPlan, FaultRule, load_plan
from repro.faults.injector import FaultEvent, FaultInjector
from repro.faults.campaign import CampaignResult, run_campaign

__all__ = [
    "FaultPlan",
    "FaultRule",
    "FaultEvent",
    "FaultInjector",
    "CampaignResult",
    "run_campaign",
    "load_plan",
]
