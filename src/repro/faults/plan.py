"""Declarative fault plans (``faultplan/v1``).

A :class:`FaultPlan` is a frozen, JSON-round-trippable list of
:class:`FaultRule` records.  Each rule names one fault *kind*, the
predicate selecting its victims, and when/how often it fires:

========== ===================================================================
``drop``         drop a message at send admission (sender/port predicate,
                 probability ``p``)
``delay``        hold a message back ``rounds`` scheduler rounds before it
                 is enqueued
``crash``        crash a process at its N-th syscall (``at_syscall``), or
                 with probability ``p`` per syscall
``queue_limit``  squeeze matching ports' queue limits to ``limit`` messages
``kill_ep``      destroy one dormant event process of a matching base
                 process at scheduler step ``at_step``
``stall``        skip a task's scheduler turn with probability ``p``
``spawn_fail``   fail a matching spawn with ResourceExhausted
``clock_noise``  charge ``cycles`` of background load with probability
                 ``p`` per scheduler step
``crash_at_io``  crash a matching task at its ``at_io``-th log append,
                 leaving ``torn_bytes`` bytes of that record durable (a
                 torn-tail prefix; 0 = crash exactly at the record
                 boundary)
========== ===================================================================

Predicates (``sender`` / ``process`` / ``port_name`` / ``name``) are
``fnmatch`` globs over task names (``worker-*`` matches every worker).
``after_step`` / ``until_step`` bound a rule to a scheduler-step window and
``max_fires`` caps its total firings; all three default to "always".

Plans deliberately import nothing from the kernel so that
:mod:`repro.kernel.config` can load them without an import cycle.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from fnmatch import fnmatchcase
from typing import Any, Dict, Optional, Tuple

#: Schema identifier stamped into (and required of) every plan document.
SCHEMA = "faultplan/v1"

#: The fault kinds the injector implements.
KINDS = (
    "drop",
    "delay",
    "crash",
    "queue_limit",
    "kill_ep",
    "stall",
    "spawn_fail",
    "clock_noise",
    "crash_at_io",
)

#: Per-kind required numeric knobs (beyond the shared window/probability).
_KIND_REQUIRED: Dict[str, Tuple[str, ...]] = {
    "delay": ("rounds",),
    "queue_limit": ("limit",),
    "kill_ep": ("at_step",),
    "clock_noise": ("cycles",),
    "crash_at_io": ("at_io",),
}


class PlanError(ValueError):
    """A malformed fault plan document or rule."""


@dataclass(frozen=True)
class FaultRule:
    """One fault source.  Unused knobs stay at their defaults."""

    kind: str
    #: Stable identifier used in the fault event log (defaults to
    #: ``<kind>-<index>`` when loaded from JSON without one).
    id: str = ""
    #: fnmatch glob over the sender task name (drop/delay) or the task /
    #: process name (crash, stall, kill_ep, spawn_fail).  ``*`` = anyone.
    match: str = "*"
    #: Optional port handle the rule is limited to (drop/delay/queue_limit);
    #: ``None`` matches every port.  Plans written by hand rarely know raw
    #: handle values — campaigns resolve well-known site ports into this.
    port: Optional[int] = None
    #: Firing probability per opportunity (drop/delay/stall/spawn_fail/
    #: clock_noise, and crash when ``at_syscall`` is unset).
    p: float = 1.0
    #: Crash exactly at the victim's N-th syscall since arming.
    at_syscall: Optional[int] = None
    #: One-shot actions scheduled at an absolute scheduler step (kill_ep).
    at_step: Optional[int] = None
    #: Delay length in scheduler rounds.
    rounds: int = 0
    #: Squeezed queue limit (queue_limit).
    limit: int = 0
    #: Background-load charge (clock_noise), in cycles.
    cycles: int = 0
    #: Crash exactly at the victim's N-th log append since arming
    #: (crash_at_io; 1-based, counted per task).  Deterministic — this
    #: kind never draws the PRNG, so the pre-crash run is byte-identical
    #: between a recording and its replay.
    at_io: Optional[int] = None
    #: Bytes of the fatal record left durable (crash_at_io): 0 crashes at
    #: the record boundary, anything larger leaves a torn-tail prefix.
    torn_bytes: int = 0
    #: Step window in which the rule is live.
    after_step: int = 0
    until_step: Optional[int] = None
    #: Cap on total firings (None = unbounded).
    max_fires: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise PlanError(f"unknown fault kind {self.kind!r} (expected one of {KINDS})")
        if not 0.0 <= self.p <= 1.0:
            raise PlanError(f"rule {self.id or self.kind}: p must be in [0, 1], got {self.p}")
        for knob in _KIND_REQUIRED.get(self.kind, ()):
            if not getattr(self, knob):
                raise PlanError(f"rule {self.id or self.kind}: {self.kind} needs {knob!r}")
        if self.kind == "delay" and self.rounds <= 0:
            raise PlanError(f"rule {self.id or self.kind}: rounds must be positive")
        if self.kind == "queue_limit" and self.limit < 0:
            raise PlanError(f"rule {self.id or self.kind}: limit must be >= 0")
        if self.at_io is not None and self.at_io <= 0:
            raise PlanError(f"rule {self.id or self.kind}: at_io must be positive")
        if self.torn_bytes < 0:
            raise PlanError(f"rule {self.id or self.kind}: torn_bytes must be >= 0")
        if self.max_fires is not None and self.max_fires <= 0:
            raise PlanError(f"rule {self.id or self.kind}: max_fires must be positive")

    # -- predicates ---------------------------------------------------------

    def matches_name(self, name: str) -> bool:
        return fnmatchcase(name, self.match)

    def matches_port(self, port: int) -> bool:
        return self.port is None or self.port == port

    def in_window(self, step: int) -> bool:
        if step < self.after_step:
            return False
        return self.until_step is None or step < self.until_step

    # -- JSON ---------------------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if value != f.default:
                doc[f.name] = value
        doc["kind"] = self.kind
        return doc

    @classmethod
    def from_json(cls, doc: Dict[str, Any], index: int = 0) -> "FaultRule":
        if not isinstance(doc, dict):
            raise PlanError(f"rule #{index} is {type(doc).__name__}, not an object")
        known = {f.name for f in fields(cls)}
        unknown = set(doc) - known
        if unknown:
            raise PlanError(f"rule #{index}: unknown keys {sorted(unknown)}")
        if "kind" not in doc:
            raise PlanError(f"rule #{index}: missing 'kind'")
        values = dict(doc)
        values.setdefault("id", f"{doc['kind']}-{index}")
        return cls(**values)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, ordered collection of fault rules.

    Rule order matters: the injector consults rules in plan order and the
    PRNG draws in that order, so two plans with the same rules in a
    different order are *different* plans (and may produce different event
    sequences under the same seed).
    """

    rules: Tuple[FaultRule, ...] = ()
    #: Free-form description carried through the JSON document.
    description: str = ""

    def __post_init__(self) -> None:
        seen: set = set()
        for rule in self.rules:
            if rule.id in seen:
                raise PlanError(f"duplicate rule id {rule.id!r}")
            seen.add(rule.id)

    def by_kind(self, *kinds: str) -> Tuple[FaultRule, ...]:
        return tuple(rule for rule in self.rules if rule.kind in kinds)

    def __len__(self) -> int:
        return len(self.rules)

    # -- JSON ---------------------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"schema": SCHEMA}
        if self.description:
            doc["description"] = self.description
        doc["rules"] = [rule.to_json() for rule in self.rules]
        return doc

    def dumps(self) -> str:
        return json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, doc: Dict[str, Any]) -> "FaultPlan":
        if not isinstance(doc, dict):
            raise PlanError(f"plan is {type(doc).__name__}, not an object")
        if doc.get("schema", SCHEMA) != SCHEMA:
            raise PlanError(f"schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
        raw_rules = doc.get("rules", [])
        if not isinstance(raw_rules, list):
            raise PlanError("'rules' must be an array")
        rules = tuple(
            FaultRule.from_json(rule, index) for index, rule in enumerate(raw_rules)
        )
        return cls(rules=rules, description=str(doc.get("description", "")))

    @classmethod
    def loads(cls, text: str) -> "FaultPlan":
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as err:
            raise PlanError(f"invalid JSON: {err}") from err
        return cls.from_json(doc)

    @classmethod
    def of(cls, *rules: FaultRule, description: str = "") -> "FaultPlan":
        """Convenience constructor for tests and campaigns."""
        return cls(rules=tuple(rules), description=description)


def load_plan(path: str) -> FaultPlan:
    """Read a ``faultplan/v1`` JSON document from *path*."""
    with open(path, "r", encoding="utf-8") as handle:
        return FaultPlan.loads(handle.read())
