"""Chaos campaigns: seeded fault injection against a live OKWS site.

A campaign boots the full OKWS stack (netd, ok-demux, idd, ok-dbproxy,
okc, supervised workers) with the fault injector attached but *disarmed*,
arms it once the site is up, drives a closed-loop HTTP workload through
the faults, and then audits the wreckage:

- **safety** — the differential label sanitizer ran the whole time and
  must report zero violations: faults may lose messages, they must never
  leak one across a label boundary;
- **accounting** — every injected fault is reconciled against the
  kernel's own books (the ``fault-injected`` DropLog reason and the
  ``kernel.faults.*`` metric counters match the injector's event log);
- **liveness** — the reliability machinery (deadlines, retries,
  supervised restart, 503 degradation) must keep the completion rate at
  or above ``min_completion`` despite the faults;
- **determinism** — the same (plan, seed) pair replays the identical
  fault event log byte for byte (:func:`run_campaign` is pure given its
  arguments; ``python -m repro chaos`` runs every campaign twice and
  compares).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.faults.plan import FaultPlan

#: Default liveness floor: the fraction of client requests that must
#: complete (non-degraded) for a campaign to pass.
MIN_COMPLETION = 0.9


@dataclass
class CampaignResult:
    """Everything a chaos run learned, plus the pass/fail verdict."""

    plan: FaultPlan
    seed: int
    requests: int
    completed: int
    degraded_503: int
    no_response: int
    forbidden: int
    fault_summary: Dict[str, int]
    injected_total: int
    drop_fault_logged: int
    squeeze_drops_logged: int
    metrics_injected: int
    violations: int
    restarts: List[Dict[str, Any]]
    failed_services: List[str]
    #: Store-backed dbproxy recoveries supervision performed (0 without a
    #: configured store).
    recoveries: int
    #: Restart budget consumed per service: {service: restarts used of
    #: RESTART_BUDGET} for every service that restarted at least once.
    restart_budget: Dict[str, int]
    events_json: bytes
    min_completion: float = MIN_COMPLETION
    checks: Dict[str, bool] = field(default_factory=dict)

    @property
    def completion_rate(self) -> float:
        return self.completed / self.requests if self.requests else 1.0

    @property
    def passed(self) -> bool:
        return all(self.checks.values())

    def to_json(self) -> Dict[str, Any]:
        return {
            "schema": "chaos-campaign/v1",
            "seed": self.seed,
            "plan": self.plan.to_json(),
            "requests": self.requests,
            "completed": self.completed,
            "completion_rate": round(self.completion_rate, 4),
            "degraded_503": self.degraded_503,
            "no_response": self.no_response,
            "forbidden": self.forbidden,
            "fault_summary": dict(self.fault_summary),
            "injected_total": self.injected_total,
            "drop_fault_logged": self.drop_fault_logged,
            "squeeze_drops_logged": self.squeeze_drops_logged,
            "violations": self.violations,
            "restarts": list(self.restarts),
            "failed_services": list(self.failed_services),
            "recoveries": self.recoveries,
            "restart_budget": dict(sorted(self.restart_budget.items())),
            "checks": dict(self.checks),
            "passed": self.passed,
            "fault_log": json.loads(self.events_json.decode()),
        }

    def summary_lines(self) -> List[str]:
        ok = {True: "PASS", False: "FAIL"}
        lines = [
            f"requests:     {self.completed}/{self.requests} completed "
            f"({self.completion_rate:.1%}), {self.degraded_503} degraded (503), "
            f"{self.no_response} unanswered, {self.forbidden} forbidden",
            f"faults:       {self.injected_total} injected "
            f"{dict(sorted(self.fault_summary.items()))}",
            f"restarts:     {len(self.restarts)} "
            f"({', '.join(sorted({r['service'] for r in self.restarts})) or 'none'})"
            + (f"; failed: {sorted(self.failed_services)}" if self.failed_services else "")
            + (f"; budget used: {dict(sorted(self.restart_budget.items()))}"
               if self.restart_budget else "")
            + (f"; recoveries: {self.recoveries}" if self.recoveries else ""),
        ]
        for name, passed in self.checks.items():
            lines.append(f"{ok[passed]:<5} {name}")
        return lines


def run_campaign(
    plan: FaultPlan,
    seed: int = 0,
    users: int = 8,
    rounds: int = 4,
    concurrency: int = 8,
    min_completion: float = MIN_COMPLETION,
    spans: bool = False,
    store_path: Optional[str] = None,
) -> CampaignResult:
    """Run one seeded chaos campaign; returns the audited result.

    Boots an echo-service OKWS site with the sanitizer and metrics on and
    the injector disarmed, arms it after launch (boot traffic stays
    reliable — a launch that cannot finish is a different experiment),
    then issues ``users × rounds`` closed-loop requests.

    With *store_path*, ok-dbproxy runs on a ``wal/v1`` store: a campaign
    that crashes it exercises supervised restart *plus* log recovery,
    and the result's ``recoveries`` counter records each one.  The path
    must be fresh — campaigns are deterministic only from an empty
    store.
    """
    # Deferred imports: repro.faults.plan must stay importable without
    # the kernel (KernelConfig type-checks against it).
    from repro.kernel.config import KernelConfig
    from repro.kernel.errors import DROP_FAULT, DROP_QUEUE_LIMIT
    from repro.sim.workload import HttpClient

    config = KernelConfig(
        metrics=True,
        sanitize=True,
        sanitize_strict=False,  # collect violations; the campaign audits them
        spans=spans,
        faults=plan,
        fault_seed=seed,
        store_path=store_path,
    )
    # Fault-free boot: launch() would loop restarting workers whose hello
    # messages the plan eats.  The injector's PRNG is untouched while
    # disarmed, so arming after boot does not perturb determinism.
    site = _build_disarmed(users, config)
    injector = site.kernel.faults
    injector.arm()

    client = HttpClient(site)
    batch = [
        (f"u{i}", f"pw{i}", "echo", None, {"length": 11})
        for _ in range(rounds)
        for i in range(users)
    ]
    responses = client.run_batch(batch, concurrency=concurrency)
    # Let in-flight restarts, retries and delayed messages finish.
    site.kernel.run()

    completed = sum(1 for r in responses if r.ok)
    degraded = sum(
        1
        for r in responses
        if isinstance(r.payload, dict) and r.payload.get("status") == 503
    )
    forbidden = sum(
        1
        for r in responses
        if isinstance(r.payload, dict) and r.payload.get("status") in (403, 404)
    )
    no_response = sum(1 for r in responses if r.payload is None)

    summary = injector.summary()
    drop_fault_logged = site.kernel.drop_log.count(DROP_FAULT)
    squeeze_logged = site.kernel.drop_log.count(DROP_QUEUE_LIMIT)
    metrics_injected = _counter_value(site.kernel, "kernel.faults.injected")
    violations = (
        len(site.kernel.sanitizer.violations) if site.kernel.sanitizer else 0
    )

    result = CampaignResult(
        plan=plan,
        seed=seed,
        requests=len(batch),
        completed=completed,
        degraded_503=degraded,
        no_response=no_response,
        forbidden=forbidden,
        fault_summary=summary,
        injected_total=len(injector.events),
        drop_fault_logged=drop_fault_logged,
        squeeze_drops_logged=squeeze_logged,
        metrics_injected=metrics_injected,
        violations=violations,
        restarts=list(site.launcher_env.get("restarts", [])),
        failed_services=list(site.launcher_env.get("failed_services", [])),
        recoveries=int(site.launcher_env.get("recoveries", 0)),
        restart_budget={
            service: state["count"]
            for service, state in sorted(
                site.launcher_env.get("restart_state", {}).items()
            )
            if state.get("count")
        },
        events_json=injector.events_json(),
        min_completion=min_completion,
    )
    result.checks = {
        "sanitizer_clean": violations == 0,
        # Every admission drop the injector fired is in the DropLog as
        # "fault-injected", and vice versa.
        "drops_reconcile": summary.get("drop", 0) == drop_fault_logged,
        # Squeeze firings appear in the DropLog under the ordinary
        # queue-limit reason (a squeezed queue *is* a full queue).
        "squeezes_reconcile": summary.get("queue_limit", 0) <= squeeze_logged,
        # The metrics mirror counts exactly what the event log holds.
        "metrics_reconcile": metrics_injected == len(injector.events),
        "completion": result.completion_rate >= min_completion,
    }
    return result


def _build_disarmed(users: int, config) -> Any:
    """Build an echo-service site with the injector disarmed for launch()."""
    from repro.kernel.kernel import Kernel
    from repro.okws import ServiceConfig, launch
    from repro.okws.services import echo_handler

    kernel = Kernel(config=config)
    if kernel.faults is not None:
        kernel.faults.disarm()
    return launch(
        kernel=kernel,
        services=[ServiceConfig("echo", echo_handler)],
        users=[(f"u{i}", f"pw{i}") for i in range(users)],
    )


def _counter_value(kernel, dotted: str) -> int:
    snap = kernel.metrics.snapshot() if kernel.metrics is not None else {}
    value = snap.get(dotted, 0)
    return int(value) if isinstance(value, (int, float)) else 0
