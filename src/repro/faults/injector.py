"""The seeded fault injector the kernel consults at its choke points.

Determinism is the whole design: every probabilistic decision flows
through one :class:`~repro.kernel.nondet.NondetSource` — by default a
:class:`~repro.kernel.nondet.SeededSource` whose dedicated
``random.Random(seed)`` draws in the (already deterministic) order of
kernel events, so the same (plan, seed) pair replays the identical fault
sequence byte for byte.  The injector never touches the global
:mod:`random` state.  The schedule-space explorer
(:mod:`repro.analysis.sched`) passes its own source instead, turning
each fractional-probability rule into an explicit branch point, so a
(plan, seed, schedule) triple fully determines a run.

Every fired fault is recorded three ways:

- a :class:`FaultEvent` in :attr:`FaultInjector.events` (the canonical
  log; :meth:`events_json` is the byte-comparable form);
- a ``kernel.faults.<kind>`` metrics counter (when metrics are enabled),
  so campaigns can reconcile injected faults against the DropLog;
- an instant span on the kernel's span recorder (when spans are enabled),
  so faults show up in the Chrome trace next to the messages they ate.

The injector is *armed* or not: campaigns boot the site with the injector
disarmed (launch traffic stays reliable), then arm it for the measured
phase.  ``REPRO_FAULTS``-configured kernels arm at boot.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, TYPE_CHECKING, Tuple

from repro.faults.plan import FaultPlan, FaultRule
from repro.kernel.nondet import NondetSource, SeededSource

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, as recorded in the event log."""

    seq: int          # injector-local event number
    step: int         # kernel scheduler step at firing
    now: int          # virtual time (cycles) at firing
    kind: str         # rule kind
    rule: str         # rule id
    target: str       # victim: task name, "<sender>-><port>", ...
    detail: Dict[str, Any]

    def to_json(self) -> Dict[str, Any]:
        return {
            "seq": self.seq,
            "step": self.step,
            "now": self.now,
            "kind": self.kind,
            "rule": self.rule,
            "target": self.target,
            "detail": dict(self.detail),
        }


class FaultInjector:
    """Deterministic fault source for one kernel.

    The kernel calls the ``on_*`` hooks from its choke points; each hook
    is a no-op returning "no fault" unless the injector is armed and a
    live rule matches.  All hooks are cheap when the plan has no rule of
    the relevant kind (the per-kind rule tuples are precomputed).
    """

    def __init__(
        self,
        plan: FaultPlan,
        seed: int = 0,
        kernel: Optional["Kernel"] = None,
        source: Optional[NondetSource] = None,
    ):
        self.plan = plan
        self.seed = seed
        self.source = source if source is not None else SeededSource(seed)
        self.armed = True
        self.events: List[FaultEvent] = []
        self._fires: Dict[str, int] = {}
        self._syscalls: Dict[str, int] = {}
        self._io_appends: Dict[str, int] = {}
        # Per-kind rule views, consulted in plan order.
        self._send_rules = plan.by_kind("drop", "delay")
        self._squeeze_rules = plan.by_kind("queue_limit")
        self._crash_rules = plan.by_kind("crash")
        self._stall_rules = plan.by_kind("stall")
        self._spawn_rules = plan.by_kind("spawn_fail")
        self._step_rules = plan.by_kind("kill_ep", "clock_noise")
        self._io_rules = plan.by_kind("crash_at_io")
        self._kernel: Optional["Kernel"] = None
        self._counters: Dict[str, Any] = {}
        if kernel is not None:
            self.attach(kernel)

    @property
    def rng(self):
        """The PRNG behind the decision source (determinism tests reach in
        to assert an armed-but-idle injector never advances it)."""
        return self.source.rng

    def attach(self, kernel: "Kernel") -> None:
        """Bind to *kernel*: register the ``kernel.faults.*`` counters."""
        self._kernel = kernel
        scope = kernel.metrics.scope("kernel.faults")
        self._counters = {kind: scope.counter(kind) for kind in _COUNTED_KINDS}
        self._counters["injected"] = scope.counter("injected")

    # -- arming -------------------------------------------------------------

    def arm(self) -> None:
        self.armed = True

    def disarm(self) -> None:
        self.armed = False

    # -- bookkeeping --------------------------------------------------------

    def _live(self, rule: FaultRule, step: int) -> bool:
        if not rule.in_window(step):
            return False
        if rule.max_fires is not None and self._fires.get(rule.id, 0) >= rule.max_fires:
            return False
        return True

    def _fire(self, rule: FaultRule, target: str, **detail: Any) -> None:
        kernel = self._kernel
        step = kernel.steps_executed if kernel is not None else 0
        now = kernel.clock.now if kernel is not None else 0
        self._fires[rule.id] = self._fires.get(rule.id, 0) + 1
        event = FaultEvent(
            seq=len(self.events) + 1,
            step=step,
            now=now,
            kind=rule.kind,
            rule=rule.id,
            target=target,
            detail=detail,
        )
        self.events.append(event)
        if kernel is not None:
            if self._counters:
                self._counters[rule.kind].inc()
                self._counters["injected"].inc()
            if kernel.spans is not None:
                kernel.spans.instant(
                    "fault", target, now, kind=rule.kind, rule=rule.id, **detail
                )
            kernel.debug_log("<faults>", f"{rule.kind}[{rule.id}] -> {target} {detail}")

    def fired(self, rule_id: str) -> int:
        """Total firings of one rule so far."""
        return self._fires.get(rule_id, 0)

    def events_json(self) -> bytes:
        """The canonical, byte-comparable event log (determinism tests
        compare these directly)."""
        doc = {
            "schema": "faultlog/v1",
            "seed": self.seed,
            "events": [event.to_json() for event in self.events],
        }
        return json.dumps(doc, indent=None, sort_keys=True, separators=(",", ":")).encode()

    def summary(self) -> Dict[str, int]:
        """Firing counts by kind (what ``kernel.faults.*`` mirrors)."""
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    # -- choke-point hooks ---------------------------------------------------

    def on_send(self, sender: str, port: int, step: int) -> Optional[Tuple[str, int]]:
        """Message admission.  Returns ``("drop", 0)``, ``("delay", rounds)``
        or ``None``.  Draws one PRNG sample per live matching rule, in plan
        order, so the decision stream is reproducible."""
        if not self.armed or not self._send_rules:
            return None
        for rule in self._send_rules:
            if not self._live(rule, step):
                continue
            if not rule.matches_port(port) or not rule.matches_name(sender):
                continue
            if not self.source.chance(rule.kind, rule.p, f"{sender}->{port:#x}"):
                continue
            if rule.kind == "drop":
                self._fire(rule, f"{sender}->{port:#x}")
                return ("drop", 0)
            self._fire(rule, f"{sender}->{port:#x}", rounds=rule.rounds)
            return ("delay", rule.rounds)
        return None

    def queue_limit(
        self, sender: str, port: int, step: int
    ) -> Optional[Tuple[int, FaultRule]]:
        """Active queue squeeze for *sender*'s message to *port*, if any
        (smallest matching limit).  The sender predicate lets a plan
        squeeze, say, only netd's delivery queues while leaving the
        workload harness's injection path untouched."""
        if not self.armed or not self._squeeze_rules:
            return None
        best: Optional[Tuple[int, FaultRule]] = None
        for rule in self._squeeze_rules:
            if not self._live(rule, step) or not rule.matches_port(port):
                continue
            if not rule.matches_name(sender):
                continue
            if best is None or rule.limit < best[0]:
                best = (rule.limit, rule)
        return best

    def note_squeeze_drop(self, rule: FaultRule, sender: str, port: int) -> None:
        """The kernel dropped a message because of a squeezed limit."""
        self._fire(rule, f"{sender}->{port:#x}", limit=rule.limit)

    def on_syscall(self, task_key: str, task_name: str, step: int) -> bool:
        """Per-syscall crash check.  Counts syscalls per task while armed;
        fires on ``at_syscall`` N or with probability ``p``."""
        if not self.armed or not self._crash_rules:
            return False
        count = self._syscalls.get(task_key, 0) + 1
        self._syscalls[task_key] = count
        for rule in self._crash_rules:
            if not self._live(rule, step) or not rule.matches_name(task_name):
                continue
            if rule.at_syscall is not None:
                if count != rule.at_syscall:
                    continue
            elif not self.source.chance(rule.kind, rule.p, task_name):
                continue
            self._fire(rule, task_name, syscall=count)
            return True
        return False

    def on_io(
        self, task_key: str, task_name: str, step: int, nbytes: int = 0
    ) -> Optional[int]:
        """Per-log-append crash check (``crash_at_io``).

        Counts appends per task while armed; on the ``at_io``-th append of
        a matching task, returns the rule's ``torn_bytes`` — the store
        persists that many bytes of the record and crashes the process.
        Returns ``None`` for "no fault".  Deterministic: never draws the
        PRNG, so arming a crash_at_io-only plan perturbs nothing before
        the crash itself."""
        if not self.armed or not self._io_rules:
            return None
        count = self._io_appends.get(task_key, 0) + 1
        self._io_appends[task_key] = count
        for rule in self._io_rules:
            if not self._live(rule, step) or not rule.matches_name(task_name):
                continue
            if count != rule.at_io:
                continue
            self._fire(rule, task_name, append=count, torn_bytes=rule.torn_bytes, nbytes=nbytes)
            return rule.torn_bytes
        return None

    def on_pick(self, task_name: str, step: int) -> bool:
        """Scheduler pick: True = stall (skip this turn, requeue)."""
        if not self.armed or not self._stall_rules:
            return False
        for rule in self._stall_rules:
            if not self._live(rule, step) or not rule.matches_name(task_name):
                continue
            if self.source.chance(rule.kind, rule.p, task_name):
                self._fire(rule, task_name)
                return True
        return False

    def on_spawn(self, name: str, step: int) -> bool:
        """True = fail this spawn with ResourceExhausted."""
        if not self.armed or not self._spawn_rules:
            return False
        for rule in self._spawn_rules:
            if not self._live(rule, step) or not rule.matches_name(name):
                continue
            if self.source.chance(rule.kind, rule.p, name):
                self._fire(rule, name)
                return True
        return False

    def on_step(self, kernel: "Kernel", step: int) -> None:
        """Once per scheduler step: scheduled EP kills and clock noise."""
        if not self.armed or not self._step_rules:
            return
        for rule in self._step_rules:
            if not self._live(rule, step):
                continue
            if rule.kind == "kill_ep":
                if step == rule.at_step:
                    self._kill_one_ep(kernel, rule)
            elif self.source.chance(rule.kind, rule.p, "<clock>"):  # clock_noise
                from repro.kernel.clock import OTHER

                kernel.clock.charge(OTHER, rule.cycles)
                self._fire(rule, "<clock>", cycles=rule.cycles)

    def _kill_one_ep(self, kernel: "Kernel", rule: FaultRule) -> None:
        """Destroy the oldest dormant event process whose base matches."""
        from repro.kernel.event_process import EventProcess
        from repro.kernel.process import TaskState

        for task in list(kernel.tasks.values()):
            if not isinstance(task, EventProcess):
                continue
            if task.state != TaskState.DORMANT:
                continue
            if not rule.matches_name(task.base.name):
                continue
            self._fire(rule, task.name)
            kernel._destroy_ep(task)
            return
        # Nothing matched at this step; record the miss so the log still
        # reflects the attempt (campaigns assert every fault accounted for).
        self._fire(rule, "<no-dormant-ep>", missed=True)


#: Kinds mirrored as ``kernel.faults.<kind>`` counters.
_COUNTED_KINDS = (
    "drop",
    "delay",
    "crash",
    "queue_limit",
    "kill_ep",
    "stall",
    "spawn_fail",
    "clock_noise",
    "crash_at_io",
)
