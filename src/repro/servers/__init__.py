"""Trusted system services: netd, idd, ok-dbproxy, and the labeled file
server of the paper's Section 5.2 example."""

from repro.servers.netd import Wire, netd_body
from repro.servers.netd2 import netd2_front_body
from repro.servers.idd import idd_body
from repro.servers.dbproxy import dbproxy_body
from repro.servers.fileserver import file_server_body
from repro.servers.filesystem import filesystem_body
from repro.servers.cache import cache_body

__all__ = [
    "Wire",
    "netd_body",
    "netd2_front_body",
    "idd_body",
    "dbproxy_body",
    "file_server_body",
    "filesystem_body",
    "cache_body",
]
