"""idd: the identity server (paper Section 7.4).

idd associates persistent user identification data — username, user ID,
password — with the temporary per-user *grant* and *taint* handles
``uG``/``uT``.  Passwords live in a relational table reached through
ok-dbproxy's privileged admin interface, which other processes (such as
workers) cannot use.

On a successful LOGIN, idd either mints fresh ``uT``/``uG`` handles (first
login) or returns cached ones, granting both at ``⋆`` to the requester
(ok-demux).  When it mints handles it also grants them at ``⋆`` to
ok-dbproxy, which is privileged with respect to every user taint
(Section 7.5), along with the (user id → handles) binding dbproxy uses to
label rows.  The cache is never cleaned, exactly as in the prototype — so
idd's send label accumulates two ``⋆`` handles per user, one of the label
growth terms measured in Figure 9.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.handles import Handle
from repro.core.labels import Label
from repro.core.levels import L3, STAR
from repro.ipc import protocol as P
from repro.ipc.rpc import Channel
from repro.kernel.syscalls import NewHandle, NewPort, Recv, Send, SetPortLabel

#: Cycles of idd application logic per login (parsing, cache handling).
LOGIN_CYCLES = 45_000
#: Cycles per binding affirmation.
AFFIRM_CYCLES = 4_000


def idd_body(ctx):
    """The idd process.  Env in: ``dbproxy_admin_port``,
    ``dbproxy_grant_port``.  Publishes ``idd_port``."""
    admin_port: Handle = ctx.env["dbproxy_admin_port"]
    # Every privileged consumer of user handles gets a BIND when handles
    # are minted: ok-dbproxy always, plus e.g. the shared cache (okc).
    grant_ports = list(ctx.env.get("grant_ports") or [ctx.env["dbproxy_grant_port"]])
    # Which entry is ok-dbproxy's (replaced wholesale on REBIND after a
    # supervised restart); by convention the first.
    dbproxy_grant: Handle = ctx.env.get("dbproxy_grant_port", grant_ports[0])
    service = yield NewPort()
    yield SetPortLabel(service, Label.top())
    ctx.env["idd_port"] = service
    chan = yield from Channel.open()
    if ctx.env.get("announce_port") is not None:
        yield Send(
            ctx.env["announce_port"],
            P.request("ANNOUNCE", who="idd", ports={"idd_port": service}),
        )

    # uid -> (uT, uG); never cleaned (Section 7.4).
    cache: Dict[int, Tuple[Handle, Handle]] = {}

    while True:
        msg = yield Recv(port=service)
        payload = msg.payload
        if not isinstance(payload, dict):
            continue
        mtype = payload.get("type")
        reply = payload.get("reply")

        if mtype == P.LOGIN:
            ctx.compute(LOGIN_CYCLES)
            result = yield from chan.call(
                admin_port,
                P.request(
                    P.QUERY,
                    sql="SELECT uid FROM users WHERE name = ? AND password = ?",
                    params=(payload.get("user"), payload.get("password")),
                ),
            )
            rows = result.payload.get("rows", [])
            if not rows:
                if reply is not None:
                    yield Send(reply, P.reply_to(payload, P.LOGIN_R, ok=False))
                continue
            uid = rows[0]["uid"]
            if uid in cache:
                taint, grant = cache[uid]
            else:
                taint = yield NewHandle()
                grant = yield NewHandle()
                cache[uid] = (taint, grant)
                # dbproxy (and any other registered privileged consumer,
                # such as the shared cache) becomes privileged for this
                # user's compartments.
                for grant_port in grant_ports:
                    yield Send(
                        grant_port,
                        P.request("BIND", uid=uid, taint=taint, grant=grant),
                        ds=Label({taint: STAR, grant: STAR}, L3),
                    )
            if reply is not None:
                yield Send(
                    reply,
                    P.reply_to(payload, P.LOGIN_R, ok=True, uid=uid, taint=taint, grant=grant),
                    ds=Label({taint: STAR, grant: STAR}, L3),
                )

        elif mtype == "AFFIRM":
            # dbproxy double-checks a claimed (user, uT, uG) binding before
            # accepting a write (Section 7.5).
            ctx.compute(AFFIRM_CYCLES)
            uid = payload.get("uid")
            ok = cache.get(uid) == (payload.get("taint"), payload.get("grant"))
            if reply is not None:
                yield Send(reply, P.reply_to(payload, "AFFIRM_R", ok=ok))

        elif mtype == "REBIND":
            # The launcher restarted ok-dbproxy: learn its new admin port
            # (password checks) and replay every cached user binding to
            # the replacement's grant port.  idd minted the handles, so it
            # still holds uT/uG at ⋆ — no new grants are needed, and the
            # admin ⋆ from the boot-time GRANT keeps the admin port
            # reachable.
            new_admin = payload.get("dbproxy_admin_port")
            new_grant = payload.get("grant_port")
            if new_admin is not None:
                admin_port = new_admin
            if new_grant is not None:
                grant_ports = [p for p in grant_ports if p != dbproxy_grant]
                grant_ports.append(new_grant)
                dbproxy_grant = new_grant
                for uid in sorted(cache):
                    taint, grant = cache[uid]
                    yield Send(
                        new_grant,
                        P.request("BIND", uid=uid, taint=taint, grant=grant),
                        ds=Label({taint: STAR, grant: STAR}, L3),
                    )
            if reply is not None:
                yield Send(
                    reply, P.reply_to(payload, "REBIND_R", ok=True, users=len(cache))
                )
