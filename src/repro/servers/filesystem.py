"""A hierarchical labeled filesystem server.

The paper's trusted computing base includes "the network interface, IP
stack, filesystem, and kernel" (Section 2) and its IPC protocol "was
inspired by Plan 9's 9P" (Section 4).  This module is that filesystem: a
9P-flavoured, FID-based hierarchical file service with per-file and
per-directory label policy, generalising the flat Section 5.2 example
server (:mod:`repro.servers.fileserver`).

Protocol (all requests carry a ``reply`` port; ``fid`` is a client-chosen
small integer naming a walked position, like 9P's fids):

- ``ATTACH {fid}`` — bind *fid* to the root directory.
- ``WALK {fid, newfid, names: [..]}`` — walk path components.
- ``CREATE {fid, name, kind: "file"|"dir", taint?, grant?}`` — create an
  entry in the directory *fid*.  Supplying a taint handle requires
  granting the server ``⋆`` for it on the same message (DS), exactly as
  in Section 5.2; children *inherit* the directory's taint/grant unless
  they declare their own.
- ``OPEN/READ/WRITE/CLUNK/REMOVE/STAT`` — as expected.

Label policy:

- READ replies carry the file's *effective taint* (its own plus every
  ancestor directory's) as discretionary contamination — reading a file
  in u's home directory taints you with ``uT 3`` even if the file itself
  declares nothing.
- WRITEs to grant-protected files (or files in grant-protected
  directories) must prove ``V(uG) ≤ 0``.
- Directory listings are filtered by taint: READ of a directory returns
  only children whose effective taint is covered by the *requestor's
  verification label* — the caller states what it is cleared for, and
  entries beyond that clearance are simply absent (their existence is
  itself information).  The listing reply is contaminated with the taint
  of everything it does reveal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.handles import Handle
from repro.core.labels import Label
from repro.core.levels import L0, L3, STAR
from repro.ipc import protocol as P
from repro.kernel.errors import InvalidArgument
from repro.kernel.syscalls import ChangeLabel, NewPort, Recv, Send, SetPortLabel

#: Modelled cycles per filesystem operation.
FS_OP_CYCLES = 18_000


@dataclass
class Node:
    """One filesystem entry."""

    name: str
    is_dir: bool
    parent: Optional["Node"]
    taint: Optional[Handle] = None
    grant: Optional[Handle] = None
    children: Dict[str, "Node"] = field(default_factory=dict)
    #: Key of this node's content in the server's accounted memory.
    content_key: Optional[str] = None

    def path(self) -> str:
        parts: List[str] = []
        node: Optional[Node] = self
        while node is not None and node.parent is not None:
            parts.append(node.name)
            node = node.parent
        return "/" + "/".join(reversed(parts))

    def effective_taints(self) -> List[Handle]:
        """This node's taint plus every ancestor's, root-down."""
        taints: List[Handle] = []
        node: Optional[Node] = self
        while node is not None:
            if node.taint is not None:
                taints.append(node.taint)
            node = node.parent
        return taints

    def effective_grants(self) -> List[Handle]:
        grants: List[Handle] = []
        node: Optional[Node] = self
        while node is not None:
            if node.grant is not None:
                grants.append(node.grant)
            node = node.parent
        return grants


def filesystem_body(ctx):
    """The filesystem server process.  Publishes ``fs9_port``."""
    service = yield NewPort()
    yield SetPortLabel(service, Label.top())
    ctx.env["fs9_port"] = service
    if ctx.env.get("announce_port") is not None:
        yield Send(
            ctx.env["announce_port"],
            P.request("ANNOUNCE", who="fs9", ports={"fs9_port": service}),
        )

    root = Node(name="", is_dir=True, parent=None)
    # (reply port is the client identity for fid namespaces, like a 9P
    # connection) -> fid -> node
    fids: Dict[Tuple[Handle, int], Node] = {}
    content_counter = [0]

    def taint_label(taints: List[Handle]) -> Optional[Label]:
        if not taints:
            return None
        return Label({t: L3 for t in taints}, STAR)

    def fail(reply, payload, error):
        return Send(reply, P.reply_to(payload, P.ERROR_R, error=error))

    while True:
        msg = yield Recv(port=service)
        payload = msg.payload
        if not isinstance(payload, dict):
            continue
        reply = payload.get("reply")
        if reply is None:
            continue
        mtype = payload.get("type")
        ctx.compute(FS_OP_CYCLES)
        fid_key = (reply, payload.get("fid"))

        if mtype == "ATTACH":
            fids[fid_key] = root
            yield Send(reply, P.reply_to(payload, "ATTACH_R", ok=True))
            continue

        node = fids.get(fid_key)
        if node is None:
            yield fail(reply, payload, "unknown fid")
            continue

        if mtype == "WALK":
            target = node
            ok = True
            for name in payload.get("names", []):
                if name == "..":
                    target = target.parent or target
                    continue
                child = target.children.get(name) if target.is_dir else None
                if child is None:
                    ok = False
                    break
                target = child
            if not ok:
                yield fail(reply, payload, "no such path")
                continue
            fids[(reply, payload.get("newfid", payload.get("fid")))] = target
            yield Send(
                reply,
                P.reply_to(payload, "WALK_R", ok=True, is_dir=target.is_dir),
            )

        elif mtype == "CREATE":
            if not node.is_dir:
                yield fail(reply, payload, "not a directory")
                continue
            name = payload.get("name", "")
            if not name or "/" in name or name in node.children:
                yield fail(reply, payload, "bad or duplicate name")
                continue
            taint = payload.get("taint")
            if taint is not None:
                try:
                    # Accepting a new compartment needs its ⋆ (granted on
                    # this very message) — otherwise we would be trusted
                    # with data we could never serve untainted.
                    yield ChangeLabel(raise_receive={taint: L3})
                except InvalidArgument:
                    yield fail(reply, payload, "taint not granted")
                    continue
            child = Node(
                name=name,
                is_dir=payload.get("kind") == "dir",
                parent=node,
                taint=taint,
                grant=payload.get("grant"),
            )
            if not child.is_dir:
                content_counter[0] += 1
                child.content_key = f"fs9:{content_counter[0]}"
                ctx.mem.store(child.content_key, payload.get("data", b""))
            node.children[name] = child
            yield Send(reply, P.reply_to(payload, "CREATE_R", ok=True))

        elif mtype == P.READ:
            if node.is_dir:
                # Listing: reveal only entries the caller *explicitly*
                # declares clearance for in its verification label (an
                # explicit ``t 3`` entry, or ``t ⋆`` for a controller —
                # the default level is not a declaration), and contaminate
                # the reply with everything revealed.  A caller that lies
                # about clearance gets the reply dropped at its own
                # receive label anyway; the filter just keeps undeclared
                # entries out of what an honest caller learns.
                verify: Label = msg.verify

                def cleared(t: Handle) -> bool:
                    return t in verify and verify(t) in (L3, STAR)

                visible: List[Dict] = []
                revealed: Set[Handle] = set(node.effective_taints())
                if not all(cleared(t) for t in revealed):
                    # Not even cleared for the directory itself.
                    yield fail(reply, payload, "no such path")
                    continue
                for child in node.children.values():
                    child_taints = set(child.effective_taints())
                    if all(cleared(t) for t in child_taints):
                        visible.append({"name": child.name, "dir": child.is_dir})
                        revealed |= child_taints
                yield Send(
                    reply,
                    P.reply_to(payload, P.READ_R, entries=visible),
                    cs=taint_label(sorted(revealed)),
                )
            else:
                data = ctx.mem.load(node.content_key) if node.content_key else b""
                yield Send(
                    reply,
                    P.reply_to(payload, P.READ_R, data=data),
                    cs=taint_label(node.effective_taints()),
                )

        elif mtype == P.WRITE:
            if node.is_dir:
                yield fail(reply, payload, "is a directory")
                continue
            grants = node.effective_grants()
            verify = msg.verify
            if grants and not all(verify(g) <= L0 for g in grants):
                yield fail(reply, payload, "write not authorized")
                continue
            ctx.mem.store(node.content_key, payload.get("data", b""))
            yield Send(reply, P.reply_to(payload, P.WRITE_R, ok=True))

        elif mtype == "REMOVE":
            if node.parent is None:
                yield fail(reply, payload, "cannot remove root")
                continue
            grants = node.effective_grants()
            if grants and not all(msg.verify(g) <= L0 for g in grants):
                yield fail(reply, payload, "remove not authorized")
                continue
            if node.is_dir and node.children:
                yield fail(reply, payload, "directory not empty")
                continue
            del node.parent.children[node.name]
            if node.content_key:
                ctx.mem.delete(node.content_key)
            del fids[fid_key]
            yield Send(reply, P.reply_to(payload, "REMOVE_R", ok=True))

        elif mtype == "STAT":
            yield Send(
                reply,
                P.reply_to(
                    payload,
                    "STAT_R",
                    path=node.path(),
                    dir=node.is_dir,
                    tainted=bool(node.effective_taints()),
                    guarded=bool(node.effective_grants()),
                ),
                cs=taint_label(node.effective_taints()),
            )

        elif mtype == "CLUNK":
            fids.pop(fid_key, None)
            yield Send(reply, P.reply_to(payload, "CLUNK_R", ok=True))
