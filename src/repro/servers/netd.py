"""netd: the single network interface process (paper Section 7.7).

All network access goes through netd, which in the paper implements the
TCP/IP stack (a port of LWIP), manages the E1000 driver, and wraps every
connection in an Asbestos port.  Here the stack is simulated, but the
label behaviour is exact:

- each accepted connection gets a fresh port ``uC`` whose port label is
  ``{uC 0, 2}`` — no process can send to it until netd grants access;
- the listening application is notified with a grant of ``uC ⋆``;
- an application holding a connection's taint handle at ``⋆`` can ask netd
  to taint the connection (``ADD_TAINT``): netd raises its own receive
  label with ``uT 3``, raises ``uCR`` to ``{uC 0, uT 3, 2}``, and from then
  on contaminates every reply on that connection with ``uT 3``;
- READ/WRITE/CONTROL/SELECT messages to ``uC`` transfer data subject to
  all the usual label checks, so a process tainted with *another* user's
  handle simply cannot move bytes over this user's connection.

The physical NIC is the :class:`Wire` object — the boundary where the
label system necessarily ends.  The experiment harness injects inbound
TCP events through ``kernel.inject`` and reads responses off the wire's
outbound buffers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.handles import Handle
from repro.core.labels import Label
from repro.core.levels import L2, L3, STAR
from repro.ipc import protocol as P
from repro.kernel.errors import InvalidArgument
from repro.kernel.syscalls import ChangeLabel, DissociatePort, NewPort, Recv, Send, SetPortLabel

# -- cycle cost model for the simulated LWIP stack (calibrated once; see
# -- DESIGN.md "Cycle model calibration") -----------------------------------------

#: TCP accept: SYN handling, PCB setup, port wrapping.
ACCEPT_CYCLES = 190_000
#: Per inbound data segment (checksum, reassembly, buffering).
SEGMENT_CYCLES = 70_000
#: Per READ/WRITE op on a connection port (copy between app and stack).
OP_CYCLES = 78_000
#: Connection teardown.
CLOSE_CYCLES = 55_000


@dataclass
class Wire:
    """The simulated NIC: outbound bytes and connection states, visible to
    the experiment harness (this is outside the label system, as a real
    network is)."""

    outbound: Dict[int, List[Any]] = field(default_factory=dict)
    closed: Dict[int, bool] = field(default_factory=dict)
    #: Virtual-cycle timestamps of each outbound delivery (for latency).
    stamps: Dict[int, List[int]] = field(default_factory=dict)

    def deliver(self, conn_id: int, data: Any, now: int = 0) -> None:
        self.outbound.setdefault(conn_id, []).append(data)
        self.stamps.setdefault(conn_id, []).append(now)

    def close(self, conn_id: int) -> None:
        self.closed[conn_id] = True

    def take(self, conn_id: int) -> List[Any]:
        """Harness side: drain everything sent on *conn_id* so far."""
        return self.outbound.pop(conn_id, [])


@dataclass
class _Conn:
    conn_id: int
    port: Handle
    inbuf: List[Any] = field(default_factory=list)
    taints: List[Handle] = field(default_factory=list)
    pending_reads: List[Dict[str, Any]] = field(default_factory=list)
    closed: bool = False
    #: For loopback connections: the peer connection's id (WRITEs on this
    #: side surface as READ data on the peer, and vice versa).
    peer: Optional[int] = None


def netd_body(ctx):
    """The netd process.  Env in: ``wire`` (a :class:`Wire`).  Publishes
    ``netd_port`` (service requests) and ``netd_wire_port`` (inbound wire
    events, injected by the harness)."""
    wire: Wire = ctx.env["wire"]
    service_port = yield NewPort()
    yield SetPortLabel(service_port, Label.top())
    wire_port = yield NewPort()
    yield SetPortLabel(wire_port, Label.top())
    ctx.env["netd_port"] = service_port
    ctx.env["netd_wire_port"] = wire_port

    listeners: Dict[int, Handle] = {}          # tcp port -> notify Asbestos port
    conns: Dict[int, _Conn] = {}               # wire conn id -> state
    by_port: Dict[Handle, _Conn] = {}          # Asbestos port -> state

    def taint_label(conn: _Conn) -> Optional[Label]:
        if not conn.taints:
            return None
        return Label({t: L3 for t in conn.taints}, STAR)

    while True:
        msg = yield Recv()
        payload = msg.payload
        if not isinstance(payload, dict):
            continue
        mtype = payload.get("type")

        # ---- wire events (from the NIC) -------------------------------------
        if msg.port == wire_port:
            conn_id = payload.get("conn")
            if mtype == "OPEN":
                ctx.compute(ACCEPT_CYCLES)
                notify = listeners.get(payload.get("dport"))
                if notify is None:
                    wire.close(conn_id)
                    continue
                # The connection's socket port: label {2}; new_port then
                # pins pR(uC) <- 0, yielding the paper's {uC 0, 2}.
                conn_port = yield NewPort(Label.uniform(L2))
                conn = _Conn(conn_id=conn_id, port=conn_port)
                conns[conn_id] = conn
                by_port[conn_port] = conn
                # Notify the listener, granting uC at * (step 2, Figure 5).
                yield Send(
                    notify,
                    P.request(P.ACCEPT_R, conn=conn_port, conn_id=conn_id),
                    ds=Label({conn_port: STAR}, L3),
                )
            elif mtype == "DATA":
                ctx.compute(SEGMENT_CYCLES)
                conn = conns.get(conn_id)
                if conn is None or conn.closed:
                    continue
                conn.inbuf.append(payload.get("data"))
                # Wake any blocked reader.
                while conn.pending_reads and conn.inbuf:
                    read_req = conn.pending_reads.pop(0)
                    data = conn.inbuf.pop(0)
                    yield Send(
                        read_req["reply"],
                        P.reply_to(read_req, P.READ_R, data=data),
                        cs=taint_label(conn),
                    )
            elif mtype == "CLOSE":
                conn = conns.pop(conn_id, None)
                if conn is not None:
                    ctx.compute(CLOSE_CYCLES)
                    conn.closed = True
                    by_port.pop(conn.port, None)
                    # Release the connection capability and destroy the
                    # socket port (Section 9.3: capabilities are released
                    # when connections close).
                    yield ChangeLabel(drop_send=(conn.port,))
                    yield DissociatePort(conn.port)
            continue

        # ---- service requests -----------------------------------------------
        if msg.port == service_port:
            if mtype == P.CONNECT:
                # An outgoing connection (Section 7.7).  Loopback targets
                # with a registered listener are connected internally; all
                # other hosts are unreachable in the simulated network.
                ctx.compute(ACCEPT_CYCLES)
                reply = payload.get("reply")
                dport = payload.get("port", 80)
                host = payload.get("host", "localhost")
                notify = listeners.get(dport) if host in ("localhost", "127.0.0.1") else None
                if notify is None:
                    if reply is not None:
                        yield Send(reply, P.reply_to(payload, P.ERROR_R, error="no route"))
                    continue
                next_loop = -(len(conns) + 1)  # loopback ids are negative
                client_id, server_id = next_loop, next_loop - 100_000_000
                client_port = yield NewPort(Label.uniform(L2))
                server_port = yield NewPort(Label.uniform(L2))
                client = _Conn(conn_id=client_id, port=client_port, peer=server_id)
                server = _Conn(conn_id=server_id, port=server_port, peer=client_id)
                conns[client_id] = client
                conns[server_id] = server
                by_port[client_port] = client
                by_port[server_port] = server
                if reply is not None:
                    yield Send(
                        reply,
                        P.reply_to(payload, P.CONNECT_R, conn=client_port),
                        ds=Label({client_port: STAR}, L3),
                    )
                yield Send(
                    notify,
                    P.request(P.ACCEPT_R, conn=server_port, conn_id=server_id),
                    ds=Label({server_port: STAR}, L3),
                )
                continue
            if mtype == P.LISTEN:
                listeners[payload.get("port", 80)] = payload.get("notify")
                if payload.get("reply") is not None:
                    yield Send(payload["reply"], P.reply_to(payload, P.LISTEN_R, ok=True))
            elif mtype == "ADD_TAINT":
                # The requester granted us taint * via DS on this very
                # message; raise our receive label so tainted writes can
                # reach us, and the connection's port label so tainted
                # data may flow out only via this connection (step 5).
                conn = by_port.get(payload.get("conn"))
                taint = payload.get("taint")
                if conn is None or taint is None:
                    continue
                try:
                    yield ChangeLabel(raise_receive={taint: L3})
                except InvalidArgument:
                    # The requester failed to grant us declassification
                    # privilege for the taint; without it we could neither
                    # raise our receive label nor avoid permanent
                    # contamination.  Ignore the request.
                    continue
                conn.taints.append(taint)
                new_port_label = Label({conn.port: 0}, L2)
                for t in conn.taints:
                    new_port_label = new_port_label.with_entry(t, L3)
                yield SetPortLabel(conn.port, new_port_label)
                if payload.get("reply") is not None:
                    yield Send(
                        payload["reply"],
                        P.reply_to(payload, "ADD_TAINT_R", ok=True),
                        cs=taint_label(conn),
                    )
            continue

        # ---- connection port operations ----------------------------------------
        conn = by_port.get(msg.port)
        if conn is None:
            continue
        if mtype == P.READ:
            ctx.compute(OP_CYCLES)
            if conn.inbuf:
                data = conn.inbuf.pop(0)
                yield Send(
                    payload["reply"],
                    P.reply_to(payload, data=data),
                    cs=taint_label(conn),
                )
            else:
                conn.pending_reads.append(payload)
        elif mtype == P.WRITE:
            ctx.compute(OP_CYCLES)
            if conn.peer is not None:
                peer = conns.get(conn.peer)
                if peer is not None and not peer.closed:
                    peer.inbuf.append(payload.get("data"))
                    while peer.pending_reads and peer.inbuf:
                        read_req = peer.pending_reads.pop(0)
                        yield Send(
                            read_req["reply"],
                            P.reply_to(read_req, P.READ_R, data=peer.inbuf.pop(0)),
                            cs=taint_label(peer),
                        )
            else:
                wire.deliver(conn.conn_id, payload.get("data"), now=ctx.now)
            if payload.get("reply") is not None:
                yield Send(
                    payload["reply"],
                    P.reply_to(payload, n=len(str(payload.get("data")))),
                    cs=taint_label(conn),
                )
        elif mtype == P.SELECT:
            yield Send(
                payload["reply"],
                P.reply_to(payload, space=65536),
                cs=taint_label(conn),
            )
        elif mtype == P.CONTROL:
            if payload.get("op") == "close":
                ctx.compute(CLOSE_CYCLES)
                wire.close(conn.conn_id)
                conn.closed = True
                conns.pop(conn.conn_id, None)
                by_port.pop(msg.port, None)
                yield ChangeLabel(drop_send=(msg.port,))
                yield DissociatePort(msg.port)
            if payload.get("reply") is not None:
                yield Send(
                    payload["reply"],
                    P.reply_to(payload, ok=True),
                    cs=taint_label(conn),
                )
