"""okc: a cache shared by all workers that still isolates users.

Paper Section 7.3: "A production system would additionally have a cache
shared by all workers, and Asbestos could without much trouble support a
shared cache that isolated users."  This is that cache.

Design, mirroring ok-dbproxy's labeling (Section 7.5):

- okc is trusted and privileged: idd grants it every user's taint handle
  at ``⋆`` (the same BIND fan-out that privileges ok-dbproxy), so tainted
  PUT/GET requests never contaminate it;
- a PUT must prove identity with a verification label bounded above by
  ``{uT 3, uG 0, 2}`` — entries are stored under the *proven* user, not a
  claimed one;
- a GET's reply is contaminated with the owning user's taint, so only
  that user's workers can receive it — a compromised worker asking for
  another user's entry gets silence;
- a PUT with ``V(uT) = ⋆`` (a declassifier) stores a *public* entry that
  anyone may read untainted.

Because the cache is one process shared by every service's workers, a
user's cached state survives worker restarts and is visible across
services — exactly what per-worker event-process caches cannot give.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.core.handles import Handle
from repro.core.labels import Label
from repro.core.levels import L0, L2, L3, STAR
from repro.ipc import protocol as P
from repro.kernel.errors import InvalidArgument
from repro.kernel.syscalls import ChangeLabel, NewPort, Recv, Send, SetPortLabel

#: Cycles per cache operation (hash + copy).
CACHE_OP_CYCLES = 12_000

#: The public pseudo-owner (like dbproxy's user ID 0).
PUBLIC = 0


def cache_body(ctx):
    """The okc process.  Publishes ``cache_port`` and ``cache_grant_port``
    (where idd BINDs user handles); announces both if asked."""
    service = yield NewPort()
    yield SetPortLabel(service, Label.top())
    grant_port = yield NewPort()
    yield SetPortLabel(grant_port, Label.top())
    ctx.env["cache_port"] = service
    ctx.env["cache_grant_port"] = grant_port
    if ctx.env.get("announce_port") is not None:
        yield Send(
            ctx.env["announce_port"],
            P.request(
                "ANNOUNCE",
                who="okc",
                ports={"cache_port": service, "cache_grant_port": grant_port},
            ),
        )

    taint_of: Dict[int, Handle] = {}
    grant_of: Dict[int, Handle] = {}
    # (owner uid, key) -> value; owner PUBLIC for declassified entries.
    store: Dict[Tuple[int, str], Any] = {}

    while True:
        msg = yield Recv()
        payload = msg.payload
        if not isinstance(payload, dict):
            continue
        mtype = payload.get("type")
        reply = payload.get("reply")

        if msg.port == grant_port:
            if mtype == "BIND":
                uid, taint, grant = payload["uid"], payload["taint"], payload["grant"]
                try:
                    yield ChangeLabel(raise_receive={taint: L3})
                except InvalidArgument:
                    continue  # no ⋆ actually granted; ignore
                taint_of[uid] = taint
                grant_of[uid] = grant
            continue

        if msg.port != service or reply is None:
            continue
        ctx.compute(CACHE_OP_CYCLES)
        uid = payload.get("uid")
        key = payload.get("key")
        taint = taint_of.get(uid)
        grant = grant_of.get(uid)

        if mtype == "PUT":
            if taint is None or grant is None:
                yield Send(reply, P.reply_to(payload, P.ERROR_R, error="unknown user"))
                continue
            if msg.verify(taint) == STAR:
                # Declassification privilege: a public entry.
                store[(PUBLIC, key)] = payload.get("value")
                yield Send(reply, P.reply_to(payload, "PUT_R", ok=True, public=True))
                continue
            bound = Label({taint: L3, grant: L0}, L2)
            if not msg.verify <= bound:
                yield Send(
                    reply, P.reply_to(payload, P.ERROR_R, error="verify label rejected")
                )
                continue
            store[(uid, key)] = payload.get("value")
            yield Send(
                reply,
                P.reply_to(payload, "PUT_R", ok=True, public=False),
                cs=Label({taint: L3}, STAR),
            )

        elif mtype == "GET":
            owner = payload.get("owner", uid)
            if owner == PUBLIC:
                ctx.count("hits" if (PUBLIC, key) in store else "misses")
                yield Send(
                    reply,
                    P.reply_to(payload, "GET_R", value=store.get((PUBLIC, key)),
                               hit=(PUBLIC, key) in store),
                )
                continue
            owner_taint = taint_of.get(owner)
            if owner_taint is None:
                yield Send(reply, P.reply_to(payload, P.ERROR_R, error="unknown owner"))
                continue
            # The reply carries the *owner's* taint: if the asker may not
            # be contaminated with it, the kernel drops the reply and the
            # asker learns nothing — not even whether the entry exists.
            ctx.count("hits" if (owner, key) in store else "misses")
            yield Send(
                reply,
                P.reply_to(payload, "GET_R", value=store.get((owner, key)),
                           hit=(owner, key) in store),
                cs=Label({owner_taint: L3}, STAR),
            )
