"""The decomposed network server — the paper's Section 7.8 future work,
implemented.

    "netd could be decomposed into a simple trusted and privileged
    component and an event-process-based workhorse.  The trusted front
    end would classify incoming packets and firewall outgoing packets
    based on discretionary label rules; it would therefore be privileged
    with respect to all handles uT, as netd is now.  It would forward
    packets, once classified, to the appropriate event processes of an
    untrusted netd back end, which would manage the specifics of TCP
    buffering and flow control.  Each back-end event process would be
    contaminated with respect to the user on whose behalf it speaks,
    much like worker processes in the current system."

Consequence: a compromised TCP back end can no longer leak across users.
Each connection's buffering lives in its own event process whose send
label carries that user's taint, so the kernel — not netd code — stops
cross-connection flows; and the front end releases outbound bytes only
against a verification label proving the sender carries at most the
connection's own taint.

The wire-facing and application-facing protocols are identical to
:mod:`repro.servers.netd`, so OKWS runs unchanged on either
(``launch(..., network="decomposed")``).
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.core.handles import Handle
from repro.core.labels import Label
from repro.core.levels import L2, L3, STAR
from repro.ipc import protocol as P
from repro.kernel.errors import InvalidArgument
from repro.kernel.syscalls import (
    ChangeLabel,
    EpCheckpoint,
    EpExit,
    EpYield,
    NewPort,
    Recv,
    Send,
    SetPortLabel,
    Spawn,
)
from repro.servers.netd import (
    ACCEPT_CYCLES,
    CLOSE_CYCLES,
    OP_CYCLES,
    SEGMENT_CYCLES,
    Wire,
)

#: Front-end packet classification / firewalling per message.
CLASSIFY_CYCLES = 9_000


def backend_body(ctx):
    """The untrusted TCP workhorse: one event process per connection."""
    base_port = yield NewPort()
    # Only the front end may create connections: grant it at handoff.
    yield Send(
        ctx.env["front_port"],
        P.request("BACKEND_READY", port=base_port),
        ds=Label({base_port: STAR}, L3),
    )

    def event_body(ectx, first_msg):
        wire_out = ectx.env["front_egress"]
        conn_id = first_msg.payload["conn_id"]
        # The connection's socket port, sealed by its own 0-entry; the
        # default stays 3 until the first taint arrives (the front end's
        # TAINT message carries DR = {uT 3}, which requirement (4) bounds
        # by this port label).
        conn_port = yield NewPort()
        yield Send(
            ectx.env["front_port"],
            P.request("ACCEPT_UP", conn_id=conn_id, conn=conn_port),
            ds=Label({conn_port: STAR}, L3),
        )
        inbuf: List[Any] = []
        pending_reads: List[Dict[str, Any]] = []
        taints: List[Handle] = []
        msg = yield EpYield()
        while True:
            payload = msg.payload
            mtype = payload.get("type")
            if mtype == "DATA":          # from the front end
                ectx.compute(SEGMENT_CYCLES)
                inbuf.append(payload.get("data"))
                while pending_reads and inbuf:
                    req = pending_reads.pop(0)
                    # Our send label already carries the user's taint; no
                    # explicit CS needed — we *are* contaminated (§7.8).
                    yield Send(req["reply"], P.reply_to(req, P.READ_R, data=inbuf.pop(0)))
            elif mtype == "TAINT":       # front end: contaminate this conn
                taints.append(payload["taint"])
                label = Label({conn_port: 0}, L2)
                for taint in taints:
                    label = label.with_entry(taint, L3)
                yield SetPortLabel(conn_port, label)
                if payload.get("reply") is not None:
                    yield Send(payload["reply"], P.reply_to(payload, "TAINT_R", ok=True))
            elif mtype == P.READ:        # from the application
                ectx.compute(OP_CYCLES)
                if inbuf:
                    yield Send(payload["reply"], P.reply_to(payload, data=inbuf.pop(0)))
                else:
                    pending_reads.append(payload)
            elif mtype == P.WRITE:
                ectx.compute(OP_CYCLES)
                # Outbound bytes go through the firewall with a proof that
                # we carry at most this connection's taint.
                proof = Label({t: L3 for t in taints}, L2)
                yield Send(
                    wire_out,
                    P.request("EGRESS", conn_id=conn_id, data=payload.get("data")),
                    v=proof,
                )
                if payload.get("reply") is not None:
                    yield Send(payload["reply"], P.reply_to(payload, n=1))
            elif mtype == P.SELECT:
                yield Send(payload["reply"], P.reply_to(payload, space=65536))
            elif mtype == "CLOSE" or (mtype == P.CONTROL and payload.get("op") == "close"):
                ectx.compute(CLOSE_CYCLES)
                if payload.get("reply") is not None:
                    yield Send(payload["reply"], P.reply_to(payload, ok=True))
                if mtype == P.CONTROL:
                    # Application-initiated close: tell the front end so it
                    # can tear down the wire side too.
                    proof = Label({t: L3 for t in taints}, L2)
                    yield Send(
                        wire_out,
                        P.request("CLOSE_UP", conn_id=conn_id),
                        v=proof,
                    )
                yield EpExit()
            msg = yield EpYield()

    yield EpCheckpoint(event_body)


def netd2_front_body(ctx):
    """The trusted, privileged front end.  Env in: ``wire``.  Publishes the
    same ``netd_port``/``netd_wire_port`` env keys as classic netd."""
    wire: Wire = ctx.env["wire"]
    service_port = yield NewPort()
    yield SetPortLabel(service_port, Label.top())
    wire_port = yield NewPort()
    yield SetPortLabel(wire_port, Label.top())
    front_port = yield NewPort()
    yield SetPortLabel(front_port, Label.top())
    egress_port = yield NewPort()
    yield SetPortLabel(egress_port, Label.top())
    ctx.env["netd_port"] = service_port
    ctx.env["netd_wire_port"] = wire_port

    # Spawn the untrusted workhorse with least privilege.
    yield Spawn(
        backend_body,
        name="netd-backend",
        env={"front_port": front_port, "front_egress": egress_port},
    )
    ready = yield Recv(port=front_port)
    backend_base = ready.payload["port"]

    listeners: Dict[int, Handle] = {}
    conn_ports: Dict[int, Handle] = {}     # conn_id -> uC (EP-owned)
    conn_taints: Dict[int, List[Handle]] = {}
    pending_accept: Dict[int, int] = {}    # conn_id -> dport
    #: Segments that raced ahead of the back end's accept: buffered here
    #: and flushed once the connection's event process reports in.
    pending_data: Dict[int, List[Any]] = {}
    by_port: Dict[Handle, int] = {}

    while True:
        msg = yield Recv()
        payload = msg.payload
        if not isinstance(payload, dict):
            continue
        mtype = payload.get("type")

        if msg.port == wire_port:
            conn_id = payload.get("conn")
            if mtype == "OPEN":
                ctx.compute(ACCEPT_CYCLES + CLASSIFY_CYCLES)
                if payload.get("dport") not in listeners:
                    wire.close(conn_id)
                    continue
                pending_accept[conn_id] = payload["dport"]
                # Fork a back-end event process for this connection.
                yield Send(backend_base, P.request("NEW_CONN", conn_id=conn_id))
            elif mtype == "DATA":
                ctx.compute(CLASSIFY_CYCLES)
                port = conn_ports.get(conn_id)
                if port is None:
                    if conn_id in pending_accept:
                        pending_data.setdefault(conn_id, []).append(payload.get("data"))
                    continue
                # Classified inbound packets are contaminated with the
                # connection's taint before entering the back end.
                taints = conn_taints.get(conn_id, [])
                yield Send(
                    port,
                    {"type": "DATA", "data": payload.get("data")},
                    cs=Label({t: L3 for t in taints}, STAR) if taints else None,
                )
            elif mtype == "CLOSE":
                port = conn_ports.pop(conn_id, None)
                if port is not None:
                    by_port.pop(port, None)
                    conn_taints.pop(conn_id, None)
                    yield Send(port, {"type": "CLOSE"})
                    yield ChangeLabel(drop_send=(port,))
            continue

        if msg.port == front_port:
            if mtype == "ACCEPT_UP":
                conn_id = payload["conn_id"]
                dport = pending_accept.pop(conn_id, None)
                if dport is None:
                    continue
                conn = payload["conn"]
                conn_ports[conn_id] = conn
                by_port[conn] = conn_id
                notify = listeners[dport]
                yield Send(
                    notify,
                    P.request(P.ACCEPT_R, conn=conn, conn_id=conn_id),
                    ds=Label({conn: STAR}, L3),
                )
                # Flush segments that raced ahead of the accept.
                for data in pending_data.pop(conn_id, []):
                    yield Send(conn, {"type": "DATA", "data": data})
            continue

        if msg.port == egress_port:
            if mtype == "CLOSE_UP":
                conn_id = payload["conn_id"]
                allowed = Label({t: L3 for t in conn_taints.get(conn_id, [])}, L2)
                if msg.verify <= allowed:
                    wire.close(conn_id)
                    port = conn_ports.pop(conn_id, None)
                    if port is not None:
                        by_port.pop(port, None)
                        conn_taints.pop(conn_id, None)
                        yield ChangeLabel(drop_send=(port,))
                continue
            if mtype == "EGRESS":
                ctx.compute(CLASSIFY_CYCLES)
                conn_id = payload["conn_id"]
                # The firewall rule: the sender's verification label must
                # be bounded by this connection's own taints at 3 over a
                # default of 2 — no foreign user's taint can ride out.
                allowed = Label({t: L3 for t in conn_taints.get(conn_id, [])}, L2)
                if not msg.verify <= allowed:
                    ctx.log(f"egress firewall dropped packet for conn {conn_id}")
                    continue
                wire.deliver(conn_id, payload.get("data"), now=ctx.now)
            continue

        if msg.port == service_port:
            if mtype == P.LISTEN:
                listeners[payload.get("port", 80)] = payload.get("notify")
                if payload.get("reply") is not None:
                    yield Send(payload["reply"], P.reply_to(payload, P.LISTEN_R, ok=True))
            elif mtype == "ADD_TAINT":
                conn = payload.get("conn")
                taint = payload.get("taint")
                conn_id = by_port.get(conn)
                if conn_id is None or taint is None:
                    continue
                try:
                    yield ChangeLabel(raise_receive={taint: L3})
                except InvalidArgument:
                    continue  # requester did not grant us the star
                conn_taints.setdefault(conn_id, []).append(taint)
                # Contaminate the back-end EP and raise its receive label
                # so tainted writes can reach it (we hold uT ⋆).
                yield Send(
                    conn,
                    {"type": "TAINT", "taint": taint, "reply": payload.get("reply")},
                    cs=Label({taint: L3}, STAR),
                    dr=Label({taint: L3}, STAR),
                )
