"""ok-dbproxy: the labeled database gateway (paper Sections 7.5 and 7.6).

ok-dbproxy interposes on all OKWS database access, converting Asbestos
labels and security policies to and from plain relational operations:

- every table created through it gets a hidden ``_user_id`` column that
  workers can neither read nor name in queries;
- a write (INSERT/UPDATE/DELETE) must arrive with a username ``u`` and a
  verification label bounded above by ``{uT 3, uG 0, 2}`` — proving the
  sender carries no foreign taint and was granted the right to write for
  ``u`` — and the claimed (u, uT, uG) binding is affirmed with idd; the
  query is then rewritten so every row it writes carries u's user ID;
- a write arriving with ``V(uT) = ⋆`` proves declassification privilege
  for u's compartment: the row is stored with user ID 0, i.e. *public*
  (decentralized declassification, Section 7.6);
- every SELECT returns each row as a separate message contaminated with
  the owning user's taint (``uT 3``); rows with user ID 0 are returned
  untainted; an untainted DONE message ends the result set.  Because a
  worker's receive label admits only its own user's taint, the kernel
  silently drops every other row — the worker cannot even tell how many
  rows were sent.

dbproxy is trusted and privileged: idd grants it every user taint handle
at ``⋆`` (via BIND), so receiving tainted queries never contaminates it.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Optional

from repro.core.handles import Handle
from repro.core.labels import Label
from repro.core.levels import L0, L2, L3, STAR
from repro.db import sql as S
from repro.db.engine import Database
from repro.ipc import protocol as P
from repro.ipc.rpc import CallTimeout, Channel
from repro.kernel.errors import InvalidArgument
from repro.kernel.syscalls import ChangeLabel, NewPort, Recv, Send, SetPortLabel

#: Hidden ownership column added to every table (Section 7.5).
USER_ID_COLUMN = "_user_id"
#: ``_user_id`` value marking declassified (public) rows.
PUBLIC_USER_ID = 0

#: Cycles per row scanned by the engine (the OKDB line of Figure 9).
ROW_SCAN_CYCLES = 100
#: Fixed per-query engine cost (parse, plan, result assembly).
QUERY_BASE_CYCLES = 28_000

#: Per-attempt deadline (cycles of simulated time) on the idd AFFIRM
#: round trip, and retries after the first attempt.  Without this a
#: single dropped AFFIRM leg wedges dbproxy — and every worker behind it.
AFFIRM_TIMEOUT = 1_400_000_000
AFFIRM_RETRIES = 2

#: Completed writes remembered for replay dedup, keyed (reply port, req).
#: A retried write whose first reply was dropped must not execute twice.
WRITE_DEDUP_MAX = 4096


class WriteDedupCache:
    """A bounded LRU of completed writes (the replay-dedup map).

    Long chaos campaigns retry thousands of writes; an unbounded map
    grows with every distinct (reply port, req) pair for the life of the
    proxy.  Bounding it LRU-style keeps the common case — a retry
    arriving shortly after the original — a guaranteed hit, and evicts
    only the entries least likely to ever be replayed.  A hit refreshes
    the entry's recency (the client is evidently still retrying it)."""

    def __init__(self, capacity: int = WRITE_DEDUP_MAX):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.evictions = 0
        self._entries: "OrderedDict[Any, Any]" = OrderedDict()

    def get(self, key: Any) -> Optional[Any]:
        value = self._entries.get(key)
        if value is not None:
            self._entries.move_to_end(key)
        return value

    def put(self, key: Any, value: Any) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def __contains__(self, key: Any) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)


def _classify(sql_text: str) -> S.Statement:
    return S.parse(sql_text)


def dbproxy_body(ctx):
    """The ok-dbproxy process.  Publishes three ports:

    - ``dbproxy_port`` — the policy-enforcing interface workers use;
    - ``dbproxy_admin_port`` — raw SQL for trusted components (idd, the
      launcher); its port label is ``{admin 0, 2}``, so only holders of
      the admin grant handle can send;
    - ``dbproxy_grant_port`` — where idd BINDs user handles.

    Env in: ``admin_handle`` (the launcher's admin grant handle).
    """
    admin_handle: Handle = ctx.env["admin_handle"]

    # Durable storage (DESIGN.md §14): with a configured store_path the
    # tables live in a write-ahead-logged LabeledStore, recovered here at
    # boot.  The import is lazy and the hooks are bound here so that the
    # default store_path=None run never touches repro.store at all — the
    # in-memory path stays bit-identical.
    store = None
    store_path = getattr(ctx.config, "store_path", None)
    recovered = False
    if store_path is not None:
        from repro.store.store import LabeledStore
        from repro.store.wal import RowTaint

        store = LabeledStore(
            store_path,
            io_hook=ctx.io_point,
            compute=ctx.compute,
            metrics=ctx.metrics_scope("kernel.store"),
        )
        db = store.db
        recovered = store.report.records > 0
        if recovered:
            ctx.log(
                f"recovered {store.report.committed_txs} tx(s), "
                f"discarded {store.report.discarded_txs}, "
                f"{store.report.torn_bytes} torn byte(s), "
                f"{len(store.report.violations)} label violation(s)"
            )
    else:
        db = Database()

    public_port = yield NewPort()
    yield SetPortLabel(public_port, Label.top())
    admin_port = yield NewPort()
    yield SetPortLabel(admin_port, Label({admin_handle: L0}, L2))
    grant_port = yield NewPort()
    yield SetPortLabel(grant_port, Label.top())
    ctx.env["dbproxy_port"] = public_port
    ctx.env["dbproxy_admin_port"] = admin_port
    ctx.env["dbproxy_grant_port"] = grant_port
    if ctx.env.get("announce_port") is not None:
        yield Send(
            ctx.env["announce_port"],
            P.request(
                "ANNOUNCE",
                who="ok-dbproxy",
                ports={
                    "dbproxy_port": public_port,
                    "dbproxy_admin_port": admin_port,
                    "dbproxy_grant_port": grant_port,
                },
                # The launcher skips schema/user seeding when the store
                # already recovered state (a supervised restart).
                recovered=recovered,
                tables=sorted(db.tables),
            ),
        )

    chan = yield from Channel.open()
    idd_port: Optional[Handle] = None

    # uid <-> handles bindings, granted by idd.
    taint_of: Dict[int, Handle] = {}
    grant_of: Dict[int, Handle] = {}
    uid_of_taint: Dict[Handle, int] = {}

    # Replay dedup for retried writes: (reply port, req) -> (reply
    # payload, reply CS label).  Lets a client retry a write whose reply
    # was dropped without it executing twice.  LRU-bounded: chaos
    # campaigns must not grow it without limit.
    completed_writes = WriteDedupCache(WRITE_DEDUP_MAX)

    def charge(result) -> None:
        ctx.compute(QUERY_BASE_CYCLES + ROW_SCAN_CYCLES * result.rows_scanned)
        ctx.count("queries")

    while True:
        msg = yield Recv()
        payload = msg.payload
        if not isinstance(payload, dict):
            continue
        mtype = payload.get("type")
        reply = payload.get("reply")

        # ---- idd binds a user's handles (and made us privileged via DS) ----
        if msg.port == grant_port:
            if mtype == "BIND":
                uid, taint, grant = payload["uid"], payload["taint"], payload["grant"]
                try:
                    # Accept future queries tainted with this user's handle;
                    # the raise itself proves we actually hold uT ⋆ (the
                    # kernel rejects it otherwise).
                    yield ChangeLabel(raise_receive={taint: L3})
                except InvalidArgument:
                    continue  # not actually granted privilege; ignore
                taint_of[uid] = taint
                grant_of[uid] = grant
                uid_of_taint[taint] = uid
            elif mtype == "SET_IDD":
                idd_port = payload.get("port")
            continue

        # ---- trusted raw interface ------------------------------------------------
        if msg.port == admin_port:
            if mtype == "BULK_INSERT":
                # Setup-time seeding (the launcher populating the user
                # table); rows land as public unless they carry an owner.
                table = db.tables.get(payload.get("table", ""))
                if table is not None:
                    fulls = []
                    for row in payload.get("rows", []):
                        full = {name: None for name in table.column_names}
                        full.update(row)
                        full.setdefault(USER_ID_COLUMN, PUBLIC_USER_ID)
                        if full[USER_ID_COLUMN] is None:
                            full[USER_ID_COLUMN] = PUBLIC_USER_ID
                        fulls.append(full)
                    if store is not None:
                        # One durable transaction of fully-bound inserts.
                        store.bulk_insert(table.name, fulls, USER_ID_COLUMN)
                    else:
                        table.rows.extend(fulls)
                        table.invalidate_indexes()
                if reply is not None:
                    yield Send(reply, P.reply_to(payload, "BULK_INSERT_R", ok=True))
                continue
            if mtype == "CHECKPOINT":
                # Append a full-state snapshot to the log (admin-only, so
                # only the launcher and idd can force one).
                if store is not None:
                    store.checkpoint()
                if reply is not None:
                    yield Send(
                        reply,
                        P.reply_to(
                            payload, "CHECKPOINT_R", ok=store is not None
                        ),
                    )
                continue
            if mtype != P.QUERY or reply is None:
                continue
            try:
                ast = _classify(payload.get("sql", ""))
                if isinstance(ast, S.CreateTable):
                    # Every table gets the hidden ownership column.
                    ast = S.CreateTable(
                        ast.table, ast.columns + ((USER_ID_COLUMN, "INTEGER"),)
                    )
                elif isinstance(ast, S.Insert) and USER_ID_COLUMN not in ast.columns:
                    # Admin inserts default to public rows.
                    ast = S.Insert(
                        ast.table,
                        ast.columns + (USER_ID_COLUMN,),
                        ast.values + (PUBLIC_USER_ID,),
                    )
                params_in = tuple(payload.get("params", ()))
                if store is not None and isinstance(
                    ast, (S.CreateTable, S.Insert, S.Update, S.Delete)
                ):
                    # Admin writes are public and untainted; the logged
                    # statement carries its own _user_id values, so owner
                    # here is bookkeeping, not row data.
                    result = store.apply(ast, params_in, owner=PUBLIC_USER_ID)
                else:
                    result = db.run(ast, params_in)
            except S.SqlError as err:
                yield Send(reply, P.reply_to(payload, P.ERROR_R, error=str(err)))
                continue
            charge(result)
            yield Send(
                reply,
                P.reply_to(
                    payload,
                    P.QUERY_R,
                    rows=[
                        {k: v for k, v in row.items() if k != USER_ID_COLUMN}
                        for row in result.rows
                    ],
                    rows_affected=result.rows_affected,
                ),
            )
            continue

        # ---- the policy-enforcing worker interface ---------------------------------
        if msg.port != public_port or mtype != P.QUERY or reply is None:
            continue
        sql_text = payload.get("sql", "")
        params = tuple(payload.get("params", ()))
        username_uid = payload.get("uid")
        verify: Label = msg.verify

        try:
            ast = _classify(sql_text)
        except S.SqlError as err:
            yield Send(reply, P.reply_to(payload, P.ERROR_R, error=str(err)))
            continue

        if _mentions_user_column(ast):
            yield Send(
                reply,
                P.reply_to(payload, P.ERROR_R, error=f"{USER_ID_COLUMN} is private"),
            )
            continue

        if isinstance(ast, S.CreateTable):
            yield Send(
                reply,
                P.reply_to(payload, P.ERROR_R, error="schema changes are admin-only"),
            )
            continue

        if isinstance(ast, (S.Insert, S.Update, S.Delete)):
            req = payload.get("req")
            cached = completed_writes.get((reply, req)) if req is not None else None
            if cached is not None:
                # A replayed write we already executed (only its reply was
                # lost): re-send the recorded reply, do not run it again.
                ctx.count("write_replays")
                cached_payload, cached_cs = cached
                yield Send(reply, dict(cached_payload), cs=cached_cs)
                continue
            uid = username_uid
            taint = taint_of.get(uid)
            grant = grant_of.get(uid)
            if taint is None or grant is None:
                yield Send(reply, P.reply_to(payload, P.ERROR_R, error="unknown user"))
                continue
            declassified = verify(taint) == STAR
            if not declassified:
                # V must be bounded above by {uT 3, uG 0, 2}: no foreign
                # taint, and the uG 0 entry proves the right to write as u.
                bound = Label({taint: L3, grant: L0}, L2)
                if not verify <= bound:
                    yield Send(
                        reply,
                        P.reply_to(payload, P.ERROR_R, error="verify label rejected"),
                    )
                    continue
            # Affirm the binding with idd (Section 7.5) — bounded: a
            # dropped AFFIRM leg must fail this write, not wedge dbproxy
            # (and every worker queued behind it) forever.
            if idd_port is not None:
                try:
                    affirmation = yield from chan.call(
                        idd_port,
                        P.request("AFFIRM", uid=uid, taint=taint, grant=grant),
                        deadline=AFFIRM_TIMEOUT,
                        retries=AFFIRM_RETRIES,
                    )
                except CallTimeout:
                    yield Send(
                        reply,
                        P.reply_to(payload, P.ERROR_R, error="idd unavailable"),
                    )
                    continue
                if not affirmation.payload.get("ok"):
                    yield Send(
                        reply,
                        P.reply_to(payload, P.ERROR_R, error="binding rejected"),
                    )
                    continue
            owner = PUBLIC_USER_ID if declassified else uid
            try:
                rewritten = _rewrite_write(ast, owner, uid, declassified)
                if store is None:
                    result = db.run(rewritten, params)
                else:
                    # Persist the security facts with the write: the
                    # user's taint compartment (for a declassified write,
                    # the compartment the ⋆ proof covered) and the
                    # contamination level its rows raise readers to.
                    result = store.apply(
                        rewritten,
                        params,
                        owner=owner,
                        taint=RowTaint(handles=(taint,), level=L3),
                        declass=declassified,
                    )
            except S.SqlError as err:
                yield Send(reply, P.reply_to(payload, P.ERROR_R, error=str(err)))
                continue
            charge(result)
            out = P.reply_to(payload, P.QUERY_R, rows_affected=result.rows_affected)
            out_cs = None if declassified else Label({taint: L3}, STAR)
            if req is not None:
                completed_writes.put((reply, req), (out, out_cs))
            yield Send(reply, out, cs=out_cs)
            continue

        # SELECT: per-row contamination (Section 7.5).
        select = ast
        columns = select.columns
        if columns != ("*",):
            columns = tuple(columns) + (USER_ID_COLUMN,)
        widened = S.Select(select.table, columns, select.where)
        try:
            result = db.run(widened, params)
        except S.SqlError as err:
            yield Send(reply, P.reply_to(payload, P.ERROR_R, error=str(err)))
            continue
        charge(result)
        for row in result.rows:
            owner = row.get(USER_ID_COLUMN, PUBLIC_USER_ID)
            visible = {k: v for k, v in row.items() if k != USER_ID_COLUMN}
            if owner == PUBLIC_USER_ID:
                yield Send(reply, P.reply_to(payload, P.ROW_R, row=visible))
                continue
            taint = taint_of.get(owner)
            if taint is None:
                # A row whose owner has no bound compartment this boot
                # (e.g. restored from disk before that user's first
                # login).  A row we cannot label is a row we must not
                # send: skip it.  The binding appears at the owner's next
                # login and the row becomes visible to them again.
                continue
            yield Send(
                reply,
                P.reply_to(payload, P.ROW_R, row=visible),
                cs=Label({taint: L3}, STAR),
            )
        yield Send(reply, P.reply_to(payload, P.DONE_R))


def _mentions_user_column(ast: S.Statement) -> bool:
    if isinstance(ast, S.CreateTable):
        return any(name == USER_ID_COLUMN for name, _ in ast.columns)
    if isinstance(ast, S.Insert):
        return USER_ID_COLUMN in ast.columns
    if isinstance(ast, S.Select):
        return USER_ID_COLUMN in ast.columns or any(
            c.column == USER_ID_COLUMN for c in ast.where
        )
    if isinstance(ast, S.Update):
        return any(col == USER_ID_COLUMN for col, _ in ast.assignments) or any(
            c.column == USER_ID_COLUMN for c in ast.where
        )
    if isinstance(ast, S.Delete):
        return any(c.column == USER_ID_COLUMN for c in ast.where)
    return False


def _rewrite_write(ast: S.Statement, owner: int, uid: int, declassified: bool) -> S.Statement:
    """Scope a write to the user's rows and stamp ownership.

    INSERTs get ``_user_id = owner`` (0 for declassified rows).  UPDATEs
    and DELETEs additionally match only rows the user already owns — a
    declassifier may also touch the user's private rows (it holds uT ⋆),
    which is how data moves from private to public (Section 7.6 flags
    declassified rows by zeroing their user ID).
    """
    if isinstance(ast, S.Insert):
        return S.Insert(
            ast.table,
            ast.columns + (USER_ID_COLUMN,),
            ast.values + (owner,),
        )
    scope = (S.Condition(USER_ID_COLUMN, uid if not declassified else uid),)
    if isinstance(ast, S.Update):
        assignments = ast.assignments
        if declassified:
            # Rewriting the ownership column to 0 *is* the declassification.
            assignments = assignments + ((USER_ID_COLUMN, PUBLIC_USER_ID),)
        return S.Update(ast.table, assignments, ast.where + scope)
    if isinstance(ast, S.Delete):
        return S.Delete(ast.table, ast.where + scope)
    raise S.SqlError(f"not a write: {ast!r}")
