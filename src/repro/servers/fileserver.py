"""A labeled multi-user file server — the running example of Section 5.2.

The file server is trusted by its users: it holds declassification
privilege (``⋆``) for each user's taint compartment so it can serve any
user without accumulating contamination, and it re-applies the owning
user's taint to all file data it returns (*discretionary contamination*
via the CS argument to send).

Policies implemented:

- **Privacy** (Section 5.2): a file created with an owner taint handle
  ``uT`` is returned only with contamination ``uT 3``; processes whose
  receive labels do not admit ``uT 3`` never see the data (the kernel
  drops the reply).
- **Discretionary integrity** (Section 5.4): a file created with a grant
  handle ``uG`` accepts writes only from senders whose verification label
  proves ``V(uG) ≤ 0`` — and, to preserve the ∗-property, whose
  verification label is bounded above by ``{uT 3, uG 0, 2}``, so a writer
  contaminated with some *other* user's secrets cannot launder them into
  this file.

Compartment setup is decentralized: whoever creates a user's handles
grants them to the file server at ``⋆`` on the CREATE message (the DS
label), and the server raises its own receive label to accept that user's
taint.  No central security administrator is involved.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.handles import Handle
from repro.core.labels import Label
from repro.core.levels import L0, L2, L3, STAR
from repro.ipc import protocol as P
from repro.kernel.errors import InvalidArgument
from repro.kernel.syscalls import ChangeLabel, NewPort, Recv, Send, SetPortLabel

#: Modelled cycles per file operation.
FILE_OP_CYCLES = 15_000


def file_server_body(ctx):
    """The file server process.  Publishes ``fs_port``."""
    service = yield NewPort()
    yield SetPortLabel(service, Label.top())
    ctx.env["fs_port"] = service

    # path -> metadata; contents live in accounted memory under "file:<path>".
    files: Dict[str, Dict[str, Optional[Handle]]] = {}

    while True:
        msg = yield Recv(port=service)
        payload = msg.payload
        if not isinstance(payload, dict):
            continue
        mtype = payload.get("type")
        reply = payload.get("reply")
        path = payload.get("path")
        ctx.compute(FILE_OP_CYCLES)

        if mtype == P.CREATE:
            taint = payload.get("taint")
            grant = payload.get("grant")
            if path in files:
                if reply is not None:
                    yield Send(reply, P.reply_to(payload, P.ERROR_R, error="file exists"))
                continue
            if taint is not None:
                try:
                    yield ChangeLabel(raise_receive={taint: L3})
                except InvalidArgument:
                    # Without declassification privilege we would be
                    # permanently contaminated by this compartment.
                    if reply is not None:
                        yield Send(
                            reply,
                            P.reply_to(payload, P.ERROR_R, error="taint not granted"),
                        )
                    continue
            files[path] = {"taint": taint, "grant": grant}
            ctx.mem.store(f"file:{path}", payload.get("data", b""))
            if reply is not None:
                # The ack carries no file data, so it is not contaminated;
                # contaminating it would wall the creator (who holds uT *)
                # off from its own acknowledgment.
                yield Send(reply, P.reply_to(payload, P.CREATE_R, ok=True))

        elif mtype == P.READ:
            meta = files.get(path)
            if meta is None:
                if reply is not None:
                    yield Send(reply, P.reply_to(payload, P.ERROR_R, error="no such file"))
                continue
            data = ctx.mem.load(f"file:{path}")
            if reply is not None:
                # Discretionary contamination: the reply carries the owner's
                # taint, raising the reader's send label (Equation 4).
                yield Send(
                    reply,
                    P.reply_to(payload, P.READ_R, data=data),
                    cs=_taint_label(meta["taint"]),
                )

        elif mtype == P.WRITE:
            meta = files.get(path)
            if meta is None:
                if reply is not None:
                    yield Send(reply, P.reply_to(payload, P.ERROR_R, error="no such file"))
                continue
            grant = meta["grant"]
            taint = meta["taint"]
            verify: Label = msg.verify
            if grant is not None:
                # The sender must prove it speaks for the owner: V(uG) <= 0
                # (Section 5.4's discretionary integrity check).  For files
                # that also carry a taint compartment, V must additionally
                # be bounded by {uT 3, uG 0, 2} so no *foreign* user's
                # contamination can be laundered into this file.
                ok = verify(grant) <= L0
                if ok and taint is not None:
                    ok = verify <= Label({grant: L0, taint: L3}, L2)
                if not ok:
                    if reply is not None:
                        yield Send(
                            reply,
                            P.reply_to(payload, P.ERROR_R, error="write not authorized"),
                        )
                    continue
            ctx.mem.store(f"file:{path}", payload.get("data", b""))
            if reply is not None:
                yield Send(reply, P.reply_to(payload, P.WRITE_R, ok=True))

        elif mtype == "LIST":
            if reply is not None:
                yield Send(reply, P.reply_to(payload, "LIST_R", paths=sorted(files)))


def _taint_label(taint: Optional[Handle]) -> Optional[Label]:
    if taint is None:
        return None
    return Label({taint: L3}, STAR)
