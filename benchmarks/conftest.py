"""Shared machinery for the figure-regenerating benchmarks.

Each ``bench_fig*.py`` regenerates one table or figure from the paper's
Section 9 and prints paper-vs-measured rows.  The expensive experiments
(session sweeps) run once per pytest session and are shared between the
Figure 7 and Figure 9 benches.

Scale: by default the sweeps use a reduced session grid so the whole
benchmark suite finishes in a few minutes.  Set ``REPRO_FULL_SWEEP=1`` for
the paper's full grid (1 … 10,000 sessions; expect ~10 minutes for the
sweep alone).
"""

from __future__ import annotations

import os
from typing import List

import pytest

FULL = os.environ.get("REPRO_FULL_SWEEP") == "1"

#: The paper sweeps 0..10,000 cached sessions (x-axes of Figures 6/7/9).
SESSION_GRID: List[int] = (
    [1, 100, 1000, 3000, 5000, 7500, 10000] if FULL else [1, 100, 1000, 3000]
)
MEMORY_GRID: List[int] = (
    [0, 1000, 3000, 5000, 10000] if FULL else [0, 500, 1000, 2000]
)
MEMORY_GRID_ACTIVE: List[int] = [500, 1500] if not FULL else [1000, 5000]


@pytest.fixture
def report(capsys):
    """Print figure tables past pytest's output capture, so a plain
    ``pytest benchmarks/ --benchmark-only`` shows the regenerated rows."""

    class _Reporter:
        def header(self, title):
            with capsys.disabled():
                print_header(title)

        def series(self, name, xs, ys, unit=""):
            with capsys.disabled():
                print_series(name, xs, ys, unit)

        def compare(self, rows):
            with capsys.disabled():
                paper_vs_measured(rows)

        def line(self, text=""):
            with capsys.disabled():
                print(text)

    return _Reporter()


@pytest.fixture(scope="session")
def session_sweep():
    """The Section 9.2.1 sweep, shared by the Figure 7 and 9 benches."""
    from repro.sim.runner import run_session_sweep

    return run_session_sweep(SESSION_GRID)


def print_header(title: str) -> None:
    bar = "=" * len(title)
    print(f"\n\n{title}\n{bar}")


def print_series(name: str, xs, ys, unit: str = "") -> None:
    print(f"\n{name}")
    for x, y in zip(xs, ys):
        print(f"  {x:>8g}  {y:>12.1f} {unit}")


def paper_vs_measured(rows) -> None:
    """rows: (label, paper value, measured value, unit)."""
    print(f"\n  {'quantity':<44} {'paper':>12} {'measured':>12}")
    for label, paper, measured, unit in rows:
        paper_s = f"{paper:g} {unit}" if isinstance(paper, (int, float)) else str(paper)
        meas_s = f"{measured:g} {unit}" if isinstance(measured, (int, float)) else str(measured)
        print(f"  {label:<44} {paper_s:>12} {meas_s:>12}")
