"""Figure 6: memory used by active and cached web sessions.

Paper: "The system uses approximately 1.5 4KB pages per cached session
... an additional eight pages of memory are used by each active session"
(two stack pages, one message-queue page, five pages of modified heap and
globals).

The bench regenerates both series — one toy session-cache service, N
users, one connection each — and checks the slopes.
"""

import pytest

from benchmarks.conftest import MEMORY_GRID, MEMORY_GRID_ACTIVE
from repro.sim.runner import run_memory_experiment


@pytest.fixture(scope="module")
def cached_points():
    return run_memory_experiment(MEMORY_GRID)


@pytest.fixture(scope="module")
def active_points():
    return run_memory_experiment(MEMORY_GRID_ACTIVE, active=True)


def _slope(points):
    first, last = points[0], points[-1]
    return (last.total_pages - first.total_pages) / (last.sessions - first.sessions)


def test_fig6_cached_sessions(benchmark, report, cached_points):
    report.header("Figure 6 — memory used by cached sessions")
    report.series(
        "cached sessions -> total pages",
        [p.sessions for p in cached_points],
        [p.total_pages for p in cached_points],
        "pages",
    )
    slope = _slope(cached_points)
    report.compare([("pages per cached session", 1.5, round(slope, 2), "pages")])
    assert 1.2 <= slope <= 1.8

    # Kernel-structure share roughly matches the paper's "one complete
    # page [user state]; the remainder ... kernel data structures".
    last = cached_points[-1]
    kernel_pages_per_session = (last.kernel_bytes / 4096) / max(last.sessions, 1)
    assert 0.2 <= kernel_pages_per_session <= 0.8

    # Time one marginal cached session (create site + one connection is
    # what the experiment repeats; time the measured unit instead).
    from repro.sim.runner import build_cache_site
    from repro.sim.workload import HttpClient

    site = build_cache_site(64)
    client = HttpClient(site)
    counter = {"n": 0}

    def one_session():
        i = counter["n"] = counter["n"] + 1
        client.request(f"u{(i - 1) % 64}", f"pw{(i - 1) % 64}", "cache", body=b"s" * 900)

    benchmark.pedantic(one_session, rounds=10, iterations=1)


def test_fig6_active_sessions(benchmark, report, active_points, cached_points):
    report.header("Figure 6 — memory used by active sessions (worst case)")
    report.series(
        "active sessions -> total pages",
        [p.sessions for p in active_points],
        [p.total_pages for p in active_points],
        "pages",
    )
    slope = _slope(active_points)
    report.compare(
        [
            ("pages per active session", 1.5 + 8, round(slope, 2), "pages"),
            (
                "extra pages vs cached (stack+msgq+heap)",
                8.0,
                round(slope - _slope(cached_points), 2),
                "pages",
            ),
        ]
    )
    assert 8.5 <= slope <= 10.5
    assert 7.0 <= slope - _slope(cached_points) <= 9.0

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_fig6_breakdown_is_accounted(cached_points):
    # Every byte in the report comes from a concrete structure.
    last = cached_points[-1]
    total_known = sum(last.breakdown.values())
    assert total_known == last.kernel_bytes
    # Labels and vnodes are the dominant kernel terms, as Section 9.1
    # suggests ("event processes, labels, and handles").
    assert last.breakdown["label_bytes"] > last.breakdown["ep_bytes"]
