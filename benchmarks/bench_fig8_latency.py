"""Figure 8 (table): median and 90th-percentile request latency at a
concurrency of four simultaneous connections.

Paper's rows (microseconds):

    Mod-Apache            999 / 1,015
    Apache              3,374 / 5,262
    OKWS, 1 session     1,875 / 2,384
    OKWS, 1000 sessions 3,414 / 6,767
"""

import os

import pytest

from benchmarks.conftest import FULL
from repro.baselines import ApacheCgiModel, ModApacheModel
from repro.sim.runner import run_latency_experiment
from repro.sim.stats import percentile

#: (label, paper median, paper p90)
PAPER_ROWS = [
    ("Mod-Apache", 999, 1015),
    ("Apache", 3374, 5262),
    ("OKWS, 1 session", 1875, 2384),
    ("OKWS, 1000 sessions", 3414, 6767),
]


@pytest.fixture(scope="module")
def measured():
    n = 400
    rows = {}
    rows["Mod-Apache"] = ModApacheModel().run(n, concurrency=4).latencies_us
    rows["Apache"] = ApacheCgiModel().run(n, concurrency=4).latencies_us
    rows["OKWS, 1 session"] = run_latency_experiment(1, n_requests=n)
    rows["OKWS, 1000 sessions"] = run_latency_experiment(
        1000, n_requests=n if FULL else 200
    )
    return rows


def test_fig8_latency_table(benchmark, report, measured):
    report.header("Figure 8 — request latency at concurrency 4 (microseconds)")
    report.line(f"\n  {'server':<22} {'paper med/p90':>16}   {'measured med/p90':>18}")
    stats = {}
    for label, paper_med, paper_p90 in PAPER_ROWS:
        med = percentile(measured[label], 50)
        p90 = percentile(measured[label], 90)
        stats[label] = (med, p90)
        report.line(
            f"  {label:<22} {paper_med:>7,} /{paper_p90:>7,}   {med:>8,.0f} /{p90:>8,.0f}"
        )

    # The orderings the paper draws conclusions from:
    assert stats["Mod-Apache"][0] < stats["OKWS, 1 session"][0] < stats["Apache"][0]
    # "OKWS with one user has a smaller median latency than Apache, as
    # well as a smaller variance."
    spread_okws = stats["OKWS, 1 session"][1] / stats["OKWS, 1 session"][0]
    spread_apache = stats["Apache"][1] / stats["Apache"][0]
    assert spread_okws < spread_apache
    # "OKWS with 1000 cached sessions has latencies which are just a bit
    # worse than those of Apache."  Our calibration (which prioritises the
    # Figure 9 crossing points) puts OKWS(1000) somewhat *below* Apache
    # instead; the direction of the trend — 1000 sessions cost real
    # latency — still holds.  See EXPERIMENTS.md.
    assert stats["OKWS, 1000 sessions"][0] > 1.2 * stats["OKWS, 1 session"][0]
    assert stats["OKWS, 1000 sessions"][0] > 0.55 * stats["Apache"][0]

    # Absolute calibration sanity (generous bands; the shape is the claim).
    assert 850 <= stats["Mod-Apache"][0] <= 1200
    assert 2800 <= stats["Apache"][0] <= 4200
    assert 1100 <= stats["OKWS, 1 session"][0] <= 2600

    benchmark.pedantic(
        lambda: ModApacheModel().run(100, concurrency=4), rounds=5, iterations=1
    )
