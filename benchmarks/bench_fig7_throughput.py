"""Figure 7: throughput for various numbers of cached sessions in OKWS,
compared with Apache and Mod-Apache.

Paper's qualitative shape (the absolute numbers came from hardware):

- with one session, OKWS beats Apache and reaches a bit over half of
  Mod-Apache;
- OKWS degrades roughly linearly with cached sessions (label and
  database costs);
- it crosses below Apache somewhere past a thousand sessions and ends
  near half of Apache at 10,000.
"""

import pytest

from benchmarks.conftest import FULL, SESSION_GRID
from repro.baselines import ApacheCgiModel, ModApacheModel


@pytest.fixture(scope="module")
def apache():
    return ApacheCgiModel().run(4000, concurrency=400)


@pytest.fixture(scope="module")
def mod_apache():
    return ModApacheModel().run(4000, concurrency=16)


def test_fig7_throughput(benchmark, report, session_sweep, apache, mod_apache):
    report.header("Figure 7 — throughput vs cached OKWS sessions")
    report.series(
        "cached sessions -> connections/second (OKWS)",
        [p.sessions for p in session_sweep],
        [p.throughput for p in session_sweep],
        "conn/s",
    )
    report.line(f"\n  Apache (CGI, conc 400):   {apache.throughput:8.0f} conn/s")
    report.line(f"  Mod-Apache (conc 16):     {mod_apache.throughput:8.0f} conn/s")

    okws_1 = session_sweep[0].throughput
    okws_last = session_sweep[-1].throughput
    report.compare(
        [
            ("OKWS(1) / Mod-Apache ('a bit over half')", 0.55, round(okws_1 / mod_apache.throughput, 2), "x"),
            ("OKWS(1) vs Apache ('performs better')", ">1", round(okws_1 / apache.throughput, 2), "x"),
            (
                f"OKWS({session_sweep[-1].sessions}) / Apache"
                + (" ('about half')" if FULL else " (reduced grid)"),
                0.5 if FULL else "n/a",
                round(okws_last / apache.throughput, 2),
                "x",
            ),
        ]
    )

    # Shape assertions.
    assert okws_1 > apache.throughput
    assert 0.4 <= okws_1 / mod_apache.throughput <= 0.7
    throughputs = [p.throughput for p in session_sweep]
    assert all(a >= b for a, b in zip(throughputs, throughputs[1:])), "must degrade monotonically"
    if FULL:
        assert okws_last < apache.throughput          # the crossover happened
        assert okws_last / apache.throughput > 0.35   # "approximately half"

    # Timed unit: one complete authenticated connection on a warm site.
    from repro.sim.runner import build_echo_site
    from repro.sim.workload import HttpClient

    site = build_echo_site(16)
    client = HttpClient(site)
    counter = {"n": 0}

    def one_connection():
        i = counter["n"] = counter["n"] + 1
        client.request(f"u{i % 16}", f"pw{i % 16}", "echo", args={"length": 11})

    benchmark.pedantic(one_connection, rounds=10, iterations=1)


def test_fig7_degradation_is_linear_not_quadratic(benchmark, report, session_sweep):
    # Section 9.3: "linear scaling factors ... lead to linear performance
    # degradation ... no obviously quadratic or exponential factors".
    points = [p for p in session_sweep if p.sessions >= 100]
    if len(points) < 3:
        pytest.skip("needs at least three sweep points")
    xs = [p.sessions for p in points]
    ys = [p.total_kcycles for p in points]
    # Fit cycles-per-connection = a + b*s on the first and last point, then
    # check the middle points stay within 25% of the line.
    b = (ys[-1] - ys[0]) / (xs[-1] - xs[0])
    a = ys[0] - b * xs[0]
    report.header("Figure 7/9 — linearity check (Kcycles/connection)")
    rows = []
    for x, y in zip(xs, ys):
        predicted = a + b * x
        rows.append((f"sessions={x}", round(predicted, 0), round(y, 0), "Kcyc"))
        assert abs(y - predicted) / predicted < 0.25
    report.compare(rows)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
