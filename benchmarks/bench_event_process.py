"""Event-process microbenchmarks (paper Sections 6.1–6.2):

- kernel-state sizes: 44 bytes per EP vs 320 per process;
- EP creation vs full process spawn, in modelled cycles;
- memory cost of dormant vs active EPs;
- resume-with-state (the session path) end to end.
"""

import pytest

from repro.core.labels import Label
from repro.kernel import (
    EpCheckpoint,
    EpClean,
    EpYield,
    Kernel,
    NewPort,
    Recv,
    Send,
    SetPortLabel,
)
from repro.kernel.clock import CostModel
from repro.kernel.event_process import EP_STRUCT_BYTES
from repro.kernel.process import PROCESS_STRUCT_BYTES


def _echo_realm(kernel):
    """A base process whose EPs echo and persist a counter."""

    def event_body(ectx, msg):
        count = 0
        my_port = yield NewPort()
        yield SetPortLabel(my_port, Label.top())
        while True:
            count += 1
            ectx.mem.store("session", count)
            yield Send(msg.payload["reply"], {"port": my_port, "count": count})
            yield EpClean(keep=("session",))
            msg = yield EpYield()

    def body(ctx):
        port = yield NewPort()
        yield SetPortLabel(port, Label.top())
        ctx.env["port"] = port
        yield EpCheckpoint(event_body)

    proc = kernel.spawn(body, "worker")
    kernel.run()
    return proc


def test_kernel_state_sizes(benchmark, report):
    report.header("Event processes — kernel state (paper Section 6.1)")
    report.compare(
        [
            ("event process struct", 44, EP_STRUCT_BYTES, "bytes"),
            ("minimal process struct", 320, PROCESS_STRUCT_BYTES, "bytes"),
            ("ratio", round(320 / 44, 1), round(PROCESS_STRUCT_BYTES / EP_STRUCT_BYTES, 1), "x"),
        ]
    )
    cost = CostModel()
    report.compare(
        [
            ("modelled ep_create", "-", cost.ep_create, "cycles"),
            ("modelled process spawn", "-", cost.spawn, "cycles"),
        ]
    )
    assert cost.ep_create < cost.spawn / 10
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_ep_create_throughput(benchmark, report):
    kernel = Kernel()
    worker = _echo_realm(kernel)
    driver_state = {"reply": None, "n": 0}

    def setup_driver(ctx):
        reply = yield NewPort()
        yield SetPortLabel(reply, Label.top())
        ctx.env["reply"] = reply
        while True:
            yield Recv(port=reply)

    collector = kernel.spawn(setup_driver, "collector")
    kernel.run()
    reply = collector.env["reply"]

    def create_one_ep():
        driver_state["n"] += 1
        kernel.inject(worker.env["port"], {"reply": reply})
        kernel.run()

    benchmark.pedantic(create_one_ep, rounds=50, iterations=1)
    assert len(worker.event_processes) == driver_state["n"]
    report.header("Event processes — creation")
    mem = kernel.memory_report()
    per_ep_pages = mem["total_pages"] / max(driver_state["n"], 1)
    report.compare(
        [
            ("live event processes", "-", len(worker.event_processes), ""),
            ("total pages / cached EP (incl. base)", "~1.5", round(per_ep_pages, 2), "pages"),
        ]
    )


def test_ep_resume_keeps_state(benchmark, report):
    kernel = Kernel()
    worker = _echo_realm(kernel)
    seen = []

    def driver(ctx):
        reply = yield NewPort()
        yield SetPortLabel(reply, Label.top())
        yield Send(ctx.env["wport"], {"reply": reply})
        m = yield Recv(port=reply)
        ep_port = m.payload["port"]
        ctx.env["ep_port"] = ep_port
        ctx.env["reply"] = reply
        while True:
            m = yield Recv(port=reply)
            seen.append(m.payload["count"])

    d = kernel.spawn(driver, "driver", env={"wport": worker.env["port"]})
    kernel.run()

    def resume_once():
        kernel.inject(d.env["ep_port"], {"reply": d.env["reply"]})
        kernel.run()

    benchmark.pedantic(resume_once, rounds=50, iterations=1)
    report.header("Event processes — resume with session state")
    report.compare(
        [
            ("sessions survive resumes (monotonic counter)", "yes",
             "yes" if seen == sorted(seen) and len(set(seen)) == len(seen) else "NO", ""),
            ("resumes measured", "-", len(seen), ""),
        ]
    )
    assert seen == sorted(seen)
    # One EP the whole time — not one per message.
    assert len(worker.event_processes) == 1


def test_dormant_ep_memory_is_one_page(benchmark, report):
    kernel = Kernel()
    worker = _echo_realm(kernel)
    collector_seen = []

    def collector(ctx):
        reply = yield NewPort()
        yield SetPortLabel(reply, Label.top())
        ctx.env["reply"] = reply
        while True:
            msg = yield Recv(port=reply)
            collector_seen.append(msg.payload["count"])

    c = kernel.spawn(collector, "collector")
    kernel.run()
    base_pages = kernel.accountant.in_use
    for _ in range(100):
        kernel.inject(worker.env["port"], {"reply": c.env["reply"]})
    kernel.run()
    grown = kernel.accountant.in_use - base_pages
    report.header("Event processes — dormant (cached) memory")
    report.compare(
        [("user pages per dormant EP", 1.0, round(grown / 100, 2), "pages")]
    )
    # ep_clean(keep=session) leaves exactly the session page.
    assert grown == 100
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
