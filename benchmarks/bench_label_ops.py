"""Label-operation microbenchmarks and the implementation ablation
(paper Sections 5.6 and 9.3).

Two questions:

1. **Scaling** — the paper: "In the worst case, of course, operations
   like ⊑, ⊓, and ⊔ are linear in the size of their input labels", and
   the min/max chunk hints short-circuit the easy cases.  Measured here
   on labels from 64 to 16,384 entries.

2. **Ablation: 2005 costs vs the fused operations.**  The paper lists the
   key optimisation as future work: "Optimization opportunities remain,
   for example when most of a label's handle levels are ⋆".  Our fused
   operations (repro.core.labelops) implement exactly that.  The ablation
   reruns the end-to-end session sweep with the kernel billing the fused
   costs (``label_cost_mode="fused"``) instead of the modelled 2005 costs,
   showing how much of Figure 9's Kernel IPC growth the optimisation
   removes.
"""

import pytest

from benchmarks.conftest import FULL
from repro.core.chunks import ChunkedLabel, OpStats
from repro.core.labels import Label
from repro.core.levels import L1, L2, L3, STAR
from repro.kernel.clock import KERNEL_IPC


def _big(n, level=L3, default=L1):
    return ChunkedLabel.from_label(Label({i * 3 + 1: level for i in range(n)}, default))


SIZES = [64, 512, 4096, 16384]


@pytest.mark.parametrize("size", SIZES)
def test_scaling_lub_worst_case(benchmark, size):
    # Interleaved levels: no short-circuit applies, full merge.
    a = ChunkedLabel.from_label(Label({i * 2: L3 if i % 2 else L1 for i in range(size)}, L2))
    b = ChunkedLabel.from_label(Label({i * 2 + 1: L1 if i % 2 else L3 for i in range(size)}, L2))
    result = benchmark(lambda: a.lub(b, OpStats()))
    # Half of each label's entries rise to 3; the other half normalise
    # into the default — the merge still walked all 2*size inputs.
    assert len(result) == size


@pytest.mark.parametrize("size", SIZES)
def test_scaling_lub_short_circuit_is_o1(benchmark, size):
    big = _big(size, level=L2, default=L2)
    low = ChunkedLabel.from_label(Label.bottom())
    stats = OpStats()
    result = benchmark(lambda: big.lub(low, stats))
    assert result is big   # the paper's min/max hint

def test_short_circuit_constant_work():
    # The skip does not touch entries, at any size.
    for size in SIZES:
        stats = OpStats()
        _big(size, level=L2, default=L2).lub(ChunkedLabel.from_label(Label.bottom()), stats)
        assert stats.entries_scanned == 0


@pytest.mark.parametrize("size", SIZES)
def test_scaling_fused_contamination_on_starry_label(benchmark, size):
    # The future-work case: a receiver whose label is almost all ⋆ (netd
    # with one star per user).  The fused effect touches only the small
    # message labels.
    from repro.core.labelops import apply_send_effects

    qs = _big(size, level=STAR)
    es = ChunkedLabel.from_label(Label({999999999: L3}, L1))
    ds = ChunkedLabel.from_label(Label.top())
    stats = OpStats()
    benchmark(lambda: apply_send_effects(qs, es, ds, stats))


def test_ablation_paper_vs_fused_costs(benchmark, report):
    """End to end: the same workload billed both ways."""
    from repro.sim.runner import run_session_sweep

    grid = [100, 1000] if not FULL else [100, 1000, 5000]
    paper_mode = run_session_sweep(grid, label_cost_mode="paper")
    fused_mode = run_session_sweep(grid, label_cost_mode="fused")

    report.header("Ablation — Kernel IPC Kcycles/connection: 2005 costs vs fused ops")
    report.line(f"\n  {'sessions':>8} {'paper-mode':>12} {'fused-mode':>12} {'saved':>8}")
    for p, f in zip(paper_mode, fused_mode):
        ipc_p = p.components_kcycles[KERNEL_IPC]
        ipc_f = f.components_kcycles[KERNEL_IPC]
        report.line(
            f"  {p.sessions:>8} {ipc_p:>12.0f} {ipc_f:>12.0f} "
            f"{(1 - ipc_f / ipc_p) * 100:>7.0f}%"
        )
    # The optimisation kills the *growth*: fused IPC cost is nearly flat.
    growth_paper = (
        paper_mode[-1].components_kcycles[KERNEL_IPC]
        - paper_mode[0].components_kcycles[KERNEL_IPC]
    )
    growth_fused = (
        fused_mode[-1].components_kcycles[KERNEL_IPC]
        - fused_mode[0].components_kcycles[KERNEL_IPC]
    )
    assert growth_fused < 0.5 * growth_paper
    report.line(
        f"\n  IPC growth over the grid: paper-mode +{growth_paper:.0f}K, "
        f"fused +{growth_fused:.0f}K per connection"
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_sparse_update_is_chunk_local(benchmark):
    from repro.core.labelops import sparse_update

    big = _big(16384)
    benchmark(lambda: sparse_update(big, {5: STAR}, OpStats()))
    # One fresh run touches far fewer entries than the label holds.
    stats = OpStats()
    sparse_update(big, {5: STAR}, stats)
    assert stats.entries_scanned < len(big) / 10
