"""Figure 9: the average cost (Kcycles/connection) of Asbestos components
as the number of cached sessions increases.

Paper's qualitative claims:

- with one session, most processing time is OKWS code and the network
  stack;
- database overhead from per-connection authentication grows quickly;
- kernel IPC + label time grows linearly, passing the network stack near
  3,000 sessions and matching all of OKWS near 7,500;
- degradation is linear — "no obviously quadratic or exponential factors".

The component attribution comes from the simulator's cycle clock: every
send/recv charges KERNEL_IPC for the label work the 2005 implementation
would perform on the *actual current label sizes* (netd's accumulated
declassifications, idd's two stars per user, ...).
"""

import pytest

from benchmarks.conftest import FULL
from repro.kernel.clock import CATEGORIES, KERNEL_IPC, NETWORK, OKDB, OKWS


def _crossing(xs, a_series, b_series):
    """x where series a passes series b (linear interpolation), or None."""
    for i in range(1, len(xs)):
        d_prev = a_series[i - 1] - b_series[i - 1]
        d_here = a_series[i] - b_series[i]
        if d_prev < 0 <= d_here:
            frac = -d_prev / (d_here - d_prev)
            return xs[i - 1] + frac * (xs[i] - xs[i - 1])
    return None


def test_fig9_component_costs(benchmark, report, session_sweep):
    report.header("Figure 9 — Kcycles/connection by component")
    header = f"  {'sessions':>8}" + "".join(f"{c:>12}" for c in CATEGORIES) + f"{'total':>10}"
    report.line("")
    report.line(header)
    for p in session_sweep:
        row = f"  {p.sessions:>8}" + "".join(
            f"{p.components_kcycles.get(c, 0):>12.0f}" for c in CATEGORIES
        )
        report.line(row + f"{p.total_kcycles:>10.0f}")

    xs = [p.sessions for p in session_sweep]
    ipc = [p.components_kcycles.get(KERNEL_IPC, 0) for p in session_sweep]
    net = [p.components_kcycles.get(NETWORK, 0) for p in session_sweep]
    okws = [p.components_kcycles.get(OKWS, 0) for p in session_sweep]
    okdb = [p.components_kcycles.get(OKDB, 0) for p in session_sweep]

    ipc_x_net = _crossing(xs, ipc, net)
    ipc_x_okws = _crossing(xs, ipc, okws)
    report.compare(
        [
            ("sessions where Kernel IPC passes Network", 3000,
             round(ipc_x_net) if ipc_x_net else "beyond grid", ""),
            ("sessions where Kernel IPC meets OKWS", 7500,
             round(ipc_x_okws) if ipc_x_okws else "beyond grid", ""),
        ]
    )

    # With one session: OKWS + Network dominate.
    first = session_sweep[0].components_kcycles
    assert first[NETWORK] + first[OKWS] > 0.6 * sum(first.values())
    # Database cost grows with sessions (per-connection authentication
    # scans the whole user table).
    assert okdb[-1] > okdb[0] * 3 or okdb[-1] - okdb[0] > 100
    # IPC grows and eventually dominates Network.
    assert ipc[-1] > ipc[0]
    if FULL:
        assert ipc_x_net is not None and 2000 <= ipc_x_net <= 4500
        assert ipc_x_okws is None or ipc_x_okws >= 5500

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_fig9_label_sizes_grow_as_paper_describes(benchmark, report, session_sweep):
    """Section 9.3's structural claims, measured on live kernel state:
    'idd and ok-dbproxy's send labels will contain more than 2 handles per
    user; netd's receive label will have accumulated [one] declassification
    [per user]; and ok-demux will hold [one session handle per session].'"""
    from repro.sim.runner import build_echo_site
    from repro.sim.workload import HttpClient

    n = 200
    site = build_echo_site(n)
    client = HttpClient(site)
    client.run_batch(
        [(f"u{i}", f"pw{i}", "echo", None, None) for i in range(n)], concurrency=16
    )
    procs = {p.name: p for p in site.kernel.processes.values()}
    report.header("Figure 9 — label growth per session (200 sessions)")
    rows = [
        ("idd send-label entries / user", 2.0, round(len(procs["idd"].send_label) / n, 2), ""),
        ("ok-dbproxy send-label entries / user", 2.0,
         round(len(procs["ok-dbproxy"].send_label) / n, 2), ""),
        ("netd receive-label entries / user", 1.0,
         round(len(procs["netd"].receive_label) / n, 2), ""),
        ("ok-demux send-label entries / session", 3.0,
         round(len(procs["ok-demux"].send_label) / n, 2), ""),
    ]
    report.compare(rows)
    assert len(procs["idd"].send_label) >= 2 * n
    assert len(procs["ok-dbproxy"].send_label) >= 2 * n
    assert len(procs["netd"].receive_label) >= n
    assert len(procs["ok-demux"].send_label) >= n

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
