"""Design ablation: event processes vs the forked-server model (paper
Section 6's motivation).

    "One fix is a forked server model, in which each active user has a
    forked copy of the server process; unfortunately, this resource-heavy
    architecture burdens the OS with many thousands of processes that
    need memory allocated and CPU time scheduled."

Both architectures are built on the same simulated kernel and hold the
same ~1 KB of per-user session state; the bench compares their memory
footprints and creation costs per user.
"""

import pytest

from repro.core.labels import Label
from repro.kernel import (
    EpCheckpoint,
    EpClean,
    EpYield,
    Kernel,
    NewPort,
    Recv,
    Send,
    SetPortLabel,
    Spawn,
)
from repro.kernel.clock import OTHER
from repro.kernel.memory import PAGE_SIZE

SESSIONS = 300
SESSION_BYTES = 1000


def _measure_ep_model():
    """One base process, one event process per user session."""
    kernel = Kernel()

    def event_body(ectx, msg):
        ectx.mem.store("session", b"s" * SESSION_BYTES)
        yield Send(msg.payload["reply"], {"ok": True})
        yield EpClean(keep=("session",))
        yield EpYield()

    def base(ctx):
        port = yield NewPort()
        yield SetPortLabel(port, Label.top())
        ctx.env["port"] = port
        yield EpCheckpoint(event_body)

    def collector(ctx):
        reply = yield NewPort()
        yield SetPortLabel(reply, Label.top())
        ctx.env["reply"] = reply
        while True:
            yield Recv(port=reply)

    worker = kernel.spawn(base, "worker")
    coll = kernel.spawn(collector, "collector")
    kernel.run()
    baseline = kernel.memory_report()["total_bytes"]
    cycles_before = kernel.clock.now
    for _ in range(SESSIONS):
        kernel.inject(worker.env["port"], {"reply": coll.env["reply"]})
    kernel.run()
    report = kernel.memory_report()
    return (
        (report["total_bytes"] - baseline) / SESSIONS / PAGE_SIZE,
        (kernel.clock.now - cycles_before) / SESSIONS,
        kernel,
    )


def _measure_forked_model():
    """One full process per user session (the pre-Asbestos design)."""
    kernel = Kernel()

    def session_proc(ctx):
        ctx.mem.store("session", b"s" * SESSION_BYTES)
        port = yield NewPort()
        yield SetPortLabel(port, Label.top())
        yield Send(ctx.env["reply"], {"ok": True})
        while True:
            yield Recv(port=port)

    def forker(ctx):
        reply = yield NewPort()
        yield SetPortLabel(reply, Label.top())
        for i in range(SESSIONS):
            yield Spawn(session_proc, name=f"session{i}", env={"reply": reply})
            yield Recv(port=reply)

    baseline_kernel = Kernel()
    baseline = baseline_kernel.memory_report()["total_bytes"]
    cycles_before = kernel.clock.now
    kernel.spawn(forker, "forker")
    kernel.run()
    report = kernel.memory_report()
    return (
        (report["total_bytes"] - baseline) / SESSIONS / PAGE_SIZE,
        (kernel.clock.now - cycles_before) / SESSIONS,
        kernel,
    )


def test_fork_vs_event_process(benchmark, report):
    ep_pages, ep_cycles, ep_kernel = _measure_ep_model()
    fork_pages, fork_cycles, fork_kernel = _measure_forked_model()

    report.header("Ablation — event processes vs forked processes "
                  f"({SESSIONS} sessions, ~{SESSION_BYTES} B state each)")
    report.compare(
        [
            ("pages per session, event processes", "~1.5", round(ep_pages, 2), "pages"),
            ("pages per session, forked processes", "-", round(fork_pages, 2), "pages"),
            ("memory ratio fork/EP", ">2", round(fork_pages / ep_pages, 1), "x"),
            ("creation cycles per session, EP", "-", round(ep_cycles), "cyc"),
            ("creation cycles per session, fork", "-", round(fork_cycles), "cyc"),
            ("creation ratio fork/EP", ">3", round(fork_cycles / ep_cycles, 1), "x"),
        ]
    )
    # The paper's claims: EPs cost ~1.5 pages; forks are several times
    # heavier in both memory and creation cost, and each fork is one more
    # schedulable process (EPs share one).
    assert ep_pages < 2.0
    assert fork_pages / ep_pages > 2.0
    assert fork_cycles / ep_cycles > 3.0
    assert len(fork_kernel.processes) >= SESSIONS
    assert len(ep_kernel.processes) < 5

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
