#!/usr/bin/env python3
"""The paper's Section 5.2 worked example (Figure 2), live.

A trusted multi-user file server, shells for users u and v, and u's
terminal.  The system's goal: u's information passes freely to u's
terminal while v's (and everyone else's) cannot escape there.

The file server holds declassification privilege (⋆) for both users'
compartments — so it serves everyone without accumulating taint — and
re-applies the owner's taint to all file data it returns.

Run:  python examples/file_server_privacy.py
"""

from repro.core.labels import Label
from repro.core.levels import L3, STAR
from repro.ipc import protocol as P
from repro.ipc.rpc import Channel
from repro.kernel import Kernel, NewHandle, NewPort, Recv, Send, SetPortLabel, Spawn
from repro.servers.fileserver import file_server_body


def main() -> None:
    kernel = Kernel()
    fs = kernel.spawn(file_server_body, "fs")
    kernel.run()
    fs_port = fs.env["fs_port"]
    terminal_output = []

    def terminal(ctx):
        port = yield NewPort()
        yield SetPortLabel(port, Label.top())
        yield Send(ctx.env["mgr"], {"who": "UT", "port": port})
        while True:
            msg = yield Recv(port=port)
            if "data" in msg.payload:
                terminal_output.append((msg.payload["from"], msg.payload["data"]))

    def shell(ctx):
        who = ctx.env["who"]
        chan = yield from Channel.open()
        yield Send(ctx.env["mgr"], {"who": who, "port": chan.port})
        setup = yield Recv(port=chan.port)
        terminal_port = setup.payload["terminal"]
        # Read u's secret file and try to display it on u's terminal.
        r = yield from chan.call(fs_port, P.request(P.READ, path="/home/u/secret"))
        yield Send(terminal_port, {"from": who, "data": r.payload["data"]})
        print(f"  shell {who}: read the file and wrote it to the terminal")

    def login_manager(ctx):
        # Decentralized compartment creation: no security administrator.
        uT = yield NewHandle()
        vT = yield NewHandle()
        mgr = yield NewPort()
        yield SetPortLabel(mgr, Label.top())
        chan = yield from Channel.open()
        # Trust the file server with u's compartment and store the secret.
        yield from chan.call(
            fs_port,
            P.request(P.CREATE, path="/home/u/secret", taint=uT, data=b"my diary"),
            ds=Label({uT: STAR}, L3),
        )
        yield Spawn(terminal, name="UT", env={"mgr": mgr})
        yield Spawn(shell, name="U", env={"mgr": mgr, "who": "U"})
        yield Spawn(shell, name="V", env={"mgr": mgr, "who": "V"})
        ports = {}
        for _ in range(3):
            msg = yield Recv(port=mgr)
            ports[msg.payload["who"]] = msg.payload["port"]
        # Figure 2's labels: UT and U are labelled with uT (send {uT 3, 1},
        # receive {uT 3, 2}); V with vT.
        yield Send(ports["UT"], {"setup": True},
                   cs=Label({uT: L3}, STAR),
                   dr=Label({uT: L3}, STAR))
        yield Send(ports["U"], {"terminal": ports["UT"]},
                   cs=Label({uT: L3}, STAR),
                   dr=Label({uT: L3}, STAR))
        yield Send(ports["V"], {"terminal": ports["UT"]},
                   cs=Label({vT: L3}, STAR),
                   dr=Label({vT: L3}, STAR))

    print("booting Figure 2's world...")
    kernel.spawn(login_manager, "login-manager")
    kernel.run()

    print()
    print("terminal output:", terminal_output)
    print("kernel drops:   ", kernel.drop_log.records)
    assert terminal_output == [("U", b"my diary")]
    # V's READ_R reply was dropped by the kernel: VS ⋢ V's clearance for uT.
    assert kernel.drop_log.count("label-check") == 1
    print()
    print("U's data flowed to U's terminal; V never even received the file")
    print("contents — the file server's reply to V was dropped at V's own")
    print("receive label, before any code V controls could run.")


if __name__ == "__main__":
    main()
