#!/usr/bin/env python3
"""The mail-reader / untrusted-attachment example (paper Section 5.5).

A mail reader must accept contamination from ordinary system processes
(the file system, say) but wants to talk to an untrusted attachment
viewer *without* accepting contamination from it — verification labels
can't help, because by the time V is inspected the taint has landed.

The fix is the *port label*: a verification label imposed by the
receiver.  The mail reader gives its attachment-facing port the label
``{2}``; the moment the compromised viewer picks up high taint, the
kernel itself stops delivering its messages — before any mail-reader
code runs.

Run:  python examples/mail_reader.py
"""

from repro.core.labels import Label
from repro.core.levels import L1, L2, L3, STAR
from repro.kernel import (
    ChangeLabel,
    GetLabels,
    Kernel,
    NewHandle,
    NewPort,
    Recv,
    Send,
    SetPortLabel,
)


def main() -> None:
    kernel = Kernel()
    inbox_log = []

    def mail_reader(ctx):
        # Port for trusted system services: wide open.
        system_port = yield NewPort()
        yield SetPortLabel(system_port, Label.top())
        # Port for the attachment viewer: pR = {2} — an untainted sender
        # passes (send default 1 <= 2), a tainted one is refused in-kernel.
        attachment_port = yield NewPort()
        yield SetPortLabel(attachment_port, Label({}, L2))
        ctx.env["system_port"] = system_port
        ctx.env["attachment_port"] = attachment_port
        while True:
            msg = yield Recv()
            send, _ = yield GetLabels()
            taint = [lvl for _, lvl in send.entries() if lvl != STAR]
            inbox_log.append((msg.payload, taint))

    reader = kernel.spawn(mail_reader, "mail-reader")
    kernel.run()

    def filesystem(ctx):
        # A system service whose messages the reader must accept, even
        # with mild (level-2) contamination.
        h = yield NewHandle()
        yield Send(
            reader.env["system_port"],
            {"from": "fs", "mail": "1 new message"},
            cs=Label({h: L2}, STAR),
        )

    def attachment_viewer(ctx):
        # Phase 1: clean, chats with the reader normally.
        yield Send(reader.env["attachment_port"], {"from": "viewer", "status": "rendering"})
        # Phase 2: it opens the malicious attachment and picks up taint.
        evil = yield NewHandle()
        yield ChangeLabel(send=Label({evil: STAR}, L1).with_entry(evil, L3))
        # Phase 3: tries to keep talking (exfiltrate into the reader) —
        # the attack this example exists to stop.  # asblint: ignore[ASB002]
        yield Send(reader.env["attachment_port"], {"from": "viewer", "status": "pwned :)"})

    kernel.spawn(filesystem, "filesystem")
    kernel.run()
    kernel.spawn(attachment_viewer, "attachment-viewer")
    kernel.run()

    print("mail reader received:")
    for payload, taint in inbox_log:
        print(f"  {payload}   (reader taint above *: {taint})")
    print("kernel drops:", kernel.drop_log.records)

    payloads = [p for p, _ in inbox_log]
    assert {"from": "fs", "mail": "1 new message"} in payloads
    assert {"from": "viewer", "status": "rendering"} in payloads
    assert not any(p.get("status") == "pwned :)" for p in payloads)
    # The reader accepted the filesystem's level-2 contamination...
    assert any(taint == [L2] for _, taint in inbox_log)
    print()
    print("The clean viewer chatted fine; after it got tainted the kernel")
    print("refused its sends at the port label — the reader never saw them")
    print("and never risked the contamination. This is a capability-style")
    print("send right, revoked automatically by information flow.")


if __name__ == "__main__":
    main()
