#!/usr/bin/env python3
"""The OKWS web server on Asbestos, end to end (paper Section 7).

Boots the full process suite of Figure 1 — netd, launcher, ok-demux, idd,
ok-dbproxy, per-service workers, a declassifier — then plays three users
against it:

- per-user sessions cached in event processes (Section 7.3);
- a database-backed notes service whose isolation is enforced by the
  kernel dropping other users' rows (Section 7.5);
- decentralized declassification: alice publishes her profile without any
  involvement from idd (Section 7.6);
- a compromised worker trying, and failing, to leak.

Run:  python examples/okws_webserver.py
"""

from repro.core.labels import Label
from repro.kernel.syscalls import NewPort, Recv, Send, SetPortLabel
from repro.okws import ServiceConfig, launch
from repro.okws.services import (
    notes_handler,
    profile_declassifier_handler,
    profile_handler,
    session_cache_handler,
)
from repro.sim.workload import HttpClient

STOLEN = []


def compromised_handler(ectx, request):
    """A worker an attacker owns: it grabs the session and mails it to the
    attacker's drop box.  (The send will 'succeed'.)"""
    request.session["secret"] = request.body
    if DROPBOX:
        yield Send(DROPBOX[0], {"stolen": dict(request.session)})
    return {"headers": "HTTP/1.0 200 OK\r\n\r\n", "body": "served normally"}


DROPBOX = []


def main() -> None:
    site = launch(
        services=[
            ServiceConfig("cache", session_cache_handler),
            ServiceConfig("notes", notes_handler),
            ServiceConfig("profile", profile_handler),
            ServiceConfig("publish", profile_declassifier_handler, declassifier=True),
            ServiceConfig("pwned", compromised_handler),
        ],
        users=[("alice", "pw-a"), ("bob", "pw-b"), ("carol", "pw-c")],
        schema=[
            "CREATE TABLE notes (author TEXT, text TEXT)",
            "CREATE TABLE profiles (owner TEXT, bio TEXT)",
        ],
    )
    client = HttpClient(site)
    print("OKWS is up.  processes:",
          sorted(p.name for p in site.kernel.processes.values()))

    # --- sessions ---------------------------------------------------------------
    print("\n== sessions (event processes) ==")
    r1 = client.request("alice", "pw-a", "cache", body=b"visit-1 state")
    r2 = client.request("alice", "pw-a", "cache", body=b"visit-2 state")
    print("alice visit 2 sees visit 1's data:", r2.body[:13], "| hits:", r2.payload["hits"])
    workers = {p.name: p for p in site.kernel.processes.values()}
    print("cache worker event processes:", len(workers["worker-cache"].event_processes))

    # --- database isolation --------------------------------------------------------
    print("\n== notes: kernel-enforced row isolation ==")
    client.request("alice", "pw-a", "notes", body="buy a unicorn", args={"op": "add"})
    client.request("bob", "pw-b", "notes", body="world domination", args={"op": "add"})
    print("alice sees:", client.request("alice", "pw-a", "notes", args={"op": "list"}).body)
    print("bob sees:  ", client.request("bob", "pw-b", "notes", args={"op": "list"}).body)

    # --- declassification --------------------------------------------------------------
    print("\n== decentralized declassification ==")
    client.request("alice", "pw-a", "profile", body="alice, esq.", args={"op": "set"})
    print("bob pre-publish: ", client.request("bob", "pw-b", "profile", args={"op": "get"}).body)
    client.request("alice", "pw-a", "publish")
    print("bob post-publish:", client.request("bob", "pw-b", "profile", args={"op": "get"}).body)

    # --- compromise containment --------------------------------------------------------
    print("\n== compromised worker ==")

    def attacker(ctx):
        port = yield NewPort()
        yield SetPortLabel(port, Label.top())
        DROPBOX.append(port)
        while True:
            msg = yield Recv(port=port)
            STOLEN.append(msg.payload)

    site.kernel.spawn(attacker, "attacker")
    site.kernel.run()
    r = client.request("carol", "pw-c", "pwned", body=b"carol's credit card")
    print("carol's request still worked:", r.body)
    print("attacker received:", STOLEN or "nothing")
    drops = site.kernel.drop_log
    print("kernel silently dropped", drops.count("label-check"), "forbidden flows so far")
    assert STOLEN == []
    print("\nworker compromise contained: the OS, not the worker, owns the policy.")


if __name__ == "__main__":
    main()
