#!/usr/bin/env python3
"""A miniature of the paper's evaluation (Section 9), live.

Boots OKWS, creates a few hundred cached sessions, and prints the
quantities the paper measures: memory per cached session (Figure 6),
throughput (Figure 7), and the per-connection cycle breakdown by
component (Figure 9).  The full-scale versions live in benchmarks/.

Run:  python examples/session_scaling.py
"""

from repro.sim.runner import (
    run_memory_experiment,
    run_session_sweep,
)


def main() -> None:
    print("== memory per cached session (Figure 6 in miniature) ==")
    points = run_memory_experiment([0, 100, 300])
    for p in points:
        print(f"  {p.sessions:>4} sessions: {p.total_pages:8.1f} pages total")
    slope = (points[-1].total_pages - points[0].total_pages) / points[-1].sessions
    print(f"  -> {slope:.2f} pages per cached session (paper: ~1.5)")

    print("\n== worst case: sessions that never ep_clean ==")
    active = run_memory_experiment([100, 300], active=True)
    slope = (active[-1].total_pages - active[0].total_pages) / 200
    print(f"  -> {slope:.2f} pages per active session (paper: 1.5 + 8)")

    print("\n== throughput and component costs vs cached sessions ==")
    print(f"  {'sessions':>8} {'conn/s':>8} {'total':>8}  per-connection Kcycles by component")
    for p in run_session_sweep([1, 100, 400]):
        comps = ", ".join(
            f"{k}={v:.0f}" for k, v in sorted(p.components_kcycles.items())
        )
        print(f"  {p.sessions:>8} {p.throughput:>8.0f} {p.total_kcycles:>7.0f}K  {comps}")
    print("\nAt full scale (benchmarks/bench_fig7_throughput.py) the label and")
    print("database costs grow linearly until kernel IPC overtakes the network")
    print("stack — the paper's Figure 9 in motion.")


if __name__ == "__main__":
    main()
